//! Metamorphic properties of the contract-design pipeline: relations
//! between *pairs* of runs (or structural invariants of one run) that
//! must hold for any input, derived from the paper's model rather than
//! from golden outputs.
//!
//! 1. Every designed contract is a monotone piecewise-linear payment
//!    schedule (§IV-C: Lemma 4.1's candidates are nondecreasing PWL,
//!    and the zero contract trivially is).
//! 2. Scaling every feedback weight `w_i` (Eq. 5) *and* the payment
//!    multiplier μ jointly by λ scales the requester's utility
//!    `Σ w_i·F_i − μ·x_i` (Eq. 4–7) by exactly λ: candidates depend
//!    only on (β, ω, ψ), so the candidate set is unchanged and every
//!    candidate's score scales linearly — the argmax is preserved.
//! 3. Relabeling workers (a permutation of `ReviewerId`s applied
//!    consistently to reviewers, reviews, and campaign rosters) must
//!    not change any worker's designed contract: identity is not a
//!    model input.
//! 4. Raising μ makes payments more expensive, so the total designed
//!    compensation is weakly decreasing in μ (monotone comparative
//!    statics of the per-worker argmax over a μ-linear objective).
//!
//! CI runs this suite at `PROPTEST_CASES=256` (`.github/workflows/
//! ci.yml`, `batch` job).

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::batch::{BatchRunner, ScenarioGrid};
use dyncontract::core::{design_contracts, ContractDesign, DesignConfig};
use dyncontract::detect::{run_pipeline, DetectionResult, PipelineConfig};
use dyncontract::trace::{SyntheticConfig, TraceDataset};
use proptest::prelude::*;

const SEEDS: [u64; 3] = [7, 31, 90];

/// Relative tolerance for cross-run float comparisons. Permutations
/// and scalings reorder float reductions, so bit-identity is not owed;
/// 1e-9 is far above accumulated rounding and far below any real
/// design difference.
const REL_TOL: f64 = 1e-9;

fn trace(seed: u64) -> TraceDataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.n_honest = 14;
    cfg.n_ncm = 5;
    cfg.n_cm_target = 6;
    cfg.n_rounds = 2;
    cfg.n_products = 160;
    cfg.generate()
}

fn detect(trace: &TraceDataset) -> DetectionResult {
    run_pipeline(trace, PipelineConfig::default())
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

fn design(trace: &TraceDataset, mu: f64) -> ContractDesign {
    let detection = detect(trace);
    let mut config = DesignConfig::default();
    config.params.mu = mu;
    design_contracts(trace, &detection, &config).expect("design")
}

/// Applies the id-reversal permutation `π(i) = n−1−i` consistently to
/// every place a `ReviewerId` appears, then re-slots reviewers so ids
/// stay dense.
fn relabel(trace: &TraceDataset) -> TraceDataset {
    let n = trace.reviewers().len();
    let perm = |r: dyncontract::trace::ReviewerId| dyncontract::trace::ReviewerId(n - 1 - r.0);
    let mut reviewers: Vec<_> = trace
        .reviewers()
        .iter()
        .cloned()
        .map(|mut r| {
            r.id = perm(r.id);
            r
        })
        .collect();
    reviewers.sort_by_key(|r| r.id.0);
    let reviews = trace
        .reviews()
        .iter()
        .cloned()
        .map(|mut v| {
            v.reviewer = perm(v.reviewer);
            v
        })
        .collect();
    let campaigns = trace
        .campaigns()
        .iter()
        .cloned()
        .map(|mut c| {
            c.members = c.members.iter().map(|&m| perm(m)).collect();
            c
        })
        .collect();
    TraceDataset::new(trace.products().to_vec(), reviewers, reviews, campaigns)
        .expect("relabeled trace stays well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: every agent's contract is a monotone nondecreasing
    /// piecewise-linear payment schedule with nonnegative payments,
    /// and its compensation function is nondecreasing in feedback.
    #[test]
    fn designed_contracts_are_monotone_pwl(seed_idx in 0usize..SEEDS.len(), mu in 0.5f64..2.5) {
        let design = design(&trace(SEEDS[seed_idx]), mu);
        prop_assert!(!design.agents.is_empty());
        for a in &design.agents {
            let c = &a.contract;
            prop_assert!(c.is_monotone(), "worker {} contract not monotone", a.worker.0);
            let knots = c.feedback_knots();
            let payments = c.payments();
            prop_assert_eq!(knots.len(), payments.len());
            for w in knots.windows(2) {
                prop_assert!(w[1] >= w[0], "feedback knots must be sorted");
            }
            for w in payments.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12, "payments must be nondecreasing");
            }
            prop_assert!(payments.iter().all(|&x| x >= 0.0), "payments must be nonnegative");
            // Sample the interpolated compensation along the feedback axis.
            let (lo, hi) = (knots[0], knots[knots.len() - 1]);
            let mut prev = f64::NEG_INFINITY;
            for t in 0..=50 {
                let d = lo + (hi - lo) * f64::from(t) / 50.0;
                let x = c.compensation(d);
                prop_assert!(x >= prev - 1e-12, "compensation dips at feedback {d}");
                prev = x;
            }
        }
    }

    /// Property 2: scaling all weights and μ jointly by λ scales the
    /// requester's utility by λ. λ ranges over powers of two so the
    /// scaling itself is exact in floating point.
    #[test]
    fn joint_weight_mu_scaling_scales_requester_utility(
        seed_idx in 0usize..SEEDS.len(),
        lambda_exp in -1i32..=2,
    ) {
        let lambda = 2f64.powi(lambda_exp);
        let trace = trace(SEEDS[seed_idx]);
        let detection = detect(&trace);
        let config = DesignConfig::default();
        let base = design_contracts(&trace, &detection, &config).expect("base design");

        let mut scaled_detection = detect(&trace);
        for r in trace.reviewers() {
            let w = scaled_detection.weights.weight(r.id).expect("weight exists");
            prop_assert!(scaled_detection.weights.set_weight(r.id, w * lambda));
        }
        let mut scaled_config = config;
        scaled_config.params.mu *= lambda;
        let scaled =
            design_contracts(&trace, &scaled_detection, &scaled_config).expect("scaled design");

        prop_assert!(
            close(scaled.total_requester_utility, lambda * base.total_requester_utility),
            "U_req({lambda}·w, {lambda}·mu) = {} but {lambda}·U_req(w, mu) = {}",
            scaled.total_requester_utility,
            lambda * base.total_requester_utility,
        );
    }
}

/// Property 3: worker identity is not a model input — reversing all
/// `ReviewerId`s leaves every worker's compensation and induced effort
/// unchanged (up to float-reduction reordering).
#[test]
fn worker_relabeling_preserves_per_worker_design() {
    for &seed in &SEEDS {
        let original = trace(seed);
        let relabeled = relabel(&original);
        let base = design(&original, 1.5);
        let permuted = design(&relabeled, 1.5);
        let n = original.reviewers().len();

        assert!(
            close(base.total_requester_utility, permuted.total_requester_utility),
            "seed {seed}: total utility moved under relabeling: {} vs {}",
            base.total_requester_utility,
            permuted.total_requester_utility,
        );
        assert_eq!(base.agents.len(), permuted.agents.len());
        for a in &base.agents {
            let twin = permuted
                .for_worker(dyncontract::trace::ReviewerId(n - 1 - a.worker.0))
                .expect("relabeled worker keeps a contract");
            assert!(
                close(a.compensation, twin.compensation),
                "seed {seed} worker {}: compensation {} vs relabeled {}",
                a.worker.0,
                a.compensation,
                twin.compensation,
            );
            assert!(
                close(a.induced_effort, twin.induced_effort),
                "seed {seed} worker {}: induced effort {} vs relabeled {}",
                a.worker.0,
                a.induced_effort,
                twin.induced_effort,
            );
        }
    }
}

/// Property 4: raising μ never increases the total designed
/// compensation. Swept through the batch runner, which also exercises
/// the solve memo across the μ axis.
#[test]
fn raising_mu_never_increases_total_compensation() {
    let mus = [0.6, 0.9, 1.2, 1.5, 1.8, 2.1];
    for &seed in &SEEDS {
        let grid = ScenarioGrid::for_trace(trace(seed), &mus);
        let report = BatchRunner::new().run(&grid).expect("batch sweep");
        let spends: Vec<(f64, f64)> = report
            .records
            .iter()
            .map(|r| (r.scenario.mu, r.outcome().expect("scenario ok").full_spend))
            .collect();
        for pair in spends.windows(2) {
            let ((mu_lo, spend_lo), (mu_hi, spend_hi)) = (pair[0], pair[1]);
            assert!(mu_hi > mu_lo, "sweep must be in ascending μ order");
            assert!(
                spend_hi <= spend_lo + REL_TOL * spend_lo.abs().max(1.0),
                "seed {seed}: raising mu {mu_lo} -> {mu_hi} raised total \
                 compensation {spend_lo} -> {spend_hi}",
            );
        }
    }
}
