//! Fault-tolerance integration: deterministic fault injection, degraded
//! contract design, and checkpointed simulation — end to end through the
//! meta-crate's public API.
//!
//! The headline guarantees exercised here:
//! - a run killed mid-way and resumed from its checkpoint reproduces the
//!   uninterrupted run's `SimulationOutcome` *bit-exactly*,
//! - the same `(seed, FaultPlan)` pair always yields the identical
//!   outcome,
//! - `design_contracts` under `FallbackBaseline` completes (with a
//!   non-empty `DegradationReport`) on inputs where `Abort` errors, and
//!   the fallback contracts respect monotonicity and the Lemma 4.2/4.3
//!   compensation cap.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    bounds, design_contracts, solve_subproblems, solve_subproblems_with, BaselineStrategy,
    DesignConfig, Discretization, FailurePolicy, ModelParams, Simulation, SimulationConfig,
    StrategyKind, Subproblem,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::faults::{
    load_sim_state, save_sim_state, FaultInjector, FaultPlan, FaultPlanConfig,
};
use dyncontract::numerics::Quadratic;
use dyncontract::trace::SyntheticConfig;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn assembled_agents() -> (ModelParams, Vec<dyncontract::core::AgentSpec>) {
    let trace = SyntheticConfig::small(271).generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");
    let suspected: BTreeSet<_> = detection.suspected.iter().copied().collect();
    let agents = BaselineStrategy::new(StrategyKind::DynamicContract)
        .assemble(&design, config.params.omega, &suspected, &trace)
        .expect("assemble");
    (config.params, agents)
}

fn busy_plan(agents: usize, rounds: usize, seed: u64) -> FaultPlan {
    FaultPlanConfig {
        agents,
        rounds,
        dropout_prob: 0.05,
        missing_prob: 0.08,
        corrupt_prob: 0.08,
        nan_prob: 0.04,
        delay_prob: 0.08,
        seed,
        ..FaultPlanConfig::default()
    }
    .generate()
    .expect("valid plan config")
}

#[test]
fn killed_and_resumed_run_reproduces_the_uninterrupted_outcome() {
    let (params, agents) = assembled_agents();
    let rounds = 16;
    let plan = busy_plan(agents.len(), rounds, 5);
    let sim = Simulation::new(
        params,
        SimulationConfig {
            rounds,
            feedback_noise_sd: 0.5,
            seed: 29,
        },
    );

    // Ground truth: one uninterrupted faulty run.
    let mut injector = FaultInjector::new(&plan);
    let uninterrupted = sim.run_with_faults(&agents, &mut injector).expect("run");

    // "Crash" after 7 rounds: persist the state to disk and drop
    // everything in-memory.
    let dir = std::env::temp_dir().join(format!("dcc_ft_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("sim.ckpt.json");
    {
        let mut injector = FaultInjector::new(&plan);
        let mut state = sim.start(&agents).expect("start");
        for _ in 0..7 {
            assert!(sim.step(&agents, &mut state, &mut injector));
        }
        save_sim_state(&ckpt, &state).expect("save checkpoint");
    }

    // Resume from the file with a *fresh* injector built from the same
    // plan (the injector is pure in (agent, round), so no injector state
    // needs checkpointing).
    let mut state = load_sim_state(&ckpt).expect("load checkpoint");
    let mut injector = FaultInjector::new(&plan);
    while sim.step(&agents, &mut state, &mut injector) {}
    let resumed = sim.outcome_of(&state).expect("outcome");

    assert_eq!(uninterrupted, resumed, "resume must be bit-exact");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_seed_and_plan_yield_the_identical_outcome() {
    let (params, agents) = assembled_agents();
    let rounds = 12;
    let plan = busy_plan(agents.len(), rounds, 17);
    let sim = Simulation::new(
        params,
        SimulationConfig {
            rounds,
            feedback_noise_sd: 0.5,
            seed: 41,
        },
    );
    let a = sim
        .run_with_faults(&agents, &mut FaultInjector::new(&plan))
        .expect("run a");
    let b = sim
        .run_with_faults(&agents, &mut FaultInjector::new(&plan))
        .expect("run b");
    assert_eq!(a, b);

    // A different plan seed perturbs the run (sanity that faults bite).
    let other = busy_plan(agents.len(), rounds, 18);
    let c = sim
        .run_with_faults(&agents, &mut FaultInjector::new(&other))
        .expect("run c");
    assert_ne!(a, c, "a busy fault plan must actually alter the run");
}

#[test]
fn fallback_design_completes_where_abort_errors() {
    let trace = SyntheticConfig::small(211).generate();
    let mut detection = run_pipeline(&trace, PipelineConfig::default());
    let victim = trace
        .reviewers()
        .iter()
        .map(|r| r.id)
        .find(|id| !trace.reviews_by(*id).is_empty())
        .expect("some reviewing worker");
    assert!(detection.weights.set_weight(victim, f64::NAN));

    let strict = DesignConfig::default();
    assert!(
        design_contracts(&trace, &detection, &strict).is_err(),
        "Abort must propagate the corrupted subproblem"
    );

    let lenient = DesignConfig {
        failure_policy: FailurePolicy::FallbackBaseline { amount: 0.4 },
        ..strict
    };
    let design = design_contracts(&trace, &detection, &lenient).expect("degraded design");
    assert!(!design.degradation.is_empty());
    assert!(design
        .degradation
        .degraded
        .iter()
        .any(|d| d.members.contains(&victim.index())));
    for agent in &design.agents {
        assert!(agent.contract.is_monotone());
        assert!(agent.compensation.is_finite() && agent.compensation >= 0.0);
    }
}

// ---------------------------------------------------------------------
// Property-based coverage
// ---------------------------------------------------------------------

fn subproblems(n: usize, psi: Quadratic, m: usize, y_max: f64) -> Vec<Subproblem> {
    let disc = Discretization::covering(m, y_max).expect("discretization");
    (0..n)
        .map(|i| Subproblem {
            id: i,
            members: vec![i],
            omega: 0.0,
            weight: 1.0 + 0.2 * i as f64,
            psi,
            disc,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fallback contracts are monotone and pay within the Lemma 4.2/4.3
    /// compensation cap, for arbitrary requested fallback amounts.
    #[test]
    fn fallback_contracts_are_monotone_and_capped(
        amount in 0.0f64..80.0,
        r1 in 1.0f64..3.0,
        y_max in 3.0f64..10.0,
        m in 6usize..20,
        bad in 0usize..4,
    ) {
        let psi = Quadratic::new(-0.3 * r1 / (2.0 * y_max), r1, 0.5);
        let mut sps = subproblems(4, psi, m, y_max);
        sps[bad].weight = f64::NAN; // forces degradation of one subproblem
        let params = ModelParams::default();

        prop_assert!(solve_subproblems(&sps, &params, false).is_err());
        let (solution, report) = solve_subproblems_with(
            &sps,
            &params,
            false,
            FailurePolicy::FallbackBaseline { amount },
        )?;
        prop_assert_eq!(report.len(), 1);
        prop_assert!(report.for_subproblem(bad).is_some());

        let degraded = &solution.solutions[bad];
        let contract = degraded.built.contract();
        prop_assert!(contract.is_monotone());
        let cap = bounds::compensation_upper_bound(&params, &sps[bad].disc, &psi, m);
        let pay = degraded.built.compensation();
        prop_assert!(pay >= 0.0, "pay {} must be nonnegative", pay);
        prop_assert!(
            pay <= cap + 1e-9,
            "fallback pay {} exceeds Lemma 4.2/4.3 cap {}",
            pay,
            cap
        );
        // The requested amount is honored whenever it fits under the cap.
        if amount <= cap {
            prop_assert!((pay - amount).abs() < 1e-12);
        }
        // Healthy subproblems match the clean solve exactly.
        let mut clean_sps = subproblems(4, psi, m, y_max);
        clean_sps[bad].weight = 1.0; // any finite value; only healthy ones compared
        let clean = solve_subproblems(&clean_sps, &params, false)?;
        for i in 0..4 {
            if i != bad {
                prop_assert_eq!(&solution.solutions[i], &clean.solutions[i]);
            }
        }
    }

    /// The full faulty simulation is a deterministic function of
    /// `(simulation seed, fault plan)` across arbitrary fault mixes.
    #[test]
    fn faulty_simulation_is_deterministic_in_seed_and_plan(
        plan_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        dropout in 0.0f64..0.3,
        missing in 0.0f64..0.3,
        corrupt in 0.0f64..0.3,
        delay in 0.0f64..0.3,
    ) {
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        let disc = Discretization::new(12, 0.625)?;
        let params = ModelParams { mu: 1.5, ..ModelParams::default() };
        let built = dyncontract::core::ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(1.0)
            .build()?;
        let agents: Vec<dyncontract::core::AgentSpec> = (0..4)
            .map(|id| dyncontract::core::AgentSpec {
                id,
                members: 1,
                omega: 0.0,
                weight: 1.0,
                psi,
                contract: built.contract().clone(),
                in_system: true,
            })
            .collect();
        let plan = FaultPlanConfig {
            agents: agents.len(),
            rounds: 10,
            dropout_prob: dropout,
            missing_prob: missing,
            corrupt_prob: corrupt,
            nan_prob: 0.02,
            delay_prob: delay,
            seed: plan_seed,
            ..FaultPlanConfig::default()
        }
        .generate()?;
        // The plan itself is reproducible...
        let again = FaultPlanConfig {
            agents: agents.len(),
            rounds: 10,
            dropout_prob: dropout,
            missing_prob: missing,
            corrupt_prob: corrupt,
            nan_prob: 0.02,
            delay_prob: delay,
            seed: plan_seed,
            ..FaultPlanConfig::default()
        }
        .generate()?;
        prop_assert_eq!(&plan, &again);
        // ...and survives a JSON round trip...
        prop_assert_eq!(&FaultPlan::from_json_str(&plan.to_json_string())?, &plan);
        // ...and the simulated outcome is pinned by (sim_seed, plan).
        let sim = Simulation::new(
            params,
            SimulationConfig { rounds: 10, feedback_noise_sd: 0.5, seed: sim_seed },
        );
        let a = sim.run_with_faults(&agents, &mut FaultInjector::new(&plan))?;
        let b = sim.run_with_faults(&agents, &mut FaultInjector::new(&plan))?;
        prop_assert_eq!(a, b);
    }
}
