//! Differential harness: three independent executions of the same
//! μ-sweep — a fresh serial engine run per scenario, a pooled engine
//! solve, and the batch runner — must agree **byte-for-byte** on every
//! deterministic output (all floats compared via `to_bits`).
//!
//! This is the external check backing `dcc-batch`'s central claim: the
//! batch scheduler is an optimization, never a semantic change. CI runs
//! this suite at `PROPTEST_CASES=256` (`.github/workflows/ci.yml`,
//! `batch` job); the in-file default keeps local runs quick.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::batch::{
    BatchFaultPlan, BatchOptions, BatchOutcome, BatchReport, BatchRunner, CheckpointConfig,
    FailureKind, FaultMode, FaultPoint, ScenarioFault, ScenarioGrid, SupervisorOptions,
};
use dyncontract::core::{
    solve_subproblems_columns, solve_subproblems_pooled, BipSolution, ContractDesign,
    FailurePolicy, ModelParams, Subproblem, SubproblemColumns,
};
use dyncontract::engine::{Engine, EngineConfig, PoolSize, RoundContext, StageKind};
use dyncontract::trace::{SyntheticConfig, TraceDataset};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// The μ-sweep all three executions run.
const MUS: [f64; 3] = [1.5, 1.0, 0.6];
/// Distinct trace shapes (seeds) the property quantifies over.
const SEEDS: [u64; 3] = [5, 23, 71];

fn trace(seed: u64) -> TraceDataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.n_honest = 14;
    cfg.n_ncm = 5;
    cfg.n_cm_target = 6;
    cfg.n_rounds = 2;
    cfg.n_products = 160;
    cfg.generate()
}

/// Byte-exact encoding of one design: per-worker contract knots,
/// payments, compensation, and induced effort, plus the total, all via
/// `to_bits` so any 1-ulp drift fails the comparison.
fn encode(out: &mut String, design: &ContractDesign) {
    let _ = write!(out, "U={:016x}", design.total_requester_utility.to_bits());
    for a in &design.agents {
        let _ = write!(
            out,
            " [{} c={:016x} y={:016x} k=",
            a.worker.0,
            a.compensation.to_bits(),
            a.induced_effort.to_bits(),
        );
        for (d, x) in a
            .contract
            .feedback_knots()
            .iter()
            .zip(a.contract.payments())
        {
            let _ = write!(out, "{:016x}:{:016x},", d.to_bits(), x.to_bits());
        }
        let _ = write!(out, "]");
    }
    let _ = writeln!(out);
}

/// The sweep through the staged engine: one fresh context per μ, solve
/// pool as given.
fn engine_sweep(seed: u64, pool: PoolSize) -> String {
    let trace = trace(seed);
    let mut out = String::new();
    for &mu in &MUS {
        let mut config = EngineConfig::for_trace(trace.clone());
        config.design.params.mu = mu;
        config.pool = pool;
        let mut ctx = RoundContext::new(config);
        Engine::new()
            .run_to(&mut ctx, StageKind::ConstructContracts)
            .expect("engine design");
        encode(&mut out, ctx.design().expect("design ran"));
    }
    out
}

/// The same sweep through the batch runner.
fn batch_sweep(seed: u64, pool: PoolSize, policy: FailurePolicy) -> String {
    let grid = ScenarioGrid::for_trace(trace(seed), &MUS);
    let runner = BatchRunner::with_options(BatchOptions {
        pool,
        policy,
        ..BatchOptions::default()
    });
    let report = runner.run(&grid).expect("batch run");
    let mut out = String::new();
    for record in &report.records {
        encode(&mut out, &record.outcome().expect("scenario ok").design);
    }
    out
}

/// The serial-engine reference, computed once per seed.
fn reference(seed_idx: usize) -> &'static str {
    static REFS: OnceLock<Vec<String>> = OnceLock::new();
    &REFS.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&seed| engine_sweep(seed, PoolSize::Sequential))
            .collect()
    })[seed_idx]
}

/// The fitted §IV-B decomposition for one seed, computed once: run the
/// engine through `FitEffort` and take the prepared subproblems.
fn subproblems(seed_idx: usize) -> &'static [Subproblem] {
    static PREPS: OnceLock<Vec<Vec<Subproblem>>> = OnceLock::new();
    &PREPS.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&seed| {
                let mut ctx = RoundContext::new(EngineConfig::for_trace(trace(seed)));
                Engine::new()
                    .run_to(&mut ctx, StageKind::FitEffort)
                    .expect("engine prep");
                ctx.prep().expect("prep ran").subproblems.clone()
            })
            .collect()
    })[seed_idx]
}

/// Byte-exact encoding of a raw `BipSolution` (pre-contract-construction):
/// ids, membership, and every solved quantity via `to_bits`.
fn encode_bip(solution: &BipSolution) -> String {
    let mut out = String::new();
    let _ = write!(out, "U={:016x}", solution.total_requester_utility.to_bits());
    for s in &solution.solutions {
        let _ = write!(
            out,
            " [{} m={:?} c={:016x} y={:016x} u={:016x} k=",
            s.id,
            s.members,
            s.built.compensation().to_bits(),
            s.built.induced_effort().to_bits(),
            s.built.requester_utility().to_bits(),
        );
        for (d, x) in s
            .built
            .contract()
            .feedback_knots()
            .iter()
            .zip(s.built.contract().payments())
        {
            let _ = write!(out, "{:016x}:{:016x},", d.to_bits(), x.to_bits());
        }
        let _ = write!(out, "]");
    }
    out
}

fn policy(idx: usize) -> FailurePolicy {
    match idx {
        0 => FailurePolicy::Abort,
        1 => FailurePolicy::Skip,
        _ => FailurePolicy::FallbackBaseline { amount: 0.5 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The engine's pooled subproblem solve is byte-identical to its
    /// sequential solve at every pool size.
    #[test]
    fn pooled_engine_solve_matches_serial(seed_idx in 0usize..SEEDS.len(), pool in 1usize..=16) {
        let swept = engine_sweep(SEEDS[seed_idx], PoolSize::Fixed(pool));
        prop_assert_eq!(swept.as_str(), reference(seed_idx));
    }

    /// The struct-of-arrays solve (`solve_subproblems_columns`) is
    /// byte-identical to the row-struct solver on the same decomposition,
    /// at every pool size and μ — the guarantee that lets the engine's
    /// hot path consume the columnar view unconditionally.
    #[test]
    fn columnar_solve_matches_struct_solve(
        seed_idx in 0usize..SEEDS.len(),
        pool in 1usize..=16,
        mu_idx in 0usize..MUS.len(),
    ) {
        let sps = subproblems(seed_idx);
        let params = ModelParams { mu: MUS[mu_idx], ..ModelParams::default() };
        let (row, row_deg) = solve_subproblems_pooled(sps, &params, 1, FailurePolicy::Abort)
            .expect("struct solve");
        let columns = SubproblemColumns::from_subproblems(sps);
        let (col, col_deg) =
            solve_subproblems_columns(columns.view(), &params, pool, FailurePolicy::Abort)
                .expect("columnar solve");
        prop_assert_eq!(encode_bip(&col), encode_bip(&row));
        prop_assert_eq!(format!("{col_deg:?}"), format!("{row_deg:?}"));
    }

    /// The batch runner — any scenario-pool size, any failure policy —
    /// is byte-identical to the fresh serial engine loop.
    #[test]
    fn batch_runner_matches_serial_engine(
        seed_idx in 0usize..SEEDS.len(),
        pool in 1usize..=16,
        policy_idx in 0usize..3,
    ) {
        let swept = batch_sweep(SEEDS[seed_idx], PoolSize::Fixed(pool), policy(policy_idx));
        prop_assert_eq!(swept.as_str(), reference(seed_idx));
    }

    /// A warm memo is invisible in the output: rerunning the grid on
    /// the same runner reproduces the cold bytes even though every
    /// stage is answered from cache.
    #[test]
    fn warm_batch_rerun_matches_serial_engine(seed_idx in 0usize..SEEDS.len(), pool in 1usize..=8) {
        let grid = ScenarioGrid::for_trace(trace(SEEDS[seed_idx]), &MUS);
        let runner = BatchRunner::with_options(BatchOptions {
            pool: PoolSize::Fixed(pool),
            ..BatchOptions::default()
        });
        runner.run(&grid).expect("cold run");
        let warm = runner.run(&grid).expect("warm run");
        let mut out = String::new();
        for record in &warm.records {
            encode(&mut out, &record.outcome().expect("scenario ok").design);
        }
        prop_assert_eq!(out.as_str(), reference(seed_idx));
    }
}

/// Byte-exact encoding of a *supervised* report's deterministic
/// surface: cache stats, attempts, cache flags, canonical summaries
/// (every float via `to_bits`), failures, and the quarantine — the
/// parts an interrupted-and-resumed run must reproduce exactly.
fn encode_supervised(report: &BatchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "stats {:?}", report.stats);
    for r in &report.records {
        let _ = write!(
            out,
            "#{} a{} d{} f{} s{} ",
            r.scenario.id,
            r.attempts,
            u8::from(r.detect_cached),
            u8::from(r.fit_cached),
            u8::from(r.solve_cached),
        );
        match (r.summary(), r.failure()) {
            (Some(s), _) => {
                let _ = write!(
                    out,
                    "u={:016x} full={:016x} budget={:016x} spend={:016x} bu={:016x} deg={} funded={:?} ",
                    s.total_requester_utility.to_bits(),
                    s.full_spend.to_bits(),
                    s.budget.to_bits(),
                    s.spend.to_bits(),
                    s.budget_utility.to_bits(),
                    s.degraded,
                    s.funded,
                );
                for a in &s.agents {
                    let _ = write!(
                        out,
                        "[{} p{} c={:016x} y={:016x}]",
                        a.worker,
                        a.subproblem,
                        a.compensation.to_bits(),
                        a.induced_effort.to_bits(),
                    );
                }
                match &s.sim {
                    Some(sim) => {
                        let _ = writeln!(
                            out,
                            " sim r{} cum={:016x} mean={:016x}",
                            sim.rounds,
                            sim.cumulative_requester_utility.to_bits(),
                            sim.mean_round_utility.to_bits(),
                        );
                    }
                    None => {
                        let _ = writeln!(out, " sim=none");
                    }
                }
            }
            (None, Some(f)) => {
                let _ = writeln!(out, "err={f}");
            }
            (None, None) => {
                let _ = writeln!(out, "lost");
            }
        }
    }
    for q in &report.quarantine.entries {
        let _ = writeln!(
            out,
            "quarantine #{} {} a{} {}",
            q.scenario,
            q.kind.label(),
            q.attempts,
            q.message
        );
    }
    out
}

/// A 6-scenario grid (3 μ × 2 budget fractions) for the kill/resume
/// properties.
fn supervised_grid(seed: u64) -> ScenarioGrid {
    let mut grid = ScenarioGrid::for_trace(trace(seed), &MUS);
    grid.budget_fractions = vec![0.5, 1.0];
    grid
}

fn options(pool: PoolSize, policy: FailurePolicy) -> BatchOptions {
    BatchOptions {
        pool,
        policy,
        ..BatchOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Crash-recovery differential: killing a checkpointed run after k
    /// fresh scenarios and resuming it — at any pool size, under every
    /// failure policy — reproduces the uninterrupted report
    /// byte-for-byte (floats via `to_bits`, quarantine included).
    #[test]
    fn killed_and_resumed_batch_matches_uninterrupted(
        seed_idx in 0usize..SEEDS.len(),
        pool in 1usize..=16,
        policy_idx in 0usize..3,
        kill_at in 1usize..=5,
    ) {
        let seed = SEEDS[seed_idx];
        let grid = supervised_grid(seed);
        let scenarios = grid.scenarios();
        let full = BatchRunner::with_options(options(PoolSize::Fixed(pool), policy(policy_idx)))
            .run(&grid)
            .expect("uninterrupted run");
        let path = std::env::temp_dir().join(format!(
            "dcc-diff-resume-{}-s{seed}-p{pool}-f{policy_idx}-k{kill_at}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let killed = BatchRunner::with_options(options(PoolSize::Fixed(pool), policy(policy_idx)))
            .run_supervised(&grid, &scenarios, &SupervisorOptions {
                kill_after: Some(kill_at),
                checkpoint: Some(CheckpointConfig::new(&path)),
                ..SupervisorOptions::default()
            })
            .expect("killed run");
        let was_killed = matches!(killed, BatchOutcome::Killed { .. });
        prop_assert!(was_killed, "run must stop at the kill threshold");
        let resumed = BatchRunner::with_options(options(PoolSize::Fixed(pool), policy(policy_idx)))
            .run_supervised(&grid, &scenarios, &SupervisorOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                resume: true,
                ..SupervisorOptions::default()
            })
            .expect("resumed run")
            .into_report()
            .expect("resume completes");
        let _ = std::fs::remove_file(&path);
        prop_assert!(resumed.restored >= kill_at.min(scenarios.len()));
        prop_assert_eq!(encode_supervised(&resumed), encode_supervised(&full));
    }

    /// Panic containment differential: a scenario that panics mid-batch
    /// is quarantined deterministically while every sibling still
    /// matches the fresh serial-engine reference byte-for-byte — at
    /// every pool size.
    #[test]
    fn injected_panic_leaves_siblings_byte_identical(
        seed_idx in 0usize..SEEDS.len(),
        pool in 1usize..=16,
    ) {
        let seed = SEEDS[seed_idx];
        let grid = ScenarioGrid::for_trace(trace(seed), &MUS);
        let sup = SupervisorOptions {
            faults: BatchFaultPlan::new().with_fault(1, ScenarioFault {
                point: FaultPoint::Solve,
                mode: FaultMode::Panic,
                fails_before: usize::MAX,
            }),
            ..SupervisorOptions::default()
        };
        let report = BatchRunner::with_options(options(PoolSize::Fixed(pool), FailurePolicy::Skip))
            .run_supervised(&grid, &grid.scenarios(), &sup)
            .expect("supervised run")
            .into_report()
            .expect("completes");
        let mut out = String::new();
        for (i, record) in report.records.iter().enumerate() {
            if i == 1 {
                let f = record.failure().expect("scenario 1 quarantined");
                prop_assert_eq!(f.kind, FailureKind::Panic);
                prop_assert!(f.message.contains("injected fault"), "{}", f.message);
                // Splice in the reference line so the remaining lines
                // line up with the serial sweep.
                let mut ctx = RoundContext::new({
                    let mut config = EngineConfig::for_trace(trace(seed));
                    config.design.params.mu = MUS[1];
                    config
                });
                Engine::new()
                    .run_to(&mut ctx, StageKind::ConstructContracts)
                    .expect("engine design");
                encode(&mut out, ctx.design().expect("design ran"));
            } else {
                encode(&mut out, &record.outcome().expect("sibling ok").design);
            }
        }
        prop_assert_eq!(out.as_str(), reference(seed_idx));
        prop_assert_eq!(report.quarantine.len(), 1);
        prop_assert_eq!(report.quarantine.entries[0].scenario, 1);
    }
}
