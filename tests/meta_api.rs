//! Smoke coverage of the meta-crate's re-exported surface: everything a
//! downstream user reaches through `dyncontract::*` resolves and works.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
// Exact float asserts on values that are bit-determined by construction.
#![allow(clippy::float_cmp)]

use dyncontract as dc;

#[test]
fn numerics_surface() {
    let q = dc::numerics::Quadratic::new(-0.1, 2.0, 0.5);
    assert!(q.is_concave());
    let p = dc::numerics::polyfit(&[0.0, 1.0, 2.0, 3.0], &[0.5, 2.4, 3.9, 5.0], 2).unwrap();
    assert_eq!(p.degree(), 2);
    let pwl = dc::numerics::PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
    assert_eq!(pwl.eval(0.5), 0.5);
    let s = dc::numerics::Summary::of(&[1.0, 2.0, 3.0]).unwrap();
    assert_eq!(s.median, 2.0);
    let x = dc::numerics::solve_least_squares(
        &dc::numerics::Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap(),
        &[1.0, 2.0, 3.0],
    )
    .unwrap();
    assert!((x[1] - 1.0).abs() < 1e-9);
}

#[test]
fn graph_surface() {
    let mut g = dc::graph::Graph::new(3);
    g.add_edge(0, 1).unwrap();
    assert_eq!(dc::graph::connected_components(&g).len(), 2);
    let mut uf = dc::graph::UnionFind::new(3);
    uf.union(0, 2);
    assert!(uf.connected(0, 2));
}

#[test]
fn trace_detect_surface() {
    let trace = dc::trace::SyntheticConfig::small(99).generate();
    let summary = dc::trace::TraceSummary::of(&trace);
    assert!(summary.reviews > 0);
    assert!(!summary.to_string().is_empty());
    let det = dc::detect::run_pipeline(&trace, dc::detect::PipelineConfig::default());
    assert!(!det.suspected.is_empty());
    assert!(!det.collusion.size_histogram().is_empty());
}

#[test]
fn core_surface() {
    let params = dc::core::ModelParams {
        mu: 1.0,
        ..dc::core::ModelParams::default()
    };
    let disc = dc::core::Discretization::covering(10, 7.0).unwrap();
    let psi = dc::numerics::Quadratic::new(-0.15, 2.5, 1.0);
    let built = dc::core::ContractBuilder::new(params, disc, psi)
        .honest()
        .weight(1.5)
        .build()
        .unwrap();
    // Named utilities agree with the builder's bookkeeping.
    let direct = dc::core::utilities::requester_worker_utility(
        &params,
        1.5,
        &psi,
        built.contract(),
        built.induced_effort(),
    );
    assert!((direct - built.requester_utility()).abs() < 1e-9);
    // Risk + budget + bandit surfaces resolve.
    let risk = dc::core::RiskProfile::new(0.7).unwrap();
    let _ = dc::core::best_response_risk_averse(&params, &psi, built.contract(), &risk).unwrap();
    assert!(dc::core::first_best_utility(1.5, &params, &psi, 7.0, 100).unwrap().is_finite());
}

#[test]
fn label_surface() {
    let curve = dc::label::AccuracyCurve::new(0.9, 0.5).unwrap();
    assert!(curve.accuracy(3.0) > 0.6);
    assert_eq!(
        dc::label::aggregate::majority(&[dc::label::Label::One, dc::label::Label::Zero]),
        Some(dc::label::Label::One)
    );
    let report = dc::label::run_defense(dc::label::DefenseConfig {
        n_diligent: 8,
        n_adversarial: 4,
        n_items: 51,
        calibration_rounds: 3,
        eval_rounds: 2,
        effort: 4.0,
        seed: 5,
    })
    .unwrap();
    assert!(report.weighted_accuracy >= report.plain_accuracy - 0.1);
}

#[test]
fn experiments_surface() {
    let mut t = dc::experiments::TextTable::new(vec!["a".into()]);
    assert!(t.is_empty());
    t.row(vec!["1".into()]);
    assert!(t.to_csv().contains("a\n1"));
    assert_eq!(
        dc::experiments::ExperimentScale::parse("PAPER"),
        Some(dc::experiments::ExperimentScale::Paper)
    );
}
