//! Integration: CSV persistence round-trips a trace such that the entire
//! detection + design pipeline reproduces identical results.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::{read_trace_csv, write_trace_csv, SyntheticConfig};

#[test]
fn pipeline_is_invariant_under_csv_roundtrip() {
    let trace = SyntheticConfig::small(909).generate();
    let dir = std::env::temp_dir().join(format!("dyncontract_it_{}", std::process::id()));
    write_trace_csv(&trace, &dir).expect("write");
    let reloaded = read_trace_csv(&dir).expect("read");
    std::fs::remove_dir_all(&dir).ok();

    let d1 = run_pipeline(&trace, PipelineConfig::default());
    let d2 = run_pipeline(&reloaded, PipelineConfig::default());
    assert_eq!(d1.collusion, d2.collusion, "clustering must be identical");
    for (a, b) in d1.weights.as_slice().iter().zip(d2.weights.as_slice()) {
        assert!((a - b).abs() < 1e-9, "weights must match: {a} vs {b}");
    }

    let c1 = design_contracts(&trace, &d1, &DesignConfig::default()).expect("design");
    let c2 = design_contracts(&reloaded, &d2, &DesignConfig::default()).expect("design");
    assert_eq!(c1.agents.len(), c2.agents.len());
    assert!(
        (c1.total_requester_utility - c2.total_requester_utility).abs() < 1e-6,
        "designed utility must match: {} vs {}",
        c1.total_requester_utility,
        c2.total_requester_utility
    );
    for (a, b) in c1.agents.iter().zip(&c2.agents) {
        assert_eq!(a.worker, b.worker);
        assert!((a.compensation - b.compensation).abs() < 1e-9);
        assert_eq!(a.k_opt, b.k_opt);
    }
}
