//! Metamorphic proofness harness for the collusion-proof baseline
//! (`dyncontract::core::proofness`, after Li–Wang–Cheng–Hu,
//! arXiv:2003.11814).
//!
//! The headline property: **no joint deviation of a coalition —
//! star-report shifts, bought upvotes, off-best-response efforts, in any
//! combination — ever exceeds the coalition's compliant utility** under
//! the collusion-proof payment rule. The suite states it three ways:
//!
//! 1. expectation-level, over random coalitions and random joint
//!    deviations (the proptest below, run at `PROPTEST_CASES=256` by the
//!    `adversarial` CI job);
//! 2. trace-level metamorphic: inflating the star reports of non-expert
//!    workers in a real synthetic trace weakly *decreases* every
//!    campaign's collusion-proof payment (the manipulation hurts or does
//!    nothing — it never pays);
//! 3. by contrast, the paper's BiP contract pays on reported feedback,
//!    so the same inflation strictly *raises* a collusive community's
//!    BiP compensation — the gap the baseline exists to close.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    best_effort, coalition_payment, coalition_utility, compliant_utility, design_contracts,
    member_utility, worker_bias, CoalitionMember, CollusionProofParams, Deviation,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::numerics::Quadratic;
use dyncontract::trace::{SyntheticConfig, TraceDataset};
use proptest::prelude::*;

/// Tolerance for the proofness inequality: compliance is an exact
/// argmax, so violations beyond float accumulation are real bugs.
const EPS: f64 = 1e-9;

// ------------------------------------------------- expectation-level

/// A random valid coalition member from bounded parameter ranges.
fn member_from(omega: f64, r2: f64, r1: f64, r0: f64, cost: f64) -> CoalitionMember {
    CoalitionMember {
        omega,
        psi: Quadratic::new(r2, r1, r0),
        marginal_cost: cost,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proofness, member-wise: no single deviation beats the compliant
    /// play for any valid member under any valid parameters.
    #[test]
    fn no_member_deviation_beats_compliance(
        base in 0.0f64..5.0,
        slope in 0.0f64..3.0,
        tolerance in 0.05f64..4.0,
        omega in 0.0f64..2.0,
        r2 in -1.0f64..-0.01,
        r1 in 0.0f64..4.0,
        r0 in 0.0f64..2.0,
        cost in 0.0f64..2.0,
        star_shift in -6.0f64..6.0,
        upvote_boost in 0.0f64..50.0,
        effort in 0.0f64..20.0,
    ) {
        let params = CollusionProofParams { base, slope, tolerance };
        let member = member_from(omega, r2, r1, r0, cost);
        let compliant =
            member_utility(&params, &member, &Deviation::compliant(&member)).unwrap();
        let deviated = member_utility(
            &params,
            &member,
            &Deviation { star_shift, upvote_boost, effort },
        )
        .unwrap();
        prop_assert!(
            deviated <= compliant + EPS,
            "deviation ({star_shift}, {upvote_boost}, {effort}) beats compliance: \
             {deviated} > {compliant}"
        );
    }

    /// Proofness, coalition-wise: random coalitions playing arbitrary
    /// joint deviations never exceed the compliant coalition utility.
    #[test]
    fn no_joint_deviation_beats_coalition_compliance(
        base in 0.0f64..5.0,
        slope in 0.0f64..3.0,
        tolerance in 0.05f64..4.0,
        raw in proptest::collection::vec(
            (
                (0.0f64..2.0, -1.0f64..-0.01, 0.0f64..4.0, 0.0f64..2.0, 0.0f64..2.0),
                (-6.0f64..6.0, 0.0f64..50.0, 0.0f64..20.0),
            ),
            1..6,
        ),
    ) {
        let params = CollusionProofParams { base, slope, tolerance };
        let members: Vec<CoalitionMember> = raw
            .iter()
            .map(|((omega, r2, r1, r0, cost), _)| member_from(*omega, *r2, *r1, *r0, *cost))
            .collect();
        let deviations: Vec<Deviation> = raw
            .iter()
            .map(|(_, (star_shift, upvote_boost, effort))| Deviation {
                star_shift: *star_shift,
                upvote_boost: *upvote_boost,
                effort: *effort,
            })
            .collect();
        let compliant = compliant_utility(&params, &members).unwrap();
        let deviated = coalition_utility(&params, &members, &deviations).unwrap();
        prop_assert!(
            deviated <= compliant + EPS * members.len() as f64,
            "a joint deviation beats coalition compliance: {deviated} > {compliant}"
        );
    }

    /// The upvote channel is exactly inert: utilities with and without a
    /// bought upvote boost agree to the last bit.
    #[test]
    fn upvote_boosts_are_bitwise_inert(
        omega in 0.0f64..2.0,
        star_shift in -3.0f64..3.0,
        effort in 0.0f64..10.0,
        upvote_boost in 0.0f64..100.0,
    ) {
        let params = CollusionProofParams::default();
        let member = member_from(omega, -0.2, 2.0, 0.5, 0.4);
        let without = member_utility(
            &params,
            &member,
            &Deviation { star_shift, upvote_boost: 0.0, effort },
        )
        .unwrap();
        let with = member_utility(
            &params,
            &member,
            &Deviation { star_shift, upvote_boost, effort },
        )
        .unwrap();
        prop_assert!(
            without.to_bits() == with.to_bits(),
            "buying upvotes changed the payment: {without} vs {with}"
        );
    }
}

// ----------------------------------------------- trace-level metamorphic

/// Returns `trace` with every non-expert review's stars inflated by
/// `delta` (clamped at 5 to stay a valid rating). Expert reviews — and
/// therefore the consensus the bias is measured against — are untouched.
fn inflate_non_expert_stars(trace: &TraceDataset, delta: f64) -> TraceDataset {
    let reviews = trace
        .reviews()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if !trace.reviewers()[r.reviewer.index()].is_expert {
                r.stars = (r.stars + delta).min(5.0);
            }
            r
        })
        .collect();
    TraceDataset::new(
        trace.products().to_vec(),
        trace.reviewers().to_vec(),
        reviews,
        trace.campaigns().to_vec(),
    )
    .expect("inflating stars preserves trace validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Trace-level metamorphic proofness: inflating non-expert star
    /// reports weakly increases every worker's measured bias and so
    /// weakly decreases every campaign's collusion-proof payment.
    #[test]
    fn star_inflation_never_raises_collusion_proof_payment(
        seed in 0u64..10_000,
        delta in 0.1f64..2.5,
    ) {
        let trace = SyntheticConfig::small(seed).generate();
        let inflated = inflate_non_expert_stars(&trace, delta);
        let params = CollusionProofParams::default();
        for campaign in trace.campaigns() {
            let before = coalition_payment(&trace, &params, &campaign.members);
            let after = coalition_payment(&inflated, &params, &campaign.members);
            prop_assert!(
                after <= before + EPS,
                "campaign {}: inflation raised the collusion-proof payment \
                 {before} -> {after}",
                campaign.id
            );
        }
        // And member-wise, the measured bias itself only moves up.
        for campaign in trace.campaigns() {
            for &m in &campaign.members {
                if !trace.reviewers()[m.index()].is_expert {
                    prop_assert!(worker_bias(&inflated, m) >= worker_bias(&trace, m) - EPS);
                }
            }
        }
    }
}

/// The contrast that motivates the baseline: the paper's BiP contract
/// pays `c(q(f))` on **reported** feedback, so the same star/upvote
/// inflation that is inert under the collusion-proof rule strictly
/// raises a BiP agent's compensation whenever its contract has any
/// slope. BiP is not misreport-proof — by design, it prices feedback.
#[test]
fn bip_contracts_reward_inflated_feedback() {
    let trace = SyntheticConfig::small(42).generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let design = design_contracts(&trace, &detection, &Default::default())
        .expect("seeded trace designs");

    let mut strictly_increasing = 0usize;
    for agent in &design.agents {
        let knots = agent.contract.feedback_knots();
        let Some((&lo, &hi)) = knots.first().zip(knots.last()) else {
            continue;
        };
        if hi <= lo {
            continue;
        }
        let pay_lo = agent.contract.compensation(lo);
        let pay_hi = agent.contract.compensation(hi);
        assert!(
            pay_hi >= pay_lo - EPS,
            "BiP compensation must be monotone in reported feedback"
        );
        if pay_hi > pay_lo + EPS {
            strictly_increasing += 1;
        }
    }
    assert!(
        strictly_increasing > 0,
        "at least one BiP contract must strictly reward higher reported feedback \
         (otherwise the collusion-proof comparison is vacuous)"
    );
}

/// Deterministic anchor for the headline inequality, so a regression
/// fails even at `PROPTEST_CASES=1`: a textbook coalition attempting the
/// three pure deviations and their combination.
#[test]
fn fixed_coalition_deviation_ladder() {
    let params = CollusionProofParams::default();
    let member = CoalitionMember {
        omega: 0.8,
        psi: Quadratic::new(-0.13, 2.0, 0.5),
        marginal_cost: 0.4,
    };
    let members = [member, CoalitionMember { omega: 0.2, ..member }];
    let compliant = compliant_utility(&params, &members).unwrap();
    let e = best_effort(&member);
    let ladder = [
        // pure star inflation
        [Deviation { star_shift: 0.8, upvote_boost: 0.0, effort: e }; 2],
        // pure upvote buying
        [Deviation { star_shift: 0.0, upvote_boost: 25.0, effort: e }; 2],
        // pure shirking
        [Deviation { star_shift: 0.0, upvote_boost: 0.0, effort: 0.0 }; 2],
        // everything at once
        [Deviation { star_shift: 1.5, upvote_boost: 25.0, effort: 3.0 * e }; 2],
    ];
    for deviations in ladder {
        let deviated = coalition_utility(&params, &members, &deviations).unwrap();
        assert!(
            deviated <= compliant + EPS,
            "{deviations:?} beats compliance: {deviated} > {compliant}"
        );
    }
}
