//! Differential harness for the streaming service: random event
//! streams (products appearing, workers joining, reviews, campaign
//! churn, round boundaries) run through the incremental `dcc-serve`
//! state machine must agree **bit-for-bit** (`f64::to_bits`) with a
//! cold batch recompute (`run_pipeline` → `design_contracts`) over the
//! same prefix, at every round boundary and at every pool size 1–8 —
//! including rounds where both paths *fail* (too few observation
//! points early in a stream), which must produce identical error text.
//!
//! This is the external check backing `dcc-serve`'s central claim: the
//! incremental recompute is an optimization, never a semantic change.
//! CI runs this suite at `PROPTEST_CASES=256` (`.github/workflows/
//! ci.yml`, `serve` job); the in-file default keeps local runs quick.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::obs::Metrics;
use dyncontract::serve::{design_digest, ServeEvent, ServeService};
use dyncontract::trace::{
    Campaign, Product, ProductId, Review, Reviewer, ReviewerId, TraceDataset, WorkerClass,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a random but protocol-valid event stream: dense ids,
/// reviews only against existing entities, collusive joins that open
/// new campaigns or swell existing ones (campaign churn), and round
/// markers sprinkled throughout plus one at the end.
fn random_stream(seed: u64, len: usize) -> Vec<ServeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut n_products = 0usize;
    let mut n_workers = 0usize;
    let mut n_campaigns = 0usize;
    let mut round = 0usize;

    let push_product = |events: &mut Vec<ServeEvent>, n: &mut usize, rng: &mut StdRng| {
        events.push(ServeEvent::Product {
            id: *n,
            quality: rng.gen_range(1..=5) as f64,
        });
        *n += 1;
    };
    let push_join = |events: &mut Vec<ServeEvent>,
                         n: &mut usize,
                         campaigns: &mut usize,
                         rng: &mut StdRng| {
        let class = match rng.gen_range(0..10) {
            0..=5 => WorkerClass::Honest,
            6 | 7 => WorkerClass::NonCollusiveMalicious,
            _ => WorkerClass::CollusiveMalicious,
        };
        let campaign = if class == WorkerClass::CollusiveMalicious {
            // Open a new campaign or join an existing one (churn).
            let c = if *campaigns == 0 || rng.gen_bool(0.4) {
                *campaigns
            } else {
                rng.gen_range(0..*campaigns)
            };
            if c == *campaigns {
                *campaigns += 1;
            }
            Some(c)
        } else {
            None
        };
        events.push(ServeEvent::Join {
            id: *n,
            class,
            campaign,
            expert: rng.gen_bool(0.2),
        });
        *n += 1;
    };

    // Seed enough entities that reviews are possible from the start.
    for _ in 0..3 {
        push_product(&mut events, &mut n_products, &mut rng);
    }
    for _ in 0..4 {
        push_join(&mut events, &mut n_workers, &mut n_campaigns, &mut rng);
    }

    for _ in 0..len {
        match rng.gen_range(0..100) {
            0..=11 => push_product(&mut events, &mut n_products, &mut rng),
            12..=26 => push_join(&mut events, &mut n_workers, &mut n_campaigns, &mut rng),
            27..=33 => {
                events.push(ServeEvent::Round);
                round += 1;
            }
            _ => events.push(ServeEvent::Review {
                worker: rng.gen_range(0..n_workers),
                product: rng.gen_range(0..n_products),
                round,
                stars: rng.gen_range(1..=5) as f64,
                length: rng.gen_range(20..400),
                upvotes: rng.gen_range(0..12) as f64,
            }),
        }
    }
    events.push(ServeEvent::Round);
    events
}

/// A mirror of the stream's entities kept independently of the
/// service, from which the cold batch trace is rebuilt at every round
/// boundary via the one-shot `TraceDataset::new` constructor.
#[derive(Default)]
struct Mirror {
    products: Vec<Product>,
    reviewers: Vec<Reviewer>,
    reviews: Vec<Review>,
    campaigns: Vec<Campaign>,
}

impl Mirror {
    fn apply(&mut self, event: &ServeEvent) {
        match event {
            ServeEvent::Product { id, quality } => self.products.push(Product {
                id: ProductId(*id),
                true_quality: *quality,
            }),
            ServeEvent::Join {
                id,
                class,
                campaign,
                expert,
            } => {
                self.reviewers.push(Reviewer {
                    id: ReviewerId(*id),
                    class: *class,
                    campaign: *campaign,
                    is_expert: *expert,
                });
                if let Some(c) = campaign {
                    if *c == self.campaigns.len() {
                        self.campaigns.push(Campaign {
                            id: *c,
                            members: Vec::new(),
                            targets: Vec::new(),
                        });
                    }
                    self.campaigns[*c].members.push(ReviewerId(*id));
                }
            }
            ServeEvent::Review {
                worker,
                product,
                round,
                stars,
                length,
                upvotes,
            } => self.reviews.push(Review {
                reviewer: ReviewerId(*worker),
                product: ProductId(*product),
                round: *round,
                stars: *stars,
                length_chars: *length,
                upvotes: *upvotes,
            }),
            ServeEvent::Round => {}
        }
    }

    fn batch_trace(&self) -> TraceDataset {
        TraceDataset::new(
            self.products.clone(),
            self.reviewers.clone(),
            self.reviews.clone(),
            self.campaigns.clone(),
        )
        .expect("mirror entities are valid by construction")
    }
}

/// Streams `events` through the service at `pool`, comparing every
/// round boundary against a cold batch recompute over the mirror.
fn run_case(seed: u64, pool: usize) -> Result<(), String> {
    let events = random_stream(seed, 160);
    let design_cfg = DesignConfig::default();
    let pipeline_cfg = PipelineConfig::default();
    let mut service = ServeService::new(
        pipeline_cfg,
        design_cfg,
        pool,
        false,
        Metrics::noop(),
    )
    .map_err(|e| e.to_string())?;
    let mut mirror = Mirror::default();

    for event in &events {
        mirror.apply(event);
        let out = service
            .apply(event)
            .map_err(|e| format!("seed {seed} pool {pool}: protocol error: {e}"))?;
        let Some(out) = out else { continue };

        let trace = mirror.batch_trace();
        let detection = run_pipeline(&trace, pipeline_cfg);
        let batch = design_contracts(&trace, &detection, &design_cfg);
        match (&out.design, &batch) {
            (Ok(inc), Ok(cold)) => {
                if design_digest(inc) != design_digest(cold) {
                    return Err(format!(
                        "seed {seed} pool {pool} round {}: designs diverge bitwise \
                         (incremental U={:016x} vs batch U={:016x})",
                        out.round,
                        inc.total_requester_utility.to_bits(),
                        cold.total_requester_utility.to_bits()
                    ));
                }
            }
            (Err(inc), Err(cold)) => {
                let cold = cold.to_string();
                if inc != &cold {
                    return Err(format!(
                        "seed {seed} pool {pool} round {}: error mismatch: \
                         incremental {inc:?} vs batch {cold:?}",
                        out.round
                    ));
                }
            }
            (Ok(_), Err(cold)) => {
                return Err(format!(
                    "seed {seed} pool {pool} round {}: incremental succeeded, batch \
                     failed: {cold}",
                    out.round
                ));
            }
            (Err(inc), Ok(_)) => {
                return Err(format!(
                    "seed {seed} pool {pool} round {}: batch succeeded, incremental \
                     failed: {inc}",
                    out.round
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: after any event-stream prefix, the
    /// incremental state is bit-identical to a cold batch recompute
    /// over that prefix, for every pool size.
    #[test]
    fn incremental_stream_matches_cold_batch(seed in 0u64..1_000_000, pool in 1usize..=8) {
        let result = run_case(seed, pool);
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    }
}

/// Deterministic anchors so a regression fails even at
/// `PROPTEST_CASES=1`, covering both early-error rounds (too few
/// honest points) and steady-state rounds.
#[test]
fn fixed_streams_match_cold_batch() {
    for (seed, pool) in [(1, 1), (7, 3), (42, 8)] {
        run_case(seed, pool).expect("fixed stream must match");
    }
}
