//! Differential harness for the streaming service: random event
//! streams (products appearing, workers joining, reviews, campaign
//! churn, round boundaries) run through the incremental `dcc-serve`
//! state machine must agree **bit-for-bit** (`f64::to_bits`) with a
//! cold batch recompute (`run_pipeline` → `design_contracts`) over the
//! same prefix, at every round boundary and at every pool size 1–8 —
//! including rounds where both paths *fail* (too few observation
//! points early in a stream), which must produce identical error text.
//!
//! This is the external check backing `dcc-serve`'s central claim: the
//! incremental recompute is an optimization, never a semantic change.
//! CI runs this suite at `PROPTEST_CASES=256` (`.github/workflows/
//! ci.yml`, `serve` job); the in-file default keeps local runs quick.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::obs::Metrics;
use dyncontract::serve::{design_digest, ServeEvent, ServeService};
use dyncontract::trace::{
    Campaign, Product, ProductId, Review, Reviewer, ReviewerId, TraceDataset, WorkerClass,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a random but protocol-valid event stream: dense ids,
/// reviews only against existing entities, collusive joins that open
/// new campaigns or swell existing ones (campaign churn), and round
/// markers sprinkled throughout plus one at the end.
fn random_stream(seed: u64, len: usize) -> Vec<ServeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut n_products = 0usize;
    let mut n_workers = 0usize;
    let mut n_campaigns = 0usize;
    let mut round = 0usize;

    let push_product = |events: &mut Vec<ServeEvent>, n: &mut usize, rng: &mut StdRng| {
        events.push(ServeEvent::Product {
            id: *n,
            quality: rng.gen_range(1..=5) as f64,
        });
        *n += 1;
    };
    let push_join = |events: &mut Vec<ServeEvent>,
                         n: &mut usize,
                         campaigns: &mut usize,
                         rng: &mut StdRng| {
        let class = match rng.gen_range(0..10) {
            0..=5 => WorkerClass::Honest,
            6 | 7 => WorkerClass::NonCollusiveMalicious,
            _ => WorkerClass::CollusiveMalicious,
        };
        let campaign = if class == WorkerClass::CollusiveMalicious {
            // Open a new campaign or join an existing one (churn).
            let c = if *campaigns == 0 || rng.gen_bool(0.4) {
                *campaigns
            } else {
                rng.gen_range(0..*campaigns)
            };
            if c == *campaigns {
                *campaigns += 1;
            }
            Some(c)
        } else {
            None
        };
        events.push(ServeEvent::Join {
            id: *n,
            class,
            campaign,
            expert: rng.gen_bool(0.2),
        });
        *n += 1;
    };

    // Seed enough entities that reviews are possible from the start.
    for _ in 0..3 {
        push_product(&mut events, &mut n_products, &mut rng);
    }
    for _ in 0..4 {
        push_join(&mut events, &mut n_workers, &mut n_campaigns, &mut rng);
    }

    for _ in 0..len {
        match rng.gen_range(0..100) {
            0..=11 => push_product(&mut events, &mut n_products, &mut rng),
            12..=26 => push_join(&mut events, &mut n_workers, &mut n_campaigns, &mut rng),
            27..=33 => {
                events.push(ServeEvent::Round);
                round += 1;
            }
            _ => events.push(ServeEvent::Review {
                worker: rng.gen_range(0..n_workers),
                product: rng.gen_range(0..n_products),
                round,
                stars: rng.gen_range(1..=5) as f64,
                length: rng.gen_range(20..400),
                upvotes: rng.gen_range(0..12) as f64,
            }),
        }
    }
    events.push(ServeEvent::Round);
    events
}

/// A mirror of the stream's entities kept independently of the
/// service, from which the cold batch trace is rebuilt at every round
/// boundary via the one-shot `TraceDataset::new` constructor.
#[derive(Default)]
struct Mirror {
    products: Vec<Product>,
    reviewers: Vec<Reviewer>,
    reviews: Vec<Review>,
    campaigns: Vec<Campaign>,
}

impl Mirror {
    fn apply(&mut self, event: &ServeEvent) {
        match event {
            ServeEvent::Product { id, quality } => self.products.push(Product {
                id: ProductId(*id),
                true_quality: *quality,
            }),
            ServeEvent::Join {
                id,
                class,
                campaign,
                expert,
            } => {
                self.reviewers.push(Reviewer {
                    id: ReviewerId(*id),
                    class: *class,
                    campaign: *campaign,
                    is_expert: *expert,
                });
                if let Some(c) = campaign {
                    if *c == self.campaigns.len() {
                        self.campaigns.push(Campaign {
                            id: *c,
                            members: Vec::new(),
                            targets: Vec::new(),
                        });
                    }
                    self.campaigns[*c].members.push(ReviewerId(*id));
                }
            }
            ServeEvent::Review {
                worker,
                product,
                round,
                stars,
                length,
                upvotes,
            } => self.reviews.push(Review {
                reviewer: ReviewerId(*worker),
                product: ProductId(*product),
                round: *round,
                stars: *stars,
                length_chars: *length,
                upvotes: *upvotes,
            }),
            ServeEvent::Round => {}
        }
    }

    fn batch_trace(&self) -> TraceDataset {
        TraceDataset::new(
            self.products.clone(),
            self.reviewers.clone(),
            self.reviews.clone(),
            self.campaigns.clone(),
        )
        .expect("mirror entities are valid by construction")
    }
}

/// Streams `events` through the service at `pool`, comparing every
/// round boundary against a cold batch recompute over the mirror.
fn run_events(label: &str, events: &[ServeEvent], pool: usize) -> Result<(), String> {
    let design_cfg = DesignConfig::default();
    let pipeline_cfg = PipelineConfig::default();
    let mut service = ServeService::new(
        pipeline_cfg,
        design_cfg,
        pool,
        false,
        Metrics::noop(),
    )
    .map_err(|e| e.to_string())?;
    let mut mirror = Mirror::default();

    for event in events {
        mirror.apply(event);
        let out = service
            .apply(event)
            .map_err(|e| format!("{label} pool {pool}: protocol error: {e}"))?;
        let Some(out) = out else { continue };

        let trace = mirror.batch_trace();
        let detection = run_pipeline(&trace, pipeline_cfg);
        let batch = design_contracts(&trace, &detection, &design_cfg);
        match (&out.design, &batch) {
            (Ok(inc), Ok(cold)) => {
                if design_digest(inc) != design_digest(cold) {
                    return Err(format!(
                        "{label} pool {pool} round {}: designs diverge bitwise \
                         (incremental U={:016x} vs batch U={:016x})",
                        out.round,
                        inc.total_requester_utility.to_bits(),
                        cold.total_requester_utility.to_bits()
                    ));
                }
            }
            (Err(inc), Err(cold)) => {
                let cold = cold.to_string();
                if inc != &cold {
                    return Err(format!(
                        "{label} pool {pool} round {}: error mismatch: \
                         incremental {inc:?} vs batch {cold:?}",
                        out.round
                    ));
                }
            }
            (Ok(_), Err(cold)) => {
                return Err(format!(
                    "{label} pool {pool} round {}: incremental succeeded, batch \
                     failed: {cold}",
                    out.round
                ));
            }
            (Err(inc), Ok(_)) => {
                return Err(format!(
                    "{label} pool {pool} round {}: batch succeeded, incremental \
                     failed: {inc}",
                    out.round
                ));
            }
        }
    }
    Ok(())
}

fn run_case(seed: u64, pool: usize) -> Result<(), String> {
    run_events(&format!("seed {seed}"), &random_stream(seed, 160), pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: after any event-stream prefix, the
    /// incremental state is bit-identical to a cold batch recompute
    /// over that prefix, for every pool size.
    #[test]
    fn incremental_stream_matches_cold_batch(seed in 0u64..1_000_000, pool in 1usize..=8) {
        let result = run_case(seed, pool);
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    }
}

/// Deterministic anchors so a regression fails even at
/// `PROPTEST_CASES=1`, covering both early-error rounds (too few
/// honest points) and steady-state rounds.
#[test]
fn fixed_streams_match_cold_batch() {
    for (seed, pool) in [(1, 1), (7, 3), (42, 8)] {
        run_case(seed, pool).expect("fixed stream must match");
    }
}

// ------------------------------------------------- adversarial churn scripts

/// A deterministic event-script prelude: `n_products` products,
/// `n_honest` honest workers (every third an expert), and two collusive
/// campaigns of three members each, with every worker reviewing a
/// spread of products in round 0.
fn churn_prelude(events: &mut Vec<ServeEvent>, n_products: usize, n_honest: usize) -> usize {
    for id in 0..n_products {
        events.push(ServeEvent::Product {
            id,
            quality: (id % 5 + 1) as f64,
        });
    }
    let mut workers = 0usize;
    for i in 0..n_honest {
        events.push(ServeEvent::Join {
            id: workers,
            class: WorkerClass::Honest,
            campaign: None,
            expert: i % 3 == 0,
        });
        workers += 1;
    }
    for campaign in 0..2 {
        for _ in 0..3 {
            events.push(ServeEvent::Join {
                id: workers,
                class: WorkerClass::CollusiveMalicious,
                campaign: Some(campaign),
                expert: false,
            });
            workers += 1;
        }
    }
    for worker in 0..workers {
        for k in 0..3 {
            let product = (worker * 3 + k) % n_products;
            events.push(ServeEvent::Review {
                worker,
                product,
                round: 0,
                stars: ((product % 5) + 1) as f64,
                length: 80 + 10 * (worker % 7),
                upvotes: (worker % 4) as f64,
            });
        }
    }
    workers
}

/// Three deterministic churn scripts — a sybil influx swelling an
/// existing campaign mid-stream, a split opening a fresh campaign whose
/// cohort reviews its own products, and a merge where a wave of joiners
/// piles into campaign 0 while campaign 1's members bridge onto its
/// targets. Each interleaves the churn with round boundaries so the
/// incremental state carries dirty campaign structure across rounds.
fn churn_script(kind: usize) -> Vec<ServeEvent> {
    let n_products = 12;
    let mut events = Vec::new();
    let mut workers = churn_prelude(&mut events, n_products, 9);
    events.push(ServeEvent::Round);

    match kind {
        // Sybil influx: five new collusive workers join campaign 0 and
        // review in lock-step from round 1 on.
        0 => {
            for wave in 0..5 {
                events.push(ServeEvent::Join {
                    id: workers,
                    class: WorkerClass::CollusiveMalicious,
                    campaign: Some(0),
                    expert: false,
                });
                for round in 1..3 {
                    events.push(ServeEvent::Review {
                        worker: workers,
                        product: (wave + round) % n_products,
                        round,
                        stars: 5.0,
                        length: 60,
                        upvotes: 6.0,
                    });
                }
                workers += 1;
            }
        }
        // Split: a secession cohort opens campaign 2 with three fresh
        // products of its own and reviews only those from round 1 on.
        1 => {
            for id in n_products..n_products + 3 {
                events.push(ServeEvent::Product {
                    id,
                    quality: (id % 5 + 1) as f64,
                });
            }
            for s in 0..4 {
                events.push(ServeEvent::Join {
                    id: workers,
                    class: WorkerClass::CollusiveMalicious,
                    campaign: Some(2),
                    expert: false,
                });
                for round in 1..3 {
                    events.push(ServeEvent::Review {
                        worker: workers,
                        product: n_products + (s + round) % 3,
                        round,
                        stars: 4.0,
                        length: 120,
                        upvotes: 5.0,
                    });
                }
                workers += 1;
            }
        }
        // Merge: three joiners swell campaign 0 while the prelude's
        // campaign-1 members (ids 12..15 after 9 honest) bridge onto
        // campaign 0's review targets at round 1.
        _ => {
            for _ in 0..3 {
                events.push(ServeEvent::Join {
                    id: workers,
                    class: WorkerClass::CollusiveMalicious,
                    campaign: Some(0),
                    expert: false,
                });
                events.push(ServeEvent::Review {
                    worker: workers,
                    product: workers % n_products,
                    round: 1,
                    stars: 5.0,
                    length: 90,
                    upvotes: 7.0,
                });
                workers += 1;
            }
            for member in 12..15 {
                events.push(ServeEvent::Review {
                    worker: member,
                    product: 0,
                    round: 1,
                    stars: 5.0,
                    length: 70,
                    upvotes: 8.0,
                });
            }
        }
    }

    events.push(ServeEvent::Round);
    // A settling round with honest coverage after the churn.
    for worker in 0..9 {
        events.push(ServeEvent::Review {
            worker,
            product: (worker * 5) % n_products,
            round: 2,
            stars: (((worker * 5) % n_products) % 5 + 1) as f64,
            length: 100,
            upvotes: 2.0,
        });
    }
    events.push(ServeEvent::Round);
    events
}

/// Satellite churn coverage: the split/merge/sybil scripts are
/// digest-identical to the cold batch recompute at every round
/// boundary, at several pool sizes.
#[test]
fn churn_scripts_match_cold_batch() {
    for kind in 0..3 {
        let events = churn_script(kind);
        for pool in [1, 2, 4] {
            run_events(&format!("churn script {kind}"), &events, pool)
                .expect("churn script must match cold batch");
        }
    }
}
