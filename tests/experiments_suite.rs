//! Integration coverage of the experiment runners: every table/figure
//! regenerates with the paper's qualitative shape at the small scale.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::experiments::{fig6, fig7, fig8a, fig8b, fig8c, table2, table3, ExperimentScale};
use dyncontract::trace::WorkerClass;

const SEED: u64 = 777;

#[test]
fn e1_fig6_bracket_and_convergence() {
    let r = fig6::run(&[4, 16, 64]).expect("fig6");
    for p in &r.points {
        assert!(p.lower_bound <= p.achieved + 1e-9);
        assert!(p.achieved <= p.upper_bound + 1e-9);
    }
    let gap_first = r.points[0].upper_bound - r.points[0].achieved;
    let gap_last = r.points[2].upper_bound - r.points[2].achieved;
    assert!(gap_last < gap_first);
}

#[test]
fn e2_table2_bucket_shape() {
    let r = table2::run(ExperimentScale::Small, SEED).unwrap();
    assert!(r.communities >= 20, "expected enough communities, got {}", r.communities);
    let counts: Vec<usize> = r.rows.iter().map(|row| row.1).collect();
    assert!(counts.iter().all(|&c| c <= counts[0]), "size-2 must dominate: {counts:?}");
}

#[test]
fn e3_fig7_collusive_feedback_inflated() {
    let r = fig7::run(ExperimentScale::Small, SEED);
    let cm = r.feedback_of(WorkerClass::CollusiveMalicious).unwrap();
    let honest = r.feedback_of(WorkerClass::Honest).unwrap();
    assert!(cm > 1.3 * honest);
}

#[test]
fn e4_table3_quadratic_suffices() {
    let r = table3::run(ExperimentScale::Small, SEED).expect("table3");
    for (class, nors, _) in &r.rows {
        assert!(
            nors[1] <= 1.1 * nors[5],
            "{class}: quadratic NoR should be near the 6th-order NoR"
        );
    }
}

#[test]
fn e5_fig8a_gap_shrinks() {
    let r = fig8a::run(ExperimentScale::Small, SEED).expect("fig8a");
    let gaps: Vec<f64> = r.panels.iter().map(|p| p.mean_gap).collect();
    assert!(gaps[2] < gaps[0], "gap must shrink with m: {gaps:?}");
    for p in &r.panels {
        for w in &p.workers {
            assert!(w.compensation >= w.lower_bound - 1e-9);
        }
    }
}

#[test]
fn e6_fig8b_ordering() {
    let r = fig8b::run(ExperimentScale::Small, SEED).expect("fig8b");
    for &mu in &fig8b::DEFAULT_MUS {
        let honest = r.mean_of(mu, WorkerClass::Honest).unwrap();
        let ncm = r.mean_of(mu, WorkerClass::NonCollusiveMalicious).unwrap();
        let cm = r.mean_of(mu, WorkerClass::CollusiveMalicious).unwrap();
        assert!(honest > ncm && ncm >= cm, "mu={mu}: {honest} / {ncm} / {cm}");
    }
}

#[test]
fn e7_fig8c_dominance() {
    let r = fig8c::run(ExperimentScale::Small, SEED).expect("fig8c");
    for row in &r.rows {
        assert!(row.ours >= row.exclude, "mu={}: {} vs {}", row.mu, row.ours, row.exclude);
        assert!(row.ours >= row.fixed);
    }
}
