//! Paper-scale stress test — `#[ignore]`d by default; run explicitly
//! with `cargo test --release --test stress -- --ignored`.

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::experiments::ExperimentScale;
use std::time::Instant;

#[test]
#[ignore = "paper-scale run (~10 s in release); invoke with -- --ignored"]
fn paper_scale_pipeline_under_a_minute() {
    let t0 = Instant::now();
    let trace = ExperimentScale::Paper.generate(42);
    let gen_time = t0.elapsed();
    assert!(trace.reviews().len() > 100_000);

    let t1 = Instant::now();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let detect_time = t1.elapsed();
    assert!(detection.weights.as_slice().len() > 19_000);

    let t2 = Instant::now();
    let design = design_contracts(&trace, &detection, &DesignConfig::default()).expect("design");
    let design_time = t2.elapsed();
    assert!(design.agents.len() > 19_000);

    let total = t0.elapsed();
    println!(
        "paper scale: gen {gen_time:?}, detect {detect_time:?}, design {design_time:?}, total {total:?}"
    );
    assert!(
        total.as_secs() < 60,
        "paper-scale pipeline took {total:?} (> 60 s)"
    );
}
