//! Paper-scale stress test — gated on `DCC_SLOW_TESTS=1` instead of
//! `#[ignore]`, so the scheduled CI job (`.github/workflows/scheduled.yml`)
//! exercises it without a bespoke `-- --ignored` invocation:
//!
//! ```text
//! DCC_SLOW_TESTS=1 cargo test --release --test stress
//! ```
//!
//! Without the variable the test returns immediately (and says so), so
//! plain `cargo test` stays fast.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::experiments::ExperimentScale;
use std::time::Instant;

/// True when slow, paper-scale tests were explicitly requested.
fn slow_tests_enabled() -> bool {
    std::env::var("DCC_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

#[test]
fn paper_scale_pipeline_under_a_minute() {
    if !slow_tests_enabled() {
        eprintln!("skipping paper-scale stress test; set DCC_SLOW_TESTS=1 to run it");
        return;
    }
    let t0 = Instant::now();
    let trace = ExperimentScale::Paper.generate(42);
    let gen_time = t0.elapsed();
    assert!(trace.reviews().len() > 100_000);

    let t1 = Instant::now();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let detect_time = t1.elapsed();
    assert!(detection.weights.as_slice().len() > 19_000);

    let t2 = Instant::now();
    let design = design_contracts(&trace, &detection, &DesignConfig::default()).expect("design");
    let design_time = t2.elapsed();
    assert!(design.agents.len() > 19_000);

    let total = t0.elapsed();
    println!(
        "paper scale: gen {gen_time:?}, detect {detect_time:?}, design {design_time:?}, total {total:?}"
    );
    assert!(
        total.as_secs() < 60,
        "paper-scale pipeline took {total:?} (> 60 s)"
    );
}
