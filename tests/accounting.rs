//! Accounting consistency across evaluation modes: the same design's
//! money flows add up identically whichever layer reports them.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    design_contracts, replay_trace, BaselineStrategy, DesignConfig, Simulation,
    SimulationConfig, StrategyKind,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::SyntheticConfig;
use std::collections::BTreeSet;

#[test]
fn simulation_round_payments_equal_agent_totals() {
    let mut cfg = SyntheticConfig::small(606);
    cfg.n_honest = 150;
    cfg.n_products = 600;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).unwrap();
    let suspected: BTreeSet<_> = detection.suspected.iter().copied().collect();
    let agents = BaselineStrategy::new(StrategyKind::DynamicContract)
        .assemble(&design, config.params.omega, &suspected, &trace)
        .unwrap();
    let outcome = Simulation::new(
        config.params,
        SimulationConfig {
            rounds: 9,
            feedback_noise_sd: 0.4,
            seed: 3,
        },
    )
    .run(&agents)
    .unwrap();

    // Σ per-round payments == Σ per-agent compensation totals.
    let by_rounds: f64 = outcome.rounds.iter().map(|r| r.payment).sum();
    let by_agents: f64 = outcome.agent_compensation.iter().sum();
    assert!(
        (by_rounds - by_agents).abs() < 1e-6,
        "rounds {by_rounds} vs agents {by_agents}"
    );

    // Each round's utility is exactly benefit − μ·payment.
    for r in &outcome.rounds {
        assert!(
            (r.requester_utility - (r.benefit - config.params.mu * r.payment)).abs() < 1e-9
        );
    }
    // Cumulative equals the sum of rounds.
    let total: f64 = outcome.rounds.iter().map(|r| r.requester_utility).sum();
    assert!((outcome.cumulative_requester_utility - total).abs() < 1e-9);
}

#[test]
fn replay_round_payments_equal_worker_totals() {
    let mut cfg = SyntheticConfig::small(707);
    cfg.n_honest = 120;
    cfg.n_products = 500;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).unwrap();
    let outcome = replay_trace(&trace, &detection, &design, &config.params).unwrap();

    let by_rounds: f64 = outcome.rounds.iter().map(|r| r.payment).sum();
    let by_workers: f64 = outcome.worker_compensation.iter().sum();
    assert!(
        (by_rounds - by_workers).abs() < 1e-6,
        "rounds {by_rounds} vs workers {by_workers}"
    );
    for r in &outcome.rounds {
        assert!(
            (r.requester_utility - (r.benefit - config.params.mu * r.payment)).abs() < 1e-9
        );
    }
}
