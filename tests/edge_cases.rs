//! Edge-case and failure-injection integration tests.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

// Tests assert exact sentinel values (a zero contract pays exactly 0.0);
// clippy.toml's in-tests switches do not cover float_cmp.
#![allow(clippy::float_cmp)]

use dyncontract::core::{
    design_contracts, AgentSpec, ContractBuilder, DesignConfig, Discretization, ModelParams,
    Simulation, SimulationConfig,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::numerics::Quadratic;
use dyncontract::trace::SyntheticConfig;

fn params() -> ModelParams {
    ModelParams {
        mu: 1.0,
        ..ModelParams::default()
    }
}

#[test]
fn single_interval_discretization_works() {
    // m = 1 is the degenerate partition: one candidate plus the zero
    // contract.
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let built = ContractBuilder::new(params(), Discretization::new(1, 5.0).unwrap(), psi)
        .honest()
        .weight(1.5)
        .build()
        .unwrap();
    assert!(built.contract().is_monotone());
    assert!(built.requester_utility().is_finite());
    assert_eq!(built.diagnostics().len(), 2);
}

#[test]
fn all_honest_trace_designs_without_malicious_machinery() {
    let mut cfg = SyntheticConfig::small(55);
    cfg.n_honest = 80;
    cfg.n_ncm = 0;
    cfg.n_cm_target = 0;
    cfg.n_products = 400;
    let trace = cfg.generate();
    assert!(trace.campaigns().is_empty());

    let detection = run_pipeline(&trace, PipelineConfig::default());
    assert!(detection.suspected.is_empty());
    assert!(detection.collusion.communities.is_empty());

    let design = design_contracts(&trace, &detection, &DesignConfig::default()).unwrap();
    assert_eq!(
        design.agents.len(),
        trace
            .reviewers()
            .iter()
            .filter(|r| !trace.reviews_by(r.id).is_empty())
            .count()
    );
    assert!(design.agents.iter().all(|a| !a.suspected));
}

#[test]
fn almost_all_malicious_trace_still_designs() {
    let mut cfg = SyntheticConfig::small(56);
    cfg.n_honest = 20;
    cfg.n_ncm = 40;
    cfg.n_cm_target = 30;
    cfg.n_products = 800;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let design = design_contracts(&trace, &detection, &DesignConfig::default()).unwrap();
    assert!(design.total_requester_utility.is_finite());
    // Suspected agents outnumber honest ones.
    let suspected = design.agents.iter().filter(|a| a.suspected).count();
    assert!(suspected > design.agents.len() / 2);
}

#[test]
fn community_meta_agent_simulates() {
    // A 3-member community simulated as one meta-agent.
    let psi = Quadratic::new(-0.1, 2.2, 0.8);
    let built = ContractBuilder::new(params(), Discretization::covering(10, 8.0).unwrap(), psi)
        .malicious(0.4)
        .weight(0.9)
        .build()
        .unwrap();
    let agent = AgentSpec {
        id: 0,
        members: 3,
        omega: 0.4,
        weight: 0.9,
        psi,
        contract: built.contract().clone(),
        in_system: true,
    };
    let outcome = Simulation::new(
        params(),
        SimulationConfig {
            rounds: 6,
            feedback_noise_sd: 0.0,
            seed: 1,
        },
    )
    .run(&[agent])
    .unwrap();
    assert_eq!(outcome.rounds.len(), 6);
    assert!(outcome.agent_effort[0] >= 0.0);
}

#[test]
fn extreme_parameters_do_not_break_the_builder() {
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let disc = Discretization::covering(20, 7.0).unwrap();
    // Huge mu: requester never pays -> zero contract.
    let stingy = ContractBuilder::new(
        ModelParams {
            mu: 1e6,
            ..params()
        },
        disc,
        psi,
    )
    .honest()
    .weight(1.0)
    .build()
    .unwrap();
    assert_eq!(stingy.k_opt(), None);
    assert_eq!(stingy.compensation(), 0.0);

    // Tiny mu: requester pushes to the top interval.
    let generous = ContractBuilder::new(
        ModelParams {
            mu: 1e-6,
            ..params()
        },
        disc,
        psi,
    )
    .honest()
    .weight(1.0)
    .build()
    .unwrap();
    assert_eq!(generous.k_opt(), Some(20));

    // Enormous weight behaves like tiny mu.
    let keen = ContractBuilder::new(params(), disc, psi)
        .honest()
        .weight(1e9)
        .build()
        .unwrap();
    assert_eq!(keen.k_opt(), Some(20));
}

#[test]
fn near_linear_psi_is_accepted_up_to_validity() {
    // Very small curvature is still a valid model effort function as long
    // as the region stays below the (far) peak.
    let psi = Quadratic::new(-1e-6, 1.0, 0.0);
    let disc = Discretization::covering(8, 10.0).unwrap();
    let built = ContractBuilder::new(params(), disc, psi)
        .honest()
        .weight(2.0)
        .build()
        .unwrap();
    assert!(built.requester_utility().is_finite());
}

#[test]
fn empty_population_design_runs() {
    let mut cfg = SyntheticConfig::small(57);
    cfg.n_honest = 5;
    cfg.n_ncm = 0;
    cfg.n_cm_target = 0;
    cfg.n_products = 300;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    // Five honest workers is enough for a fit (>= 3 points) and a design.
    let design = design_contracts(&trace, &detection, &DesignConfig::default()).unwrap();
    assert_eq!(design.agents.len(), 5);
}
