//! End-to-end integration: trace generation → detection → clustering →
//! fitting → contract design → repeated-game simulation, across all
//! crates through the meta-crate's public API.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    design_contracts, BaselineStrategy, DesignConfig, ModelParams, Simulation, SimulationConfig,
    StrategyKind,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::{SyntheticConfig, WorkerClass};
use std::collections::BTreeSet;

fn trace() -> dyncontract::trace::TraceDataset {
    let mut cfg = SyntheticConfig::small(4242);
    cfg.n_honest = 500;
    cfg.n_products = 1_200;
    cfg.generate()
}

#[test]
fn full_pipeline_produces_consistent_design() {
    let trace = trace();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");

    // Every reviewing worker has exactly one contract.
    let reviewing = trace
        .reviewers()
        .iter()
        .filter(|r| !trace.reviews_by(r.id).is_empty())
        .count();
    assert_eq!(design.agents.len(), reviewing);

    // Contracts are monotone with nonnegative finite payments.
    for agent in &design.agents {
        assert!(agent.contract.is_monotone());
        assert!(agent.compensation.is_finite() && agent.compensation >= 0.0);
        assert!(agent.induced_effort >= 0.0);
    }

    // Ground-truth communities share contracts and split payments.
    for campaign in trace.campaigns() {
        let first = design.for_worker(campaign.members[0]).expect("assigned");
        for member in &campaign.members[1..] {
            let a = design.for_worker(*member).expect("assigned");
            assert_eq!(a.subproblem, first.subproblem);
            assert!((a.compensation - first.compensation).abs() < 1e-12);
        }
    }

    // Total utility equals the sum over subproblems.
    let total: f64 = design
        .solution
        .solutions
        .iter()
        .map(|s| s.built.requester_utility())
        .sum();
    assert!((design.total_requester_utility - total).abs() < 1e-9);
}

#[test]
fn compensation_ordering_matches_fig8b() {
    let trace = trace();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let design = design_contracts(&trace, &detection, &DesignConfig::default()).expect("design");
    let mean = |class: WorkerClass| {
        let comps = design.compensations_of(&trace.workers_of_class(class));
        comps.iter().sum::<f64>() / comps.len().max(1) as f64
    };
    let honest = mean(WorkerClass::Honest);
    let ncm = mean(WorkerClass::NonCollusiveMalicious);
    let cm = mean(WorkerClass::CollusiveMalicious);
    assert!(honest > ncm, "honest {honest} <= ncm {ncm}");
    assert!(ncm >= cm, "ncm {ncm} < cm {cm}");
}

#[test]
fn simulation_confirms_design_and_dominates_baselines() {
    let trace = trace();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");
    let suspected: BTreeSet<_> = detection.suspected.iter().copied().collect();
    let sim = Simulation::new(
        config.params,
        SimulationConfig {
            rounds: 10,
            feedback_noise_sd: 0.0,
            seed: 5,
        },
    );

    let ours = sim
        .run(
            &BaselineStrategy::new(StrategyKind::DynamicContract)
                .assemble(&design, config.params.omega, &suspected, &trace)
                .expect("assemble"),
        )
        .expect("sim");
    let excl = sim
        .run(
            &BaselineStrategy::new(StrategyKind::ExcludeMalicious)
                .assemble(&design, config.params.omega, &suspected, &trace)
                .expect("assemble"),
        )
        .expect("sim");
    assert!(
        ours.mean_round_utility >= excl.mean_round_utility,
        "ours {} vs exclusion {}",
        ours.mean_round_utility,
        excl.mean_round_utility
    );

    // Noise-free steady-state rounds of our strategy reproduce the static
    // design utility.
    let steady = ours.rounds.last().expect("rounds");
    let rel = (steady.requester_utility - design.total_requester_utility).abs()
        / design.total_requester_utility.abs().max(1.0);
    assert!(
        rel < 0.05,
        "steady state {} vs designed {}",
        steady.requester_utility,
        design.total_requester_utility
    );
}

#[test]
fn design_respects_custom_parameters() {
    let trace = trace();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    // Harsher mu means the requester spends less in total.
    let spend = |mu: f64| {
        let config = DesignConfig {
            params: ModelParams {
                mu,
                ..ModelParams::default()
            },
            ..DesignConfig::default()
        };
        let design = design_contracts(&trace, &detection, &config).expect("design");
        design.agents.iter().map(|a| a.compensation).sum::<f64>()
    };
    assert!(spend(2.0) <= spend(0.8) + 1e-9);
}
