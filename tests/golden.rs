//! Golden regression harness for the paper's numeric artifacts.
//!
//! Each test regenerates one artifact — the Table II community-size
//! distribution, the Table III NoR fits, and the Fig. 8(b)/8(c)
//! compensation/utility curves — from the seeded synthetic trace
//! (`ExperimentScale::Small`, seed [`dyncontract::experiments::DEFAULT_SEED`])
//! and compares it leaf-by-leaf against the committed snapshot under
//! `tests/golden/`. Numeric leaves must agree within `1e-9`
//! (absolute-or-relative, see [`TOLERANCE`]); any drift fails with the
//! full list of diverging paths.
//!
//! ## Updating the snapshots
//!
//! After an *intentional* numeric change, regenerate and commit:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! git diff tests/golden/   # review the drift before committing it
//! ```
//!
//! With `UPDATE_GOLDEN=1` every test rewrites its snapshot and passes;
//! without it the snapshots are read-only references.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::batch::{BatchRunner, ScenarioGrid};
use dyncontract::core::DesignConfig;
use dyncontract::detect::PipelineConfig;
use dyncontract::experiments::{
    adversarial, fig8b, fig8c, table2, table3, ExperimentScale, DEFAULT_SEED,
};
use dyncontract::faults::Json;
use dyncontract::obs::{JsonRecorder, Metrics};
use dyncontract::serve::{design_digest, events_from_trace, fold_digest, ServeService};
use dyncontract::trace::TraceDataset;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Numeric leaves may drift by at most this much, measured as
/// `|a - b| <= TOLERANCE * max(1, |a|, |b|)` — absolute near zero,
/// relative for large magnitudes.
const TOLERANCE: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The one trace all snapshots derive from: the experiment suite's
/// small scale at the shared default seed.
fn trace() -> &'static TraceDataset {
    static TRACE: OnceLock<TraceDataset> = OnceLock::new();
    TRACE.get_or_init(|| ExperimentScale::Small.generate(DEFAULT_SEED))
}

// ---------------------------------------------------------------- encoding

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn render(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, 0, &mut out);
    out.push('\n');
    out
}

fn render_into(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            write!(out, "{b}").ok();
        }
        // `{}` prints the shortest representation that round-trips, so
        // a reparsed snapshot compares bit-exactly to the original.
        Json::Num(x) => {
            write!(out, "{x}").ok();
        }
        Json::Str(s) => {
            write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")).ok();
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\n{pad}  ").ok();
                render_into(item, indent + 1, out);
            }
            if !items.is_empty() {
                write!(out, "\n{pad}").ok();
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (key, member)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\n{pad}  \"{key}\": ").ok();
                render_into(member, indent + 1, out);
            }
            if !members.is_empty() {
                write!(out, "\n{pad}").ok();
            }
            out.push('}');
        }
    }
}

fn encode_table2() -> Json {
    let r = table2::run_on(trace()).unwrap();
    obj(vec![
        (
            "rows",
            Json::Arr(
                r.rows
                    .iter()
                    .map(|(label, count, ours, paper)| {
                        obj(vec![
                            ("size", Json::Str(label.clone())),
                            ("count", Json::idx(*count)),
                            ("ours_pct", Json::num(*ours)),
                            ("paper_pct", Json::num(*paper)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("communities", Json::idx(r.communities)),
        ("collusive_workers", Json::idx(r.collusive_workers)),
    ])
}

fn encode_table3() -> Json {
    let r = table3::run_on(trace()).expect("table3 fits on the seeded trace");
    obj(vec![(
        "rows",
        Json::Arr(
            r.rows
                .iter()
                .map(|(class, nors, points)| {
                    obj(vec![
                        ("class", Json::Str(class.to_string())),
                        ("points", Json::idx(*points)),
                        ("nors", Json::Arr(nors.iter().map(|&v| Json::num(v)).collect())),
                    ])
                })
                .collect(),
        ),
    )])
}

fn encode_fig8b() -> Json {
    let r = fig8b::run_on(trace(), &fig8b::DEFAULT_MUS).expect("fig8b designs");
    obj(vec![(
        "groups",
        Json::Arr(
            r.groups
                .iter()
                .map(|g| {
                    obj(vec![
                        ("mu", Json::num(g.mu)),
                        ("class", Json::Str(g.class.to_string())),
                        ("count", Json::idx(g.summary.count)),
                        ("mean", Json::num(g.summary.mean)),
                        ("std_dev", Json::num(g.summary.std_dev)),
                        ("min", Json::num(g.summary.min)),
                        ("p5", Json::num(g.summary.p5)),
                        ("median", Json::num(g.summary.median)),
                        ("p95", Json::num(g.summary.p95)),
                        ("max", Json::num(g.summary.max)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn encode_fig8c() -> Json {
    let r = fig8c::run_on(trace(), &fig8b::DEFAULT_MUS).expect("fig8c simulates");
    obj(vec![(
        "rows",
        Json::Arr(
            r.rows
                .iter()
                .map(|row| {
                    obj(vec![
                        ("mu", Json::num(row.mu)),
                        ("ours", Json::num(row.ours)),
                        ("exclude", Json::num(row.exclude)),
                        ("fixed", Json::num(row.fixed)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// The 3 μ × 3 budget-fraction design-only grid the batch runner
/// snapshot covers: utilities, full spends, and the funded worker sets
/// selected at each budget level.
fn encode_batch_grid() -> Json {
    let mut grid = ScenarioGrid::for_trace(trace().clone(), &[1.8, 1.5, 1.0]);
    grid.budget_fractions = vec![0.25, 0.5, 1.0];
    let report = BatchRunner::new().run(&grid).expect("batch grid runs");
    obj(vec![(
        "scenarios",
        Json::Arr(
            report
                .records
                .iter()
                .map(|r| {
                    let o = r.outcome().expect("design-only scenario succeeds");
                    obj(vec![
                        ("mu", Json::num(r.scenario.mu)),
                        ("budget_fraction", Json::num(r.scenario.budget_fraction)),
                        ("utility", Json::num(o.design.total_requester_utility)),
                        ("full_spend", Json::num(o.full_spend)),
                        (
                            "funded",
                            Json::Arr(o.budget.funded.iter().map(|&w| Json::idx(w)).collect()),
                        ),
                        ("budget_spend", Json::num(o.budget.spend)),
                        ("budget_utility", Json::num(o.budget.utility)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// The streaming service replaying the seeded trace: every round
/// boundary's work deltas and design fingerprint, the end-of-run
/// counters, and the full redacted `serve.*` metrics document
/// ([`JsonRecorder::to_json_redacted`] zeroes span timings, so the
/// snapshot is wall-clock-free). Uses the same small-scale trace as
/// every other snapshot; the paper-scale stream is exercised by the
/// nightly soak in `.github/workflows/scheduled.yml`.
fn encode_serve_replay() -> Json {
    let recorder = Arc::new(JsonRecorder::new());
    let mut service = ServeService::new(
        PipelineConfig::default(),
        DesignConfig::default(),
        2,
        false,
        Metrics::new(recorder.clone()),
    )
    .expect("serve config is valid");
    let mut rounds = Vec::new();
    for event in &events_from_trace(trace()) {
        if let Some(out) = service.apply(event).expect("replay applies cleanly") {
            let design = out.design.as_ref().expect("seeded trace designs every round");
            rounds.push(obj(vec![
                ("round", Json::idx(out.round)),
                ("events", Json::idx(out.events)),
                ("dirty_workers", Json::idx(out.dirty_workers)),
                ("dirty_products", Json::idx(out.dirty_products)),
                ("resolved", Json::idx(out.resolved)),
                ("reused", Json::idx(out.reused)),
                ("agents", Json::idx(design.agents.len())),
                ("total_utility", Json::num(design.total_requester_utility)),
                (
                    "digest",
                    Json::Str(format!("{:016x}", fold_digest(&design_digest(design)))),
                ),
            ]));
        }
    }
    let stats = service.stats();
    let metrics = Json::parse(&recorder.to_json_redacted())
        .expect("redacted metrics document parses");
    obj(vec![
        ("rounds", Json::Arr(rounds)),
        (
            "summary",
            obj(vec![
                ("events", Json::idx(stats.events)),
                ("rounds", Json::idx(stats.rounds)),
                ("fit_refits", Json::idx(stats.fit_refits)),
                ("fit_reused", Json::idx(stats.fit_reused)),
                ("solve_resolved", Json::idx(stats.solve_resolved)),
                ("solve_reused", Json::idx(stats.solve_reused)),
                ("incremental_ratio", Json::num(stats.incremental_ratio())),
            ]),
        ),
        ("metrics", metrics),
    ])
}

/// The E15 adversarial head-to-head: the BiP dynamic contract and the
/// collusion-proof baseline simulated on each of the three standard
/// adversary plans (sybil influx, split/merge churn, stealth
/// under-reporting) applied to the seeded trace's generator config.
fn encode_adversarial() -> Json {
    let r = adversarial::run(ExperimentScale::Small, DEFAULT_SEED)
        .expect("adversarial head-to-head runs");
    obj(vec![(
        "rows",
        Json::Arr(
            r.rows
                .iter()
                .map(|row| {
                    obj(vec![
                        ("plan", Json::Str(row.plan.clone())),
                        ("events", Json::idx(row.events)),
                        ("dynamic", Json::num(row.dynamic)),
                        ("collusion_proof", Json::num(row.collusion_proof)),
                    ])
                })
                .collect(),
        ),
    )])
}

// --------------------------------------------------------------- comparison

/// Walks both documents and records every path where they differ —
/// structurally, or numerically beyond [`TOLERANCE`]. Object members
/// compare by key, order-insensitively.
fn diff(path: &str, golden: &Json, actual: &Json, diffs: &mut Vec<String>) {
    match (golden, actual) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(a), Json::Bool(b)) if a == b => {}
        (Json::Str(a), Json::Str(b)) if a == b => {}
        (Json::Num(a), Json::Num(b)) => {
            let scale = 1.0_f64.max(a.abs()).max(b.abs());
            if (a - b).abs() > TOLERANCE * scale {
                diffs.push(format!(
                    "{path}: golden {a:?} vs actual {b:?} (drift {:.3e})",
                    (a - b).abs()
                ));
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                diffs.push(format!("{path}: length {} vs {}", a.len(), b.len()));
                return;
            }
            for (i, (ga, ac)) in a.iter().zip(b).enumerate() {
                diff(&format!("{path}[{i}]"), ga, ac, diffs);
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            for (key, ga) in a {
                match b.iter().find(|(k, _)| k == key) {
                    Some((_, ac)) => diff(&format!("{path}.{key}"), ga, ac, diffs),
                    None => diffs.push(format!("{path}.{key}: missing from actual")),
                }
            }
            for (key, _) in b {
                if !a.iter().any(|(k, _)| k == key) {
                    diffs.push(format!("{path}.{key}: not in golden"));
                }
            }
        }
        _ => diffs.push(format!("{path}: golden {golden:?} vs actual {actual:?}")),
    }
}

/// Checks `actual` against `tests/golden/<name>.json`, or rewrites the
/// snapshot when `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, actual: Json) {
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var("UPDATE_GOLDEN").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, render(&actual))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("updated golden snapshot {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {}: {e}\n\
             (regenerate with UPDATE_GOLDEN=1 cargo test --test golden)",
            path.display()
        )
    });
    let golden = Json::parse(&text)
        .unwrap_or_else(|e| panic!("golden snapshot {} is invalid JSON: {e}", path.display()));
    let mut diffs = Vec::new();
    diff(name, &golden, &actual, &mut diffs);
    assert!(
        diffs.is_empty(),
        "golden snapshot {name} drifted beyond {TOLERANCE:e}:\n  {}\n\
         If the change is intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test golden",
        diffs.join("\n  ")
    );
}

// -------------------------------------------------------------------- tests

#[test]
fn golden_table2_community_distribution() {
    check_golden("table2", encode_table2());
}

#[test]
fn golden_table3_fit_residuals() {
    check_golden("table3", encode_table3());
}

#[test]
fn golden_fig8b_compensation_by_class() {
    check_golden("fig8b", encode_fig8b());
}

#[test]
fn golden_fig8c_utility_vs_baselines() {
    check_golden("fig8c", encode_fig8c());
}

#[test]
fn golden_batch_grid() {
    check_golden("batch_grid", encode_batch_grid());
}

#[test]
fn golden_serve_replay() {
    check_golden("serve_replay", encode_serve_replay());
}

#[test]
fn golden_adversarial_head_to_head() {
    check_golden("adversarial", encode_adversarial());
}

/// The adversarial snapshot catches drift in the attacked-trace
/// pipeline: nudging one plan's `collusion_proof` utility by a relative
/// `1e-6` must surface as a diff naming that leaf, and the pristine
/// encoding must agree with itself exactly.
#[test]
fn a_perturbed_adversarial_utility_fails_the_comparison() {
    fn perturb_first_cp(value: &mut Json) -> bool {
        match value {
            Json::Arr(items) => items.iter_mut().any(perturb_first_cp),
            Json::Obj(members) => members.iter_mut().any(|(key, member)| {
                if key == "collusion_proof" {
                    if let Json::Num(x) = member {
                        *x += 1e-6 * x.abs().max(1.0);
                        return true;
                    }
                    false
                } else {
                    perturb_first_cp(member)
                }
            }),
            _ => false,
        }
    }

    let pristine = encode_adversarial();
    let mut perturbed = pristine.clone();
    assert!(perturb_first_cp(&mut perturbed), "found a utility to perturb");

    let mut diffs = Vec::new();
    diff("adversarial", &pristine, &perturbed, &mut diffs);
    assert!(!diffs.is_empty(), "a 1e-6 utility perturbation must be detected");
    assert!(
        diffs[0].contains("collusion_proof"),
        "the diff names the perturbed leaf: {diffs:?}"
    );

    let mut clean = Vec::new();
    diff("adversarial", &pristine, &pristine, &mut clean);
    assert!(clean.is_empty());
}

/// The serve snapshot catches drift in the incremental path: nudging
/// one round's `total_utility` by a relative `1e-6` must surface as a
/// diff naming that leaf, and the pristine encoding must agree with
/// itself exactly.
#[test]
fn a_perturbed_serve_utility_fails_the_comparison() {
    fn perturb_first_utility(value: &mut Json) -> bool {
        match value {
            Json::Arr(items) => items.iter_mut().any(perturb_first_utility),
            Json::Obj(members) => members.iter_mut().any(|(key, member)| {
                if key == "total_utility" {
                    if let Json::Num(x) = member {
                        *x += 1e-6 * x.abs().max(1.0);
                        return true;
                    }
                    false
                } else {
                    perturb_first_utility(member)
                }
            }),
            _ => false,
        }
    }

    let pristine = encode_serve_replay();
    let mut perturbed = pristine.clone();
    assert!(perturb_first_utility(&mut perturbed), "found a utility to perturb");

    let mut diffs = Vec::new();
    diff("serve_replay", &pristine, &perturbed, &mut diffs);
    assert!(!diffs.is_empty(), "a 1e-6 utility perturbation must be detected");
    assert!(
        diffs[0].contains("total_utility"),
        "the diff names the perturbed leaf: {diffs:?}"
    );

    let mut clean = Vec::new();
    diff("serve_replay", &pristine, &pristine, &mut clean);
    assert!(clean.is_empty());
}

/// The batch snapshot catches drift in the scheduler itself: nudging
/// one scenario's `full_spend` by a relative `1e-6` — three orders of
/// magnitude above the `1e-9` tolerance — must surface as a diff
/// naming that leaf.
#[test]
fn a_perturbed_batch_spend_fails_the_comparison() {
    fn perturb_first_spend(value: &mut Json) -> bool {
        match value {
            Json::Arr(items) => items.iter_mut().any(perturb_first_spend),
            Json::Obj(members) => members.iter_mut().any(|(key, member)| {
                if key == "full_spend" {
                    if let Json::Num(x) = member {
                        *x += 1e-6 * x.abs().max(1.0);
                        return true;
                    }
                    false
                } else {
                    perturb_first_spend(member)
                }
            }),
            _ => false,
        }
    }

    let pristine = encode_batch_grid();
    let mut perturbed = pristine.clone();
    assert!(perturb_first_spend(&mut perturbed), "found a spend to perturb");

    let mut diffs = Vec::new();
    diff("batch_grid", &pristine, &perturbed, &mut diffs);
    assert!(!diffs.is_empty(), "a 1e-6 spend perturbation must be detected");
    assert!(
        diffs[0].contains("full_spend"),
        "the diff names the perturbed leaf: {diffs:?}"
    );
}

/// The harness is sensitive enough for its job: perturbing a single fit
/// coefficient by `1e-6` — three orders of magnitude above the `1e-9`
/// tolerance — must surface as a reported diff.
#[test]
fn a_1e6_perturbation_fails_the_comparison() {
    // Perturbs the first NoR coefficient found, skipping integral
    // counts: drift is about fitted coefficients.
    fn perturb_first_nor(value: &mut Json) -> bool {
        match value {
            Json::Arr(items) => items.iter_mut().any(perturb_first_nor),
            Json::Obj(members) => members.iter_mut().any(|(key, member)| {
                if key == "nors" {
                    if let Json::Arr(nors) = member {
                        if let Some(Json::Num(x)) = nors.first_mut() {
                            *x += 1e-6;
                            return true;
                        }
                    }
                    false
                } else {
                    perturb_first_nor(member)
                }
            }),
            _ => false,
        }
    }

    let pristine = encode_table3();
    let mut perturbed = pristine.clone();
    assert!(perturb_first_nor(&mut perturbed), "found a coefficient to perturb");

    let mut diffs = Vec::new();
    diff("table3", &pristine, &perturbed, &mut diffs);
    assert!(
        !diffs.is_empty(),
        "a 1e-6 coefficient perturbation must be detected"
    );
    assert!(diffs[0].contains("nors"), "the diff names the perturbed leaf: {diffs:?}");

    // And the unperturbed encoding agrees with itself exactly.
    let mut clean = Vec::new();
    diff("table3", &pristine, &pristine, &mut clean);
    assert!(clean.is_empty());
}
