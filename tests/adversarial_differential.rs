//! Differential coverage for the streaming service under **adversarial
//! community churn**: every trace produced by the tentpole adversary
//! generator (`dyncontract::trace::AdversarialConfig`) — communities
//! splitting and merging, sybil influxes, strategic under-reporting —
//! must replay through `dcc-serve` **bit-identically** to a cold batch
//! recompute at every round boundary.
//!
//! This extends `tests/serve_differential.rs` (random protocol streams,
//! hand-written churn scripts) with the real attacked traces the E15
//! head-to-head runs on: the three standard plans at test scale, a
//! sampled busy plan, and — behind `DCC_SLOW_TESTS=1`, for the
//! scheduled CI soak — a paper-scale trace under a sampled churn plan.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{design_contracts, DesignConfig};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::experiments::adversarial::standard_plans;
use dyncontract::obs::Metrics;
use dyncontract::serve::{design_digest, events_from_trace, ServeEvent, ServeService};
use dyncontract::trace::{
    AdversarialConfig, AdversaryPlanConfig, Campaign, Product, ProductId, Review, Reviewer,
    ReviewerId, SyntheticConfig, TraceDataset,
};

/// True when slow, paper-scale tests were explicitly requested.
fn slow_tests_enabled() -> bool {
    std::env::var("DCC_SLOW_TESTS").map(|v| v == "1").unwrap_or(false)
}

/// A test-scale base with enough collusive mass that every standard
/// plan's campaign references are in range (≥ 6 communities).
fn base_config(seed: u64) -> SyntheticConfig {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.n_cm_target = 80;
    cfg
}

/// The entity mirror rebuilt per round boundary — identical in role to
/// the one in `tests/serve_differential.rs`, reconstructing the batch
/// trace from the event prefix alone so the comparison never trusts the
/// service's internal state.
#[derive(Default)]
struct Mirror {
    products: Vec<Product>,
    reviewers: Vec<Reviewer>,
    reviews: Vec<Review>,
    campaigns: Vec<Campaign>,
}

impl Mirror {
    fn apply(&mut self, event: &ServeEvent) {
        match event {
            ServeEvent::Product { id, quality } => self.products.push(Product {
                id: ProductId(*id),
                true_quality: *quality,
            }),
            ServeEvent::Join {
                id,
                class,
                campaign,
                expert,
            } => {
                self.reviewers.push(Reviewer {
                    id: ReviewerId(*id),
                    class: *class,
                    campaign: *campaign,
                    is_expert: *expert,
                });
                if let Some(c) = campaign {
                    if *c == self.campaigns.len() {
                        self.campaigns.push(Campaign {
                            id: *c,
                            members: Vec::new(),
                            targets: Vec::new(),
                        });
                    }
                    self.campaigns[*c].members.push(ReviewerId(*id));
                }
            }
            ServeEvent::Review {
                worker,
                product,
                round,
                stars,
                length,
                upvotes,
            } => self.reviews.push(Review {
                reviewer: ReviewerId(*worker),
                product: ProductId(*product),
                round: *round,
                stars: *stars,
                length_chars: *length,
                upvotes: *upvotes,
            }),
            ServeEvent::Round => {}
        }
    }

    fn batch_trace(&self) -> TraceDataset {
        TraceDataset::new(
            self.products.clone(),
            self.reviewers.clone(),
            self.reviews.clone(),
            self.campaigns.clone(),
        )
        .expect("mirror entities are valid by construction")
    }
}

/// Replays `trace` through the service at `pool`, requiring a bitwise
/// design match (or identical error text) against a cold recompute at
/// every round boundary. Returns the number of boundaries compared.
fn replay_and_compare(label: &str, trace: &TraceDataset, pool: usize) -> usize {
    let design_cfg = DesignConfig::default();
    let pipeline_cfg = PipelineConfig::default();
    let mut service =
        ServeService::new(pipeline_cfg, design_cfg, pool, false, Metrics::noop())
            .expect("serve config is valid");
    let mut mirror = Mirror::default();
    let mut boundaries = 0usize;

    for event in &events_from_trace(trace) {
        mirror.apply(event);
        let out = service
            .apply(event)
            .unwrap_or_else(|e| panic!("{label} pool {pool}: protocol error: {e}"));
        let Some(out) = out else { continue };
        boundaries += 1;

        let prefix = mirror.batch_trace();
        let detection = run_pipeline(&prefix, pipeline_cfg);
        let batch = design_contracts(&prefix, &detection, &design_cfg);
        match (&out.design, &batch) {
            (Ok(inc), Ok(cold)) => assert!(
                design_digest(inc) == design_digest(cold),
                "{label} pool {pool} round {}: designs diverge bitwise \
                 (incremental U={:016x} vs batch U={:016x})",
                out.round,
                inc.total_requester_utility.to_bits(),
                cold.total_requester_utility.to_bits()
            ),
            (Err(inc), Err(cold)) => assert!(
                inc == &cold.to_string(),
                "{label} pool {pool} round {}: error mismatch: {inc:?} vs {cold}",
                out.round
            ),
            (Ok(_), Err(cold)) => panic!(
                "{label} pool {pool} round {}: incremental succeeded, batch failed: {cold}",
                out.round
            ),
            (Err(inc), Ok(_)) => panic!(
                "{label} pool {pool} round {}: batch succeeded, incremental failed: {inc}",
                out.round
            ),
        }
    }
    boundaries
}

/// The headline differential: all three standard adversary plans (the
/// ones E15 and the golden snapshot run on), digest-identical at every
/// round boundary.
#[test]
fn standard_adversary_plans_serve_matches_batch() {
    let base = base_config(42);
    let base_trace = base.generate();
    let plans = standard_plans(base_trace.campaigns().len(), base.n_rounds)
        .expect("test base supports the standard plans");
    for (label, plan) in plans {
        let trace = AdversarialConfig {
            base: base.clone(),
            plan,
        }
        .generate()
        .expect("standard plan applies to the test base");
        let boundaries = replay_and_compare(label, &trace, 2);
        assert!(boundaries >= base.n_rounds, "{label}: every round compared");
    }
}

/// A sampled (not hand-written) busy plan: all four adversary event
/// kinds active at once, exercising the dense campaign renumbering the
/// generator performs for the serve join protocol.
#[test]
fn sampled_busy_plan_serve_matches_batch() {
    let base = base_config(7);
    let n_campaigns = base.generate().campaigns().len();
    let plan = AdversaryPlanConfig {
        seed: 13,
        n_campaigns,
        n_rounds: base.n_rounds,
        split_prob: 0.6,
        merge_prob: 0.6,
        sybil_prob: 0.6,
        max_sybils: 3,
        underreport_prob: 0.6,
        min_factor: 0.3,
    }
    .generate()
    .expect("sampler config is valid");
    assert!(!plan.is_empty(), "busy sampler produced no events");
    let trace = AdversarialConfig { base, plan }
        .generate()
        .expect("sampled plan applies");
    for pool in [1, 4] {
        replay_and_compare("sampled-busy", &trace, pool);
    }
}

/// Paper-scale churn soak for the scheduled CI job: a sampled plan over
/// the full §V workload, still bit-identical at every round boundary.
/// Gated on `DCC_SLOW_TESTS=1`; plain `cargo test` skips it instantly.
#[test]
fn paper_scale_churn_soak() {
    if !slow_tests_enabled() {
        eprintln!("skipping paper-scale churn soak; set DCC_SLOW_TESTS=1 to run it");
        return;
    }
    let base = SyntheticConfig::paper_scale(42);
    let n_campaigns = base.generate().campaigns().len();
    let plan = AdversaryPlanConfig {
        seed: 1,
        n_campaigns,
        n_rounds: base.n_rounds,
        ..AdversaryPlanConfig::default()
    }
    .generate()
    .expect("sampler config is valid");
    let trace = AdversarialConfig { base, plan }
        .generate()
        .expect("sampled plan applies at paper scale");
    let boundaries = replay_and_compare("paper-churn", &trace, 4);
    println!("paper-scale churn soak: {boundaries} round boundaries bit-identical");
}
