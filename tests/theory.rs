//! Cross-crate theory verification: the §IV-C guarantees hold for every
//! contract the *full pipeline* designs on a synthetic trace — not just
//! for hand-picked parameters.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dyncontract::core::{
    best_response, bounds, design_contracts, DesignConfig, Discretization, ModelParams,
};
use dyncontract::detect::{run_pipeline, PipelineConfig};
use dyncontract::trace::SyntheticConfig;

#[test]
fn designed_population_respects_all_brackets() {
    let mut cfg = SyntheticConfig::small(8080);
    cfg.n_honest = 300;
    cfg.n_products = 900;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");

    let mut checked_brackets = 0usize;
    for sol in &design.solution.solutions {
        let built = &sol.built;
        // Universal invariants.
        assert!(built.contract().is_monotone());
        assert!(built.worker_utility() >= -1e-9, "IR violated");
        assert!(built.compensation() >= 0.0);

        // Theorem 4.1 brackets exist exactly for honest non-zero designs.
        if let Some((lo, hi)) = built.utility_bounds() {
            assert!(
                built.requester_utility() >= lo - 1e-7,
                "utility {} below lower bound {lo}",
                built.requester_utility()
            );
            assert!(
                built.requester_utility() <= hi + 1e-7,
                "utility {} above upper bound {hi}",
                built.requester_utility()
            );
            checked_brackets += 1;
        }
    }
    assert!(
        checked_brackets > 100,
        "expected many honest brackets, got {checked_brackets}"
    );
}

#[test]
fn designed_compensations_respect_lemma_bounds() {
    let mut cfg = SyntheticConfig::small(8181);
    cfg.n_honest = 200;
    cfg.n_products = 700;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");

    // For every honest (non-suspected) single-worker design with a chosen
    // interval, the realized pay lies inside the Lemma 4.2/4.3 bracket.
    let honest_params = ModelParams {
        omega: 0.0,
        ..config.params
    };
    let mut checked = 0usize;
    for agent in design.agents.iter().filter(|a| !a.suspected) {
        let Some(k) = agent.k_opt else { continue };
        let disc = Discretization::covering(
            config.intervals,
            agent.delta * config.intervals as f64,
        )
        .expect("reconstruct discretization");
        let lo = bounds::compensation_lower_bound(&honest_params, &disc, k);
        assert!(
            agent.compensation >= lo - 1e-7,
            "worker {}: pay {} below Lemma 4.3 bound {lo}",
            agent.worker,
            agent.compensation
        );
        checked += 1;
    }
    assert!(checked > 50, "expected many checked workers, got {checked}");
}

#[test]
fn every_designed_contract_is_incentive_verified() {
    // The induced effort recorded by the design equals the worker's exact
    // best response, recomputed independently.
    let mut cfg = SyntheticConfig::small(8282);
    cfg.n_honest = 120;
    cfg.n_products = 600;
    let trace = cfg.generate();
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).expect("design");

    let (honest_psi, ncm_psi, _) = design.class_psis;
    for sol in design.solution.solutions.iter().take(150) {
        if sol.members.len() > 1 {
            continue; // communities use the aggregate psi; skip here
        }
        let agent = design
            .for_worker(dyncontract::trace::ReviewerId(sol.members[0]))
            .expect("assigned");
        let (psi, omega) = if agent.suspected {
            (ncm_psi, config.params.omega)
        } else {
            (honest_psi, 0.0)
        };
        // Individual fits are not used (default config), so the class psi
        // is the design psi.
        let params = ModelParams {
            omega,
            ..config.params
        };
        let response = best_response(&params, &psi, sol.built.contract()).expect("response");
        assert!(
            (response.effort - sol.built.induced_effort()).abs() < 1e-6,
            "worker {}: recorded effort {} vs recomputed {}",
            agent.worker,
            sol.built.induced_effort(),
            response.effort
        );
    }
}
