// Fixture: exactly one `metric-registry` violation — the second
// emission names a metric absent from registry.md (line 6).
// Not compiled — consumed by crates/lint/tests/fixtures.rs.
pub fn record(metrics: &Metrics) {
    metrics.add("lint.fixture.documented", 1);
    metrics.add("lint.fixture.undocumented", 1);
}
