// Fixture: exactly one `unwrap-in-lib` violation (line 4).
// Not compiled — consumed by crates/lint/tests/fixtures.rs.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
