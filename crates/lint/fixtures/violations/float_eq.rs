// Fixture: exactly one `float-eq` violation (line 4).
// Not compiled — consumed by crates/lint/tests/fixtures.rs.
pub fn converged(residual: f64) -> bool {
    residual == 0.0
}
