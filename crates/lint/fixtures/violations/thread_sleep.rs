// Fixture: exactly one `wall-clock` violation (line 4).
// Not compiled — consumed by crates/lint/tests/fixtures.rs.
pub fn backoff_badly() {
    std::thread::sleep(std::time::Duration::from_millis(10));
}
