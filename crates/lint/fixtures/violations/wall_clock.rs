// Fixture: exactly one `wall-clock` violation (line 4).
// Not compiled — consumed by crates/lint/tests/fixtures.rs.
pub fn elapsed_us() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_micros() as u64
}
