//! hot-loop-alloc fixture: a per-subproblem allocation in a solve
//! kernel. The rule is scoped to the sanctioned struct-of-arrays
//! kernel paths, so the test lints this source under
//! `crates/core/src/soa.rs`.

fn members_of(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}
