// Fixture: exactly one `nondet-iter` violation (line 4).
// Not compiled — consumed by crates/lint/tests/fixtures.rs.
pub fn counts() -> usize {
    let m = std::collections::HashMap::new();
    m.len()
}
