//! Ratchet fixture: exactly two determinism-taint findings with no
//! policy, exercised against the three committed baseline variants
//! (`baseline-ok`, `baseline-short`, `baseline-stale`).
use std::time::Instant; // dcc-lint: allow(wall-clock, reason = "ratchet fixture source")

/// Wall-clock source.
pub fn ticks() -> u64 {
    Instant::now().elapsed().as_nanos() as u64 // dcc-lint: allow(wall-clock, reason = "ratchet fixture source")
}

/// Finding 1: clock into the digest.
pub fn digest(seed: u64) -> u64 {
    fnv_fold(seed, ticks())
}

/// Env source.
pub fn region() -> String {
    std::env::var("DCC_REGION").unwrap_or_default()
}

/// Finding 2: env into the checkpoint.
pub fn persist(state: &str) {
    save_checkpoint(state, &region());
}

pub fn fnv_fold(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x0100_0000_01b3)
}

pub fn save_checkpoint(_state: &str, _region: &str) {}
