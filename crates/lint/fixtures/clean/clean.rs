// Fixture: near-miss patterns for every rule; the analyzer must report
// zero findings here. Not compiled — consumed by
// crates/lint/tests/fixtures.rs.

/// Integer comparisons, ranges, and tuple indexing are not float-eq.
pub fn int_paths(n: usize, pair: (f64, u64)) -> bool {
    let mut total = 0usize;
    for i in 0..n {
        total += i;
    }
    total == n && pair.1 == 7
}

/// `unwrap_or*` and epsilon comparisons are the approved forms.
pub fn approved(x: Option<f64>, a: f64, b: f64) -> bool {
    let v = x.unwrap_or(0.0);
    (a - b).abs() < 1e-12 && v.is_finite()
}

/// Deterministic containers are fine.
pub fn ordered() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    m.len()
}

/// Strings and comments mentioning HashMap, Instant::now(), 1.0 == 2.0,
/// or .unwrap() must not trip the lexer-based rules.
pub fn documentation() -> &'static str {
    "prefer BTreeMap over HashMap; never call .unwrap() or Instant::now()"
}

// A suppressed line with a reason is clean only when it has a finding;
// this one is genuinely needed by the rule it allows.
pub fn hashed() -> u64 {
    // dcc-lint: allow(nondet-iter, reason = "fixture exercising a used suppression")
    let s: std::collections::HashSet<u64> = std::collections::HashSet::new();
    s.len() as u64
}

#[cfg(test)]
mod tests {
    // Test code may use all of it.
    #[test]
    fn test_code_is_exempt() {
        let t = std::time::Instant::now();
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.is_empty());
        assert!(0.0 == 0.0 || t.elapsed().as_nanos() as f64 >= 0.0);
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
