//! Wall-clock helpers: the taint sources of the fixture workspace.
//! The token-level `wall-clock` findings are deliberately suppressed
//! inline so the golden output isolates the `determinism-taint` rule.
use std::time::Instant; // dcc-lint: allow(wall-clock, reason = "fixture taint source")

/// Microseconds of elapsed wall-clock time — a determinism-taint
/// source that leaks cross-crate into `beta::digest_round`.
pub fn now_us() -> u64 {
    Instant::now().elapsed().as_micros() as u64 // dcc-lint: allow(wall-clock, reason = "fixture taint source")
}

/// Laundered by the fixture policy: flows out of this fn are
/// sanctioned and must produce no findings downstream.
pub fn sanctioned_timer() -> u64 {
    Instant::now().elapsed().as_nanos() as u64 // dcc-lint: allow(wall-clock, reason = "fixture laundered source")
}
