//! Digest layer: folds values into an FNV accumulator (a built-in
//! determinism sink).

/// Indirection hop so the taint must travel two edges before the sink.
pub fn stamp() -> u64 {
    now_us()
}

/// BAD: folds a wall-clock stamp into the digest — tainted fn calling
/// a digest sink.
pub fn digest_round(seed: u64) -> u64 {
    fnv_fold(seed, stamp())
}

/// Clean digest over deterministic inputs: no finding.
pub fn digest_clean(x: u64) -> u64 {
    fnv_fold(x, 17)
}

/// Laundered flow: `sanctioned_timer` is policy-laundered, so this
/// digest is sanctioned despite touching the clock.
pub fn heartbeat_digest() -> u64 {
    fnv_fold(sanctioned_timer(), 3)
}

/// The sink itself: deterministic given its arguments.
pub fn fnv_fold(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x0100_0000_01b3)
}
