//! Persistence layer: checkpoint writer fed by an environment lookup.

/// Environment source: deployment region read at runtime.
pub fn load_region() -> String {
    std::env::var("DCC_REGION").unwrap_or_default()
}

/// BAD: env-tainted value reaches the checkpoint writer.
pub fn persist(state: &str) {
    save_checkpoint(state, &load_region());
}

/// The checkpoint sink (name-matched built-in).
pub fn save_checkpoint(_state: &str, _region: &str) {}
