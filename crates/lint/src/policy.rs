//! The checked-in taint policy: sanctioned laundering points and
//! project-specific sinks for the determinism-taint pass.
//!
//! The policy lives in a plain-text file (`dcc-lint.policy` at the
//! workspace root) so that every exception to the taint rule is
//! reviewable in one place, with a mandatory reason per entry:
//!
//! ```text
//! # comment
//! launder path:crates/obs/ -- timing redaction strips wall-clock values
//! launder fn:crates/engine/src/stages.rs#DefaultIngest::run -- span timing only
//! launder call:seed_from_u64 -- seeded RNG construction is sanctioned
//! sink fn:FaultPlan::save -- plan serialization must stay deterministic
//! ```
//!
//! Entry kinds:
//!
//! - `launder <pattern> -- <reason>` — functions matching the pattern
//!   never become tainted (their wall-clock/env/… reads are sanctioned
//!   because a downstream pass provably removes the nondeterminism,
//!   e.g. the `dcc-obs` timing redaction), and `call:` patterns mark
//!   sanctioned *callees* (calling them never taints the caller).
//! - `sink <pattern> -- <reason>` — additional sink functions beyond
//!   the built-in catalogue (digest folds, checkpoint writers, metric
//!   emitters).
//!
//! Patterns:
//!
//! - `path:<prefix>` — every function in files under the prefix;
//! - `fn:<file>#<qual>` — the function with qualified name `<qual>`
//!   (`Type::name` for methods, bare name otherwise) in `<file>`;
//! - `fn:<qual>` — any function with that qualified or bare name;
//! - `call:<name>` — call sites whose callee identifier is `<name>`.
//!
//! Every entry must match something in the workspace; stale entries are
//! reported as `taint-policy` findings so the file cannot rot.

use crate::Finding;

/// What a policy entry declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A sanctioned laundering point.
    Launder,
    /// A project-declared sink.
    Sink,
}

/// How a policy pattern selects functions or call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// `path:<prefix>` — file-path prefix.
    PathPrefix(String),
    /// `fn:<file>#<qual>` — exact file and qualified name.
    FileFn(String, String),
    /// `fn:<qual>` — qualified or bare name anywhere.
    AnyFn(String),
    /// `call:<name>` — callee identifier at call sites.
    CallName(String),
}

/// One parsed policy entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Launder or sink.
    pub kind: EntryKind,
    /// The selection pattern.
    pub pattern: Pattern,
    /// Mandatory human-readable justification.
    pub reason: String,
    /// 1-based line in the policy file.
    pub line: u32,
    /// Whether the taint pass found anything matching this entry.
    pub used: bool,
}

/// The parsed policy file.
#[derive(Debug, Default)]
pub struct Policy {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
    /// Workspace-relative path of the policy file (for findings).
    pub path: String,
}

impl Policy {
    /// Parses policy `source` read from `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input —
    /// a broken policy must fail the run loudly, not silently sanction
    /// nothing.
    pub fn parse(path: &str, source: &str) -> Result<Policy, String> {
        let mut entries = Vec::new();
        for (i, raw) in source.lines().enumerate() {
            let line = u32::try_from(i + 1).unwrap_or(u32::MAX);
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let (kind, rest) = if let Some(r) = text.strip_prefix("launder ") {
                (EntryKind::Launder, r)
            } else if let Some(r) = text.strip_prefix("sink ") {
                (EntryKind::Sink, r)
            } else {
                return Err(format!(
                    "{path}:{line}: policy entries start with `launder` or `sink`"
                ));
            };
            let Some((pat, reason)) = rest.split_once(" -- ") else {
                return Err(format!(
                    "{path}:{line}: missing mandatory ` -- <reason>` on policy entry"
                ));
            };
            let reason = reason.trim();
            if reason.is_empty() {
                return Err(format!("{path}:{line}: empty reason on policy entry"));
            }
            let pattern = Pattern::parse(pat.trim())
                .ok_or_else(|| format!("{path}:{line}: unknown policy pattern {:?}", pat.trim()))?;
            if kind == EntryKind::Sink && matches!(pattern, Pattern::PathPrefix(_)) {
                return Err(format!(
                    "{path}:{line}: `sink` entries must name a function (`fn:`) or call (`call:`)"
                ));
            }
            entries.push(Entry {
                kind,
                pattern,
                reason: reason.to_string(),
                line,
                used: false,
            });
        }
        Ok(Policy {
            entries,
            path: path.to_string(),
        })
    }

    /// Findings for entries nothing matched: a policy exception that
    /// sanctions nothing is rot, exactly like an unused suppression.
    pub fn stale_entries(&self, findings: &mut Vec<Finding>) {
        for e in self.entries.iter().filter(|e| !e.used) {
            findings.push(Finding::new(
                "taint-policy",
                &self.path,
                e.line,
                format!(
                    "policy {} entry matches nothing in the workspace; remove it or fix the pattern",
                    match e.kind {
                        EntryKind::Launder => "launder",
                        EntryKind::Sink => "sink",
                    }
                ),
            ));
        }
    }
}

impl Pattern {
    fn parse(s: &str) -> Option<Pattern> {
        if let Some(p) = s.strip_prefix("path:") {
            (!p.is_empty()).then(|| Pattern::PathPrefix(p.to_string()))
        } else if let Some(f) = s.strip_prefix("fn:") {
            match f.split_once('#') {
                Some((file, qual)) if !file.is_empty() && !qual.is_empty() => {
                    Some(Pattern::FileFn(file.to_string(), qual.to_string()))
                }
                Some(_) => None,
                None => (!f.is_empty()).then(|| Pattern::AnyFn(f.to_string())),
            }
        } else if let Some(c) = s.strip_prefix("call:") {
            (!c.is_empty()).then(|| Pattern::CallName(c.to_string()))
        } else {
            None
        }
    }

    /// Whether this pattern selects the function `(path, qual, name)`.
    pub fn matches_fn(&self, path: &str, qual: &str, name: &str) -> bool {
        match self {
            Pattern::PathPrefix(p) => path.starts_with(p.as_str()),
            Pattern::FileFn(f, q) => path == f && (qual == q || name == q),
            Pattern::AnyFn(q) => qual == q || name == q,
            Pattern::CallName(_) => false,
        }
    }

    /// Whether this pattern selects call sites with callee `name`.
    pub fn matches_call(&self, name: &str) -> bool {
        matches!(self, Pattern::CallName(c) if c == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_entry_and_pattern_kinds() {
        let src = "\
# header comment
launder path:crates/obs/ -- redacted downstream

launder fn:crates/engine/src/stages.rs#DefaultIngest::run -- span timing
launder fn:solve_subproblems_pooled -- fixed-order merge
launder call:seed_from_u64 -- seeded construction
sink fn:FaultPlan::save -- deterministic serialization
";
        let p = Policy::parse("dcc-lint.policy", src).expect("parses");
        assert_eq!(p.entries.len(), 5);
        assert_eq!(p.entries[0].kind, EntryKind::Launder);
        assert!(p.entries[0]
            .pattern
            .matches_fn("crates/obs/src/recorder.rs", "JsonRecorder::span", "span"));
        assert!(p.entries[1].pattern.matches_fn(
            "crates/engine/src/stages.rs",
            "DefaultIngest::run",
            "run"
        ));
        assert!(!p.entries[1].pattern.matches_fn(
            "crates/engine/src/engine.rs",
            "DefaultIngest::run",
            "run"
        ));
        assert!(p.entries[2].pattern.matches_fn(
            "crates/core/src/bip.rs",
            "solve_subproblems_pooled",
            "solve_subproblems_pooled"
        ));
        assert!(p.entries[3].pattern.matches_call("seed_from_u64"));
        assert_eq!(p.entries[4].kind, EntryKind::Sink);
    }

    #[test]
    fn malformed_entries_are_hard_errors() {
        for bad in [
            "launder path:crates/obs/",              // no reason
            "launder path:crates/obs/ -- ",          // empty reason
            "allow fn:x -- y",                        // unknown verb
            "launder glob:x -- y",                    // unknown pattern
            "sink path:crates/obs/ -- not a fn",      // path sink
            "launder fn:#q -- y",                     // empty file part
        ] {
            assert!(Policy::parse("p", bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn stale_entries_become_findings() {
        let mut p = Policy::parse("dcc-lint.policy", "launder fn:ghost -- gone\n").expect("parses");
        p.entries[0].used = false;
        let mut findings = Vec::new();
        p.stale_entries(&mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "taint-policy");
        assert_eq!(findings[0].line, 1);
    }
}
