//! Inline suppressions: `// dcc-lint: allow(<rule>, reason = "…")`.
//!
//! A trailing suppression applies to its own line; a standalone
//! suppression applies to the next line. Every suppression must name a
//! known rule and carry a non-empty reason — anything else is itself a
//! `bad-suppression` finding. A suppression that matches no finding is
//! an `unused-suppression` finding, so stale allows cannot linger.

use crate::lexer::Comment;
use crate::rules::RULE_IDS;
use crate::Finding;

/// One parsed suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    #[allow(dead_code)]
    pub reason: String,
    /// Line the suppression comment starts on.
    pub comment_line: u32,
    /// Line the suppression applies to.
    pub target_line: u32,
    /// Whether a finding consumed this suppression.
    pub used: bool,
}

/// Parses all suppressions in `comments`; malformed ones become
/// findings in `findings`.
pub fn parse(path: &str, comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///…` lexes as a `//` comment whose text
        // starts with `/`; `//!…` starts with `!`) are documentation,
        // not directives — the suppression syntax may be *described*
        // there without being active.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(idx) = c.text.find("dcc-lint:") else {
            continue;
        };
        let rest = c.text[idx + "dcc-lint:".len()..].trim_start();
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                if !RULE_IDS.contains(&rule.as_str()) {
                    findings.push(Finding::new(
                        "bad-suppression",
                        path,
                        c.line,
                        format!("unknown rule {rule:?} in dcc-lint suppression"),
                    ));
                    continue;
                }
                if reason.trim().is_empty() {
                    findings.push(Finding::new(
                        "bad-suppression",
                        path,
                        c.line,
                        format!("suppression of `{rule}` has an empty reason"),
                    ));
                    continue;
                }
                out.push(Suppression {
                    rule,
                    reason,
                    comment_line: c.line,
                    target_line: if c.trailing { c.line } else { c.line + 1 },
                    used: false,
                });
            }
            Err(msg) => findings.push(Finding::new("bad-suppression", path, c.line, msg)),
        }
    }
    out
}

/// Parses `allow(<rule>, reason = "…")`, returning `(rule, reason)`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let body = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .ok_or_else(|| "dcc-lint comment must be `allow(<rule>, reason = \"…\")`".to_string())?;
    let close = body
        .rfind(')')
        .ok_or_else(|| "unterminated dcc-lint allow(...)".to_string())?;
    let body = &body[..close];
    let (rule, rest) = match body.find(',') {
        Some(comma) => (body[..comma].trim(), body[comma + 1..].trim()),
        None => (body.trim(), ""),
    };
    if rule.is_empty() {
        return Err("dcc-lint allow(...) names no rule".to_string());
    }
    if rest.is_empty() {
        return Err(format!(
            "suppression of `{rule}` is missing the mandatory `reason = \"…\"`"
        ));
    }
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.rfind('"').map(|q| t[..q].to_string()))
        .ok_or_else(|| {
            format!("suppression of `{rule}` is missing the mandatory `reason = \"…\"`")
        })?;
    Ok((rule.to_string(), reason))
}

/// Drops findings covered by a suppression (marking it used), then
/// reports any suppression that covered nothing.
pub fn apply(
    path: &str,
    suppressions: &mut [Suppression],
    findings: Vec<Finding>,
) -> Vec<Finding> {
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        let slot = suppressions
            .iter_mut()
            .find(|s| s.rule == f.rule && s.target_line == f.line);
        match slot {
            Some(s) => s.used = true,
            None => kept.push(f),
        }
    }
    for s in suppressions.iter().filter(|s| !s.used) {
        kept.push(Finding::new(
            "unused-suppression",
            path,
            s.comment_line,
            format!("suppression of `{}` matches no finding on line {}", s.rule, s.target_line),
        ));
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Vec<Suppression>, Vec<Finding>) {
        let lexed = lex(src);
        let mut findings = Vec::new();
        let sup = parse("f.rs", &lexed.comments, &mut findings);
        (sup, findings)
    }

    #[test]
    fn trailing_targets_own_line_standalone_targets_next() {
        let src = "\
// dcc-lint: allow(float-eq, reason = \"standalone\")
let a = x; // dcc-lint: allow(wall-clock, reason = \"trailing\")
";
        let (sup, findings) = parse_src(src);
        assert!(findings.is_empty());
        assert_eq!(sup.len(), 2);
        assert_eq!((sup[0].rule.as_str(), sup[0].target_line), ("float-eq", 2));
        assert_eq!((sup[1].rule.as_str(), sup[1].target_line), ("wall-clock", 2));
    }

    #[test]
    fn missing_reason_is_bad_suppression() {
        let (sup, findings) = parse_src("// dcc-lint: allow(float-eq)\n");
        assert!(sup.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-suppression");
        assert!(findings[0].message.contains("mandatory"));
    }

    #[test]
    fn empty_reason_and_unknown_rule_are_bad() {
        let (sup, findings) = parse_src(
            "// dcc-lint: allow(float-eq, reason = \"  \")\n// dcc-lint: allow(nope, reason = \"x\")\n",
        );
        assert!(sup.is_empty());
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn apply_consumes_matching_findings_and_flags_unused() {
        let (mut sup, _) = parse_src(
            "// dcc-lint: allow(float-eq, reason = \"hit\")\nx\n// dcc-lint: allow(float-eq, reason = \"miss\")\ny\n",
        );
        let findings = vec![Finding::new("float-eq", "f.rs", 2, "v".to_string())];
        let kept = apply("f.rs", &mut sup, findings);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "unused-suppression");
        assert_eq!(kept[0].line, 3);
    }

    #[test]
    fn suppression_is_rule_specific() {
        let (mut sup, _) = parse_src("// dcc-lint: allow(float-eq, reason = \"r\")\nx\n");
        let findings = vec![Finding::new("wall-clock", "f.rs", 2, "v".to_string())];
        let kept = apply("f.rs", &mut sup, findings);
        // Wrong rule: the finding survives and the suppression is unused.
        assert_eq!(kept.len(), 2);
    }
}
