//! SARIF 2.1.0 emission for GitHub code scanning.
//!
//! The document is byte-deterministic: results arrive pre-sorted by
//! (path, line, rule), the rules array lists only rules that appear
//! (in first-appearance order, referenced by `ruleIndex`), and nothing
//! time- or environment-dependent is embedded — no timestamps, no
//! absolute paths, no invocation records. Taint traces render as
//! `codeFlows`/`threadFlows`; baselined findings carry an `external`
//! suppression with the baseline justification so code scanning shows
//! them as suppressed instead of open.

use crate::report::escape;
use crate::Finding;
use std::fmt::Write as _;

/// One result to emit: a finding, plus the baseline justification when
/// the finding is baselined (suppressed) rather than fresh.
pub struct SarifResult<'a> {
    /// The finding.
    pub finding: &'a Finding,
    /// Baseline justification, if this finding is ratchet-suppressed.
    pub justification: Option<&'a str>,
}

/// One-line rule descriptions for the SARIF rules array.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "float-eq" => "No visibly-float == / != comparisons; use dcc_numerics helpers.",
        "unwrap-in-lib" => "No unwrap/expect/panic! in non-test library code.",
        "nondet-iter" => "No HashMap/HashSet: iteration order is nondeterministic.",
        "wall-clock" => "No Instant/SystemTime reads outside the dcc-obs timing layer.",
        "hot-loop-alloc" => "No per-element allocation in the struct-of-arrays solve kernels.",
        "metric-registry" => "Metric names in code and docs/observability.md must stay in sync.",
        "determinism-taint" => {
            "No nondeterministic value may flow through the call graph into a digest, checkpoint, golden snapshot, or metric emission."
        }
        "taint-policy" => "Taint policy entries must match something in the workspace.",
        "bad-suppression" => "Inline suppressions must name a known rule and carry a reason.",
        "unused-suppression" => "Inline suppressions must suppress an actual finding.",
        _ => "dcc-lint finding.",
    }
}

/// Renders a complete SARIF 2.1.0 document. `results` must already be
/// sorted by (path, line, rule).
pub fn render(results: &[SarifResult<'_>]) -> String {
    // Rules array: first-appearance order, deduped.
    let mut rules: Vec<&str> = Vec::new();
    for r in results {
        if !rules.contains(&r.finding.rule) {
            rules.push(r.finding.rule);
        }
    }
    let rule_index = |rule: &str| rules.iter().position(|r| *r == rule).unwrap_or(0);

    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"dcc-lint\",\"informationUri\":\"https://example.invalid/dcc/docs/static-analysis.md\",\"version\":\"",
    );
    out.push_str(env!("CARGO_PKG_VERSION"));
    out.push_str("\",\"rules\":[");
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            escape(rule),
            escape(rule_description(rule))
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let f = r.finding;
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"ruleIndex\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\"locations\":[{}]",
            escape(f.rule),
            rule_index(f.rule),
            escape(&f.message),
            location(&f.path, f.line, None)
        );
        if !f.trace.is_empty() {
            out.push_str(",\"codeFlows\":[{\"threadFlows\":[{\"locations\":[");
            for (j, step) in f.trace.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"location\":{}}}",
                    location(&step.path, step.line, Some(&step.note))
                );
            }
            out.push_str("]}]}]");
        }
        if let Some(just) = r.justification {
            let _ = write!(
                out,
                ",\"suppressions\":[{{\"kind\":\"external\",\"justification\":{}}}]",
                escape(just)
            );
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

/// A SARIF location object; with a message when used in a thread flow.
fn location(path: &str, line: u32, message: Option<&str>) -> String {
    let mut out = String::from("{");
    if let Some(m) = message {
        let _ = write!(out, "\"message\":{{\"text\":{}}},", escape(m));
    }
    let _ = write!(
        out,
        "\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{line}}}}}}}",
        escape(path)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStep;

    #[test]
    fn sarif_document_shape_and_determinism() {
        let plain = Finding::new("float-eq", "a.rs", 3, "float == comparison".to_string());
        let taint = Finding::with_trace(
            "determinism-taint",
            "b.rs",
            9,
            "tainted value may reach digest sink".to_string(),
            vec![
                TraceStep {
                    path: "a.rs".to_string(),
                    line: 2,
                    note: "wall-clock source".to_string(),
                },
                TraceStep {
                    path: "b.rs".to_string(),
                    line: 9,
                    note: "sink call".to_string(),
                },
            ],
        );
        let results = [
            SarifResult {
                finding: &plain,
                justification: None,
            },
            SarifResult {
                finding: &taint,
                justification: Some("legacy flow, staged burn-down"),
            },
        ];
        let doc = render(&results);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"id\":\"float-eq\""));
        assert!(doc.contains("\"ruleIndex\":1"), "{doc}");
        assert!(doc.contains("\"codeFlows\""));
        assert!(doc.contains("\"startLine\":9"));
        assert!(doc.contains("\"suppressions\":[{\"kind\":\"external\""));
        assert!(doc.contains("legacy flow, staged burn-down"));
        // Determinism: same input, same bytes.
        assert_eq!(doc, render(&results));
        // No timestamps or absolute paths sneak in.
        assert!(!doc.contains("/root/"));
    }

    #[test]
    fn empty_results_still_render_valid_shell() {
        let doc = render(&[]);
        assert!(doc.contains("\"results\":[]"));
        assert!(doc.contains("\"rules\":[]"));
    }
}
