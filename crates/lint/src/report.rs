//! Rendering: human-readable text and the machine-readable
//! `dcc-lint/2` JSON document (v2 adds per-finding taint `trace`
//! arrays; everything else is v1-compatible).

use crate::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders findings as `path:line: [rule] message` lines plus a
/// one-line summary.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        for (i, step) in f.trace.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}. {}:{}: {}",
                i + 1,
                step.path,
                step.line,
                step.note
            );
        }
    }
    if findings.is_empty() {
        let _ = writeln!(out, "dcc-lint: {files_scanned} files, no findings");
    } else {
        let _ = writeln!(
            out,
            "dcc-lint: {files_scanned} files, {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Renders the `dcc-lint/2` JSON document: a versioned object with the
/// finding list (taint findings carry a `trace` array) and per-rule
/// counts, deterministically ordered.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{\"schema\":\"dcc-lint/2\",");
    let _ = write!(out, "\"files_scanned\":{files_scanned},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        );
        if !f.trace.is_empty() {
            out.push_str(",\"trace\":[");
            for (j, step) in f.trace.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"path\":{},\"line\":{},\"note\":{}}}",
                    escape(&step.path),
                    step.line,
                    escape(&step.note)
                );
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("],\"counts\":{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{n}", escape(rule));
    }
    out.push_str("}}");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
/// Shared with the SARIF emitter.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_json_round_trip_the_essentials() {
        let findings = vec![
            Finding::new("float-eq", "a.rs", 3, "float `==` comparison".to_string()),
            Finding::new("wall-clock", "b.rs", 7, "quote \" and \\ back".to_string()),
        ];
        let text = render_text(&findings, 2);
        assert!(text.contains("a.rs:3: [float-eq]"));
        assert!(text.contains("2 findings"));
        let json = render_json(&findings, 2);
        assert!(json.starts_with("{\"schema\":\"dcc-lint/2\""));
        assert!(json.contains("\"files_scanned\":2"));
        assert!(json.contains("\\\" and \\\\ back"));
        assert!(json.contains("\"counts\":{\"float-eq\":1,\"wall-clock\":1}"));
    }

    #[test]
    fn taint_traces_render_in_text_and_json() {
        let f = Finding::with_trace(
            "determinism-taint",
            "b.rs",
            9,
            "tainted value may reach digest sink".to_string(),
            vec![
                crate::TraceStep {
                    path: "a.rs".to_string(),
                    line: 2,
                    note: "wall-clock source".to_string(),
                },
                crate::TraceStep {
                    path: "b.rs".to_string(),
                    line: 9,
                    note: "sink call".to_string(),
                },
            ],
        );
        let text = render_text(std::slice::from_ref(&f), 2);
        assert!(text.contains("    1. a.rs:2: wall-clock source"), "{text}");
        assert!(text.contains("    2. b.rs:9: sink call"), "{text}");
        let json = render_json(std::slice::from_ref(&f), 2);
        assert!(
            json.contains("\"trace\":[{\"path\":\"a.rs\",\"line\":2,"),
            "{json}"
        );
    }

    #[test]
    fn empty_findings_render_cleanly() {
        assert!(render_text(&[], 5).contains("no findings"));
        assert!(render_json(&[], 5).contains("\"findings\":[]"));
    }
}
