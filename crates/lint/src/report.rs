//! Rendering: human-readable text and the machine-readable
//! `dcc-lint/1` JSON document.

use crate::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders findings as `path:line: [rule] message` lines plus a
/// one-line summary.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    if findings.is_empty() {
        let _ = writeln!(out, "dcc-lint: {files_scanned} files, no findings");
    } else {
        let _ = writeln!(
            out,
            "dcc-lint: {files_scanned} files, {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Renders the `dcc-lint/1` JSON document: a versioned object with the
/// finding list and per-rule counts, deterministically ordered.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{\"schema\":\"dcc-lint/1\",");
    let _ = write!(out, "\"files_scanned\":{files_scanned},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        );
    }
    out.push_str("],\"counts\":{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{n}", escape(rule));
    }
    out.push_str("}}");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_json_round_trip_the_essentials() {
        let findings = vec![
            Finding::new("float-eq", "a.rs", 3, "float `==` comparison".to_string()),
            Finding::new("wall-clock", "b.rs", 7, "quote \" and \\ back".to_string()),
        ];
        let text = render_text(&findings, 2);
        assert!(text.contains("a.rs:3: [float-eq]"));
        assert!(text.contains("2 findings"));
        let json = render_json(&findings, 2);
        assert!(json.starts_with("{\"schema\":\"dcc-lint/1\""));
        assert!(json.contains("\"files_scanned\":2"));
        assert!(json.contains("\\\" and \\\\ back"));
        assert!(json.contains("\"counts\":{\"float-eq\":1,\"wall-clock\":1}"));
    }

    #[test]
    fn empty_findings_render_cleanly() {
        assert!(render_text(&[], 5).contains("no findings"));
        assert!(render_json(&[], 5).contains("\"findings\":[]"));
    }
}
