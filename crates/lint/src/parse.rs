//! A lightweight item-level Rust parser built on [`crate::lexer`].
//!
//! The goal is *not* to parse Rust — only to recover the structure the
//! determinism-taint pass needs: which functions exist (with their
//! `Type::method` qualification and in-file module path), which token
//! range each body covers, what each body *calls*, and what the file
//! `use`s. Everything else (expressions, types, generics) is skipped
//! with brace/bracket matching.
//!
//! The parser is total: any token stream the lexer produces yields a
//! `ParsedFile` without panicking. Unrecognized constructs are simply
//! not items; the property tests in `tests/proptest_parser.rs` hold it
//! to that contract on adversarial inputs (raw strings, `r#ident`s,
//! nested block comments, unbalanced braces).

use crate::lexer::{Tok, TokKind};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee identifier (the final path segment).
    pub name: String,
    /// Path segments before the name (`alpha::helpers::f` → `["alpha",
    /// "helpers"]`); empty for bare and method calls.
    pub qualifier: Vec<String>,
    /// Whether this is a `.name(…)` method call.
    pub method: bool,
    /// 1-based source line of the callee identifier.
    pub line: u32,
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Qualified name: `Type::name` inside `impl Type`/`trait Type`
    /// blocks, otherwise the bare name.
    pub qual: String,
    /// `::`-joined in-file module path (empty at file root).
    pub module: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (or the declaration
    /// line when there is no body).
    pub end_line: u32,
    /// Token index range of the body contents (between the braces);
    /// empty for bodiless trait declarations.
    pub body: std::ops::Range<usize>,
    /// Call sites in the body, in source order.
    pub calls: Vec<Call>,
}

/// One leaf of a `use` tree: `use a::b::{c, d as e};` yields leaves
/// `c` → `a::b::c` and `e` → `a::b::d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseLeaf {
    /// The name the import binds in this file.
    pub leaf: String,
    /// Full path segments of the imported item.
    pub path: Vec<String>,
}

/// Parser output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnItem>,
    /// Flattened `use` tree leaves.
    pub uses: Vec<UseLeaf>,
}

/// Keywords that can be followed by `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "ref", "mut",
    "let", "fn", "impl", "trait", "struct", "enum", "union", "where", "pub", "use", "mod",
    "const", "static", "type", "unsafe", "dyn", "break", "continue", "await", "async",
];

/// Parses one lexed file.
pub fn parse_file(path: &str, tokens: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile {
        path: path.to_string(),
        ..ParsedFile::default()
    };
    let mut p = Parser { tokens, out: &mut out };
    p.items(0, tokens.len(), &[], None);
    out
}

struct Parser<'a, 'b> {
    tokens: &'a [Tok],
    out: &'b mut ParsedFile,
}

impl Parser<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map_or(0, |t| t.line)
    }

    /// Index just past the `]` matching the `[` at `open`.
    fn skip_bracket(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.text(i) {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Index just past the `}` matching the `{` at `open`.
    fn skip_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Walks items in `[start, end)`. `modules` is the enclosing module
    /// path, `owner` the enclosing `impl`/`trait` type (if any).
    fn items(&mut self, start: usize, end: usize, modules: &[String], owner: Option<&str>) {
        let mut i = start;
        while i < end {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => {
                    i = self.skip_bracket(i + 1, end);
                }
                "mod" if self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    if self.text(i + 2) == "{" {
                        let close = self.skip_brace(i + 2, end);
                        let mut nested: Vec<String> = modules.to_vec();
                        nested.push(name);
                        self.items(i + 3, close.saturating_sub(1), &nested, None);
                        i = close;
                    } else {
                        i += 2; // `mod name;` — out-of-line, its own file
                    }
                }
                "impl" | "trait" => {
                    i = self.impl_or_trait(i, end, modules);
                }
                "use" => {
                    i = self.use_tree(i + 1, end);
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.fn_item(i, end, modules, owner);
                }
                "{" => {
                    // A stray block at item level (e.g. const initializer
                    // we did not special-case): descend so nested fns are
                    // still found.
                    let close = self.skip_brace(i, end);
                    self.items(i + 1, close.saturating_sub(1), modules, owner);
                    i = close;
                }
                _ => i += 1,
            }
        }
    }

    /// Parses an `impl`/`trait` header starting at `kw`, then its items
    /// with the owner type set. Returns the index just past the block.
    fn impl_or_trait(&mut self, kw: usize, end: usize, modules: &[String]) -> usize {
        let is_trait = self.text(kw) == "trait";
        let mut i = kw + 1;
        let mut angle = 0i32;
        let mut ty: Option<String> = None;
        while i < end {
            match self.text(i) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => return i + 1, // `trait X: Y;`-ish or parse slip
                "for" if angle <= 0 && !is_trait => ty = None, // `impl Trait for Type`
                "where" if angle <= 0 => {
                    // Type name is fixed by now; skip to the block.
                    while i < end && self.text(i) != "{" && self.text(i) != ";" {
                        i += 1;
                    }
                    continue;
                }
                _ => {
                    if angle <= 0 && self.is_ident(i) && ty.is_none() {
                        ty = Some(self.text(i).to_string());
                    } else if angle <= 0
                        && self.is_ident(i)
                        && self.text(i + 1) != "("
                        && !is_trait
                    {
                        // Later path segments (`impl a::b::Type`) keep
                        // the last one.
                        if self.text(i.wrapping_sub(1)) == "::" {
                            ty = Some(self.text(i).to_string());
                        }
                    }
                }
            }
            i += 1;
        }
        if i >= end {
            return end;
        }
        let close = self.skip_brace(i, end);
        let owner = ty.unwrap_or_default();
        let owner = (!owner.is_empty()).then_some(owner.as_str());
        self.items(i + 1, close.saturating_sub(1), modules, owner);
        close
    }

    /// Flattens one `use` tree starting just after the `use` keyword.
    /// Returns the index just past the terminating `;`.
    fn use_tree(&mut self, start: usize, end: usize) -> usize {
        // Collect tokens up to the `;`, then flatten.
        let mut stop = start;
        while stop < end && self.text(stop) != ";" {
            stop += 1;
        }
        let mut prefix: Vec<String> = Vec::new();
        self.flatten_use(start, stop, &mut prefix);
        stop.min(end).saturating_add(1).min(end.max(start))
    }

    fn flatten_use(&mut self, start: usize, end: usize, prefix: &mut Vec<String>) {
        let base = prefix.len();
        let mut i = start;
        let mut last: Option<String> = None;
        while i < end {
            match self.text(i) {
                "::" => {
                    if let Some(seg) = last.take() {
                        prefix.push(seg);
                    }
                }
                "{" => {
                    // Group: flatten each comma-separated element.
                    let close = self.skip_brace(i, end);
                    let mut j = i + 1;
                    let mut elem_start = j;
                    let mut depth = 0usize;
                    while j < close.saturating_sub(1) {
                        match self.text(j) {
                            "{" => depth += 1,
                            "}" => depth = depth.saturating_sub(1),
                            "," if depth == 0 => {
                                self.flatten_use(elem_start, j, prefix);
                                elem_start = j + 1;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    self.flatten_use(elem_start, close.saturating_sub(1), prefix);
                    prefix.truncate(base);
                    return;
                }
                "as" => {
                    // `x as y`: the binding is y, the path ends at x.
                    if let (Some(orig), true) = (last.take(), self.is_ident(i + 1)) {
                        let mut path = prefix.clone();
                        path.push(orig);
                        self.out.uses.push(UseLeaf {
                            leaf: self.text(i + 1).to_string(),
                            path,
                        });
                    }
                    prefix.truncate(base);
                    return;
                }
                "*" => {
                    prefix.truncate(base);
                    return; // glob: no single leaf
                }
                _ => {
                    if self.is_ident(i) {
                        last = Some(self.text(i).to_string());
                    }
                }
            }
            i += 1;
        }
        if let Some(leaf) = last {
            let mut path = prefix.clone();
            path.push(leaf.clone());
            self.out.uses.push(UseLeaf { leaf, path });
        }
        prefix.truncate(base);
    }

    /// Parses a `fn` item starting at the `fn` keyword. Returns the
    /// index just past the item.
    fn fn_item(&mut self, kw: usize, end: usize, modules: &[String], owner: Option<&str>) -> usize {
        let name = self.text(kw + 1).to_string();
        let line = self.line(kw);
        // Find the body `{` or a terminating `;`, skipping generic
        // angle depth so `fn f<T: Into<{…}>>` cannot confuse us (close
        // enough: `{` at angle depth 0 opens the body).
        let mut i = kw + 2;
        let mut angle = 0i32;
        while i < end {
            match self.text(i) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "->" => {}
                ";" if angle <= 0 => {
                    self.push_fn(name, line, self.line(i), 0..0, Vec::new(), modules, owner);
                    return i + 1;
                }
                "{" if angle <= 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i >= end {
            self.push_fn(name, line, line, 0..0, Vec::new(), modules, owner);
            return end;
        }
        let close = self.skip_brace(i, end);
        let body = (i + 1)..close.saturating_sub(1);
        let calls = self.scan_calls(body.clone());
        let end_line = self.line(close.saturating_sub(1).min(self.tokens.len().saturating_sub(1)));
        self.push_fn(name, line, end_line.max(line), body.clone(), calls, modules, owner);
        // Nested `fn` items inside the body become their own items.
        self.nested_fns(body, modules, owner);
        close
    }

    #[allow(clippy::too_many_arguments)]
    fn push_fn(
        &mut self,
        name: String,
        line: u32,
        end_line: u32,
        body: std::ops::Range<usize>,
        calls: Vec<Call>,
        modules: &[String],
        owner: Option<&str>,
    ) {
        let qual = match owner {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        self.out.fns.push(FnItem {
            name,
            qual,
            module: modules.join("::"),
            line,
            end_line,
            body,
            calls,
        });
    }

    /// Finds `fn` items nested inside a body and records them (their
    /// calls are also attributed to the enclosing fn by `scan_calls`,
    /// which is the conservative direction for taint).
    fn nested_fns(&mut self, body: std::ops::Range<usize>, modules: &[String], owner: Option<&str>) {
        let mut i = body.start;
        while i < body.end {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => i = self.skip_bracket(i + 1, body.end),
                "fn" if self.is_ident(i + 1) => {
                    i = self.fn_item(i, body.end, modules, owner);
                }
                _ => i += 1,
            }
        }
    }

    /// Collects call sites in a body token range.
    fn scan_calls(&self, body: std::ops::Range<usize>) -> Vec<Call> {
        let mut calls = Vec::new();
        let mut i = body.start;
        while i < body.end {
            // Skip attributes (`#[allow(…)]` would otherwise look like
            // a call to `allow`).
            if self.text(i) == "#" && self.text(i + 1) == "[" {
                i = self.skip_bracket(i + 1, body.end);
                continue;
            }
            // Skip nested fn signatures so parameter lists are not
            // calls; their bodies are still scanned (conservative).
            if self.text(i) == "fn" && self.is_ident(i + 1) {
                i += 2;
                continue;
            }
            if !self.is_ident(i) || self.text(i + 1) != "(" {
                i += 1;
                continue;
            }
            let name = self.text(i);
            if NON_CALL_KEYWORDS.contains(&name) {
                i += 1;
                continue;
            }
            let prev = i.checked_sub(1).map(|j| self.text(j)).unwrap_or("");
            if prev == "!" {
                i += 1; // macro invocation tail, not a call
                continue;
            }
            let method = prev == ".";
            let mut qualifier = Vec::new();
            if !method && prev == "::" {
                // Walk back `seg :: seg :: name`.
                let mut j = i;
                while j >= 2 && self.text(j - 1) == "::" && self.is_ident(j - 2) {
                    qualifier.push(self.text(j - 2).to_string());
                    j -= 2;
                }
                qualifier.reverse();
            }
            calls.push(Call {
                name: name.to_string(),
                qualifier,
                method,
                line: self.line(i),
            });
            i += 1;
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", &lex(src).tokens)
    }

    #[test]
    fn free_fns_methods_and_modules_are_qualified() {
        let src = "\
fn top() {}
mod inner {
    pub fn deep() {}
    impl Widget {
        fn method(&self) {}
    }
}
impl Other { pub fn call_it(&self) { helper(); } }
trait T { fn decl(&self); fn with_default(&self) { self.decl(); } }
";
        let parsed = parse(src);
        let quals: Vec<(&str, &str)> = parsed
            .fns
            .iter()
            .map(|f| (f.qual.as_str(), f.module.as_str()))
            .collect();
        assert_eq!(
            quals,
            [
                ("top", ""),
                ("deep", "inner"),
                ("Widget::method", "inner"),
                ("Other::call_it", ""),
                ("T::decl", ""),
                ("T::with_default", ""),
            ]
        );
        let call_it = &parsed.fns[3];
        assert_eq!(call_it.calls.len(), 1);
        assert_eq!(call_it.calls[0].name, "helper");
        assert!(!call_it.calls[0].method);
        let with_default = &parsed.fns[5];
        assert_eq!(with_default.calls.len(), 1);
        assert!(with_default.calls[0].method);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let parsed = parse("impl<'a> Stage for DefaultIngest<'a> { fn run(&self) {} }\n");
        assert_eq!(parsed.fns[0].qual, "DefaultIngest::run");
    }

    #[test]
    fn calls_capture_qualifiers_and_skip_macros_and_keywords() {
        let src = "\
fn f() {
    alpha::helpers::now_us();
    format!(\"{}\", x);
    #[allow(dead_code)]
    let y = g();
    if (a) { h(); }
    m.emit(v);
}
";
        let f = &parse(src).fns[0];
        let names: Vec<(&str, bool)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.method)).collect();
        assert_eq!(
            names,
            [("now_us", false), ("g", false), ("h", false), ("emit", true)]
        );
        assert_eq!(f.calls[0].qualifier, ["alpha", "helpers"]);
    }

    #[test]
    fn use_trees_flatten_groups_globs_and_renames() {
        let src = "\
use std::collections::BTreeMap;
use alpha::{one, two::three, four as renamed};
use beta::*;
";
        let parsed = parse(src);
        let leaves: Vec<(String, String)> = parsed
            .uses
            .iter()
            .map(|u| (u.leaf.clone(), u.path.join("::")))
            .collect();
        assert_eq!(
            leaves,
            [
                ("BTreeMap".to_string(), "std::collections::BTreeMap".to_string()),
                ("one".to_string(), "alpha::one".to_string()),
                ("three".to_string(), "alpha::two::three".to_string()),
                ("renamed".to_string(), "alpha::four".to_string()),
            ]
        );
    }

    #[test]
    fn nested_fns_are_items_and_bodies_nest() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n";
        let parsed = parse(src);
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // Outer's scan is conservative: it sees both calls.
        assert!(parsed.fns[0].calls.iter().any(|c| c.name == "inner"));
        assert!(parsed.fns[1].calls.iter().any(|c| c.name == "leaf"));
    }

    #[test]
    fn bodiless_decls_and_line_spans() {
        let src = "trait T {\n    fn decl(&self);\n}\nfn spanned() {\n    work();\n}\n";
        let parsed = parse(src);
        assert_eq!(parsed.fns[0].body, 0..0);
        let spanned = &parsed.fns[1];
        assert_eq!(spanned.line, 4);
        assert_eq!(spanned.end_line, 6);
    }

    #[test]
    fn adversarial_tokens_do_not_panic() {
        for src in [
            "fn", "fn (", "impl", "impl {", "use ::;", "mod", "}}}{{{", "fn f(",
            "trait X { fn ", "use a::{b,", "impl<T for {",
        ] {
            let _ = parse(src);
        }
    }
}
