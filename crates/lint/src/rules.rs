//! The project-specific rules. Each rule walks the token stream of one
//! file; `metric-registry` additionally aggregates across files (see
//! [`crate::registry`]).

use crate::classify::TestRegions;
use crate::lexer::{Tok, TokKind};
use crate::Finding;

/// Every enforceable rule id, including the two meta rules produced by
/// suppression handling.
pub const RULE_IDS: &[&str] = &[
    "float-eq",
    "unwrap-in-lib",
    "nondet-iter",
    "wall-clock",
    "hot-loop-alloc",
    "metric-registry",
    "determinism-taint",
    "taint-policy",
    "bad-suppression",
    "unused-suppression",
];

/// Per-file context shared by the token rules.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    /// Token stream.
    pub tokens: &'a [Tok],
    /// `#[cfg(test)]` / `#[test]` line ranges.
    pub test_regions: &'a TestRegions,
    /// Whether the wall-clock rule exempts this file (the `dcc-obs`
    /// timing layer itself).
    pub wall_clock_exempt: bool,
    /// Whether this file is a sanctioned struct-of-arrays solve kernel,
    /// where the advisory `hot-loop-alloc` rule applies.
    pub hot_loop_scope: bool,
}

impl FileCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_regions.contains(line)
    }
}

/// Runs all single-file token rules, appending to `findings`.
pub fn run_token_rules(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    float_eq(ctx, findings);
    unwrap_in_lib(ctx, findings);
    nondet_iter(ctx, findings);
    wall_clock(ctx, findings);
    hot_loop_alloc(ctx, findings);
}

/// Identifiers that make a `==`/`!=` operand float-typed on its face.
const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY", "EPSILON", "MAX", "MIN"];

/// `float-eq`: flags `==`/`!=` whose neighborhood is visibly
/// float-typed — a float literal on either side, a `… as f64`/`f32`
/// cast on the left, or an `f64::NAN`-style constant path. Type-aware
/// coverage (two float *variables* compared) is `clippy::float_cmp`'s
/// job; this rule is the fast source-level complement that also runs
/// on code clippy has been allowed to skip.
fn float_eq(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let prev2 = i.checked_sub(2).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        let next2 = toks.get(i + 2);
        let next3 = toks.get(i + 3);

        let lhs_float = matches!(prev, Some(p) if p.kind == TokKind::Float)
            || matches!((prev2, prev), (Some(a), Some(c))
                if a.text == "as" && (c.text == "f64" || c.text == "f32"))
            || matches!((prev2, prev), (Some(sep), Some(c))
                if sep.text == "::" && FLOAT_CONSTS.contains(&c.text.as_str()));
        let rhs_float = matches!(next, Some(n) if n.kind == TokKind::Float)
            || matches!((next, next2), (Some(m), Some(n))
                if m.text == "-" && n.kind == TokKind::Float)
            || matches!((next, next2, next3), (Some(a), Some(sep), Some(c))
                if (a.text == "f64" || a.text == "f32")
                    && sep.text == "::"
                    && FLOAT_CONSTS.contains(&c.text.as_str()));

        if lhs_float || rhs_float {
            findings.push(Finding::new(
                "float-eq",
                ctx.path,
                t.line,
                format!(
                    "float `{}` comparison; use dcc_numerics::{{approx_eq, exact_eq}} \
                     (or exact_ne) instead",
                    t.text
                ),
            ));
        }
    }
}

/// `unwrap-in-lib`: no `.unwrap()`, `.expect(…)`, or `panic!` in
/// non-test library/binary code. Libraries surface `CoreError` (or the
/// crate's typed error); the CLI surfaces `CliError`.
fn unwrap_in_lib(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        let method_call = |name: &str| {
            t.text == name
                && matches!(prev, Some(p) if p.text == ".")
                && matches!(next, Some(n) if n.text == "(")
        };
        let msg = if method_call("unwrap") {
            Some("`.unwrap()` in library code; return a typed error instead")
        } else if method_call("expect") {
            Some("`.expect(…)` in library code; return a typed error instead")
        } else if t.text == "panic" && matches!(next, Some(n) if n.text == "!") {
            Some("`panic!` in library code; return a typed error instead")
        } else {
            None
        };
        if let Some(msg) = msg {
            findings.push(Finding::new("unwrap-in-lib", ctx.path, t.line, msg.to_string()));
        }
    }
}

/// `nondet-iter`: no `HashMap`/`HashSet` in non-test code. Their
/// iteration order is a per-process coin flip, and hash containers have
/// repeatedly been the source of nondeterministic serialization, metric,
/// and contract output. `BTreeMap`/`BTreeSet` are order-deterministic by
/// construction; a reasoned suppression is required where hashing is
/// genuinely needed.
fn nondet_iter(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for t in ctx.tokens {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.line)
        {
            findings.push(Finding::new(
                "nondet-iter",
                ctx.path,
                t.line,
                format!(
                    "`{}` has nondeterministic iteration order; use BTree{} or \
                     suppress with a reason",
                    t.text,
                    if t.text == "HashMap" { "Map" } else { "Set" }
                ),
            ));
        }
    }
}

/// `wall-clock`: no `Instant`/`SystemTime` — and no `thread::sleep` —
/// outside the sanctioned timing modules (`dcc-obs`, whose recorders
/// redact timing from deterministic output, and the `dcc-faults` retry
/// module, whose backoff is a deterministic *logical* schedule). A
/// clock read anywhere else is either dead weight or a determinism
/// leak, and a sleep stalls a worker on wall time the supervised batch
/// scheduler budgets logically.
fn wall_clock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.wall_clock_exempt {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            findings.push(Finding::new(
                "wall-clock",
                ctx.path,
                t.line,
                format!(
                    "`{}` outside dcc-obs; route timing through the metrics layer \
                     or suppress with a reason",
                    t.text
                ),
            ));
            continue;
        }
        // `thread::sleep(...)` (std or scoped-import spelling).
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let prev2 = i.checked_sub(2).and_then(|j| toks.get(j));
        if t.text == "sleep"
            && matches!(prev, Some(p) if p.text == "::")
            && matches!(prev2, Some(p) if p.text == "thread")
        {
            findings.push(Finding::new(
                "wall-clock",
                ctx.path,
                t.line,
                "`thread::sleep` outside the sanctioned timing modules; \
                 use the deterministic dcc-faults backoff schedule or suppress \
                 with a reason"
                    .to_string(),
            ));
        }
    }
}

/// `hot-loop-alloc`: advisory — in the sanctioned struct-of-arrays
/// solve kernels (whose whole point is allocation-free column access),
/// flags the per-element allocators `Vec::new(…)`, `vec![…]`,
/// `.to_vec()`, and `.clone()`. These are exactly the calls that
/// silently reintroduce the per-subproblem heap traffic the columnar
/// path exists to remove; each surviving use must carry a reasoned
/// suppression (e.g. a degraded-path materialization that runs at most
/// once per failure).
fn hot_loop_alloc(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.hot_loop_scope {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let next = toks.get(i + 1);
        let next2 = toks.get(i + 2);
        let next3 = toks.get(i + 3);
        let method_call = |name: &str| {
            t.text == name
                && matches!(prev, Some(p) if p.text == ".")
                && matches!(next, Some(n) if n.text == "(")
        };
        let what = if t.text == "Vec"
            && matches!(next, Some(n) if n.text == "::")
            && matches!(next2, Some(n) if n.text == "new")
            && matches!(next3, Some(n) if n.text == "(")
        {
            Some("`Vec::new()`")
        } else if t.text == "vec" && matches!(next, Some(n) if n.text == "!") {
            Some("`vec![…]`")
        } else if method_call("to_vec") {
            Some("`.to_vec()`")
        } else if method_call("clone") {
            Some("`.clone()`")
        } else {
            None
        };
        if let Some(what) = what {
            findings.push(Finding::new(
                "hot-loop-alloc",
                ctx.path,
                t.line,
                format!(
                    "{what} in a struct-of-arrays solve kernel; borrow from the \
                     column view or hoist the buffer, or suppress with a reason"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::test_regions;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        run_with(src, false, false)
    }

    fn run_on(src: &str, wall_clock_exempt: bool) -> Vec<Finding> {
        run_with(src, wall_clock_exempt, false)
    }

    fn run_hot(src: &str) -> Vec<Finding> {
        run_with(src, false, true)
    }

    fn run_with(src: &str, wall_clock_exempt: bool, hot_loop_scope: bool) -> Vec<Finding> {
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let ctx = FileCtx {
            path: "crates/x/src/lib.rs",
            tokens: &lexed.tokens,
            test_regions: &regions,
            wall_clock_exempt,
            hot_loop_scope,
        };
        let mut findings = Vec::new();
        run_token_rules(&ctx, &mut findings);
        findings
    }

    #[test]
    fn float_eq_catches_literals_casts_and_consts() {
        let f = run("fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-eq");
        assert_eq!(run("fn f(x: f64) { if x != -1.0 {} }\n").len(), 1);
        assert_eq!(run("fn f(n: usize, x: f64) { let _ = n as f64 == x; }\n").len(), 1);
        assert_eq!(run("fn f(x: f64) { let _ = x == f64::INFINITY; }\n").len(), 1);
    }

    #[test]
    fn float_eq_ignores_ints_and_tests() {
        assert!(run("fn f(n: usize) { let _ = n == 0; }\n").is_empty());
        assert!(run("#[cfg(test)]\nmod tests {\n fn t(x: f64) { assert!(x == 1.0); }\n}\n")
            .is_empty());
    }

    #[test]
    fn unwrap_in_lib_catches_all_three_forms() {
        let f = run("fn f() { o.unwrap(); r.expect(\"m\"); panic!(\"boom\"); }\n");
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == "unwrap-in-lib"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run("fn f() { o.unwrap_or(1); o.unwrap_or_else(g); o.unwrap_or_default(); }\n")
            .is_empty());
        // `expect` as a plain identifier (not a method call) is fine.
        assert!(run("fn expect() {}\n").is_empty());
    }

    #[test]
    fn nondet_iter_and_wall_clock() {
        let f = run("use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "nondet-iter");
        assert_eq!(f[1].rule, "wall-clock");
        assert!(run_on("fn f() { let t = Instant::now(); }\n", true).is_empty());
    }

    #[test]
    fn wall_clock_catches_thread_sleep() {
        let f = run("fn f() { std::thread::sleep(d); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(f[0].message.contains("thread::sleep"), "{}", f[0].message);
        // Scoped-import spelling is the same call.
        assert_eq!(run("fn f() { thread::sleep(d); }\n").len(), 1);
        // Sanctioned modules and test regions are exempt.
        assert!(run_on("fn f() { std::thread::sleep(d); }\n", true).is_empty());
        assert!(run("#[test]\nfn t() { std::thread::sleep(d); }\n").is_empty());
        // Other `sleep` identifiers are not wall-clock reads.
        assert!(run("fn f() { scheduler.sleep(); }\n").is_empty());
        assert!(run("fn sleep() {}\n").is_empty());
    }

    #[test]
    fn hot_loop_alloc_flags_all_four_forms_only_in_scope() {
        let src = "fn f(xs: &[u64]) { let a = Vec::new(); let b = vec![0]; \
                   let c = xs.to_vec(); let d = xs.clone(); }\n";
        let f = run_hot(src);
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "hot-loop-alloc"));
        // Outside the sanctioned kernels the rule is silent.
        assert!(run(src).is_empty());
        // Non-allocating lookalikes are fine even in scope.
        assert!(run_hot("fn f() { let v = Vec::with_capacity(4); m.clone_from(&n); }\n")
            .is_empty());
        // Test regions are exempt, as with every token rule.
        assert!(run_hot("#[test]\nfn t(xs: &[u64]) { let _ = xs.to_vec(); }\n").is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[test]\nfn t() { o.unwrap(); }\nfn lib() { o.unwrap(); }\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }
}
