//! The interprocedural determinism-taint pass (`determinism-taint`).
//!
//! Every headline guarantee of this reproduction — bit-exact
//! kill/resume checkpoints, serial ≡ pooled ≡ batch ≡ streaming
//! differential contracts, golden `to_bits` snapshots — assumes no
//! nondeterministic value ever reaches a digest, checkpoint, snapshot,
//! or recorded metric. The token rules can flag a `HashMap` or an
//! `Instant`; this pass proves the *boundary*: it builds a cross-crate
//! call graph from the item parser and propagates function-level taint
//! from **sources** to **sinks**.
//!
//! Sources (a function that contains one is directly tainted):
//!
//! - wall-clock reads (`Instant`, `SystemTime`);
//! - RNG construction outside seeded constructors (`thread_rng`,
//!   `from_entropy`, `OsRng`) — `SeedableRng::from_seed`/`seed_from_u64`
//!   are definitionally *not* sources;
//! - process environment (`env::var`/`vars`/`var_os`/`temp_dir`);
//! - thread identity (`ThreadId`, `thread::current`);
//! - unordered-collection iteration (`HashMap`/`HashSet` with
//!   `iter`/`keys`/`values`/`drain`/…);
//! - float reductions over those iterators (`sum`/`product`/`fold`
//!   after a hash-container mention — accumulation order changes bits).
//!
//! Taint propagates from callee to caller (a function that calls a
//! tainted function observes nondeterministic values), except through
//! **laundering points** declared in the checked-in policy file (see
//! [`crate::policy`]): the `dcc-obs` timing-redaction path, sanctioned
//! timer reads whose values feed redacted spans, the fixed-order pooled
//! merge. A finding is reported when a tainted function calls a
//! **sink** — digest folds (`design_digest`, `fnv*`, `*fingerprint*`),
//! checkpoint serialization (`save_checkpoint`, `save_json_atomic`, …),
//! golden-snapshot writers, and metric emission (`.add`/`.gauge`/
//! `.observe`/`.event`) — or when a sink function is itself tainted.
//! Each finding carries the full source→…→sink trace, rendered in both
//! `dcc-lint/2` JSON and SARIF code flows.

use crate::classify::TestRegions;
use crate::lexer::{Tok, TokKind};
use crate::parse::{Call, ParsedFile};
use crate::policy::{EntryKind, Policy};
use crate::{Finding, TraceStep};
use std::collections::{BTreeMap, VecDeque};

/// What kind of nondeterminism a source introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `Instant` / `SystemTime` read.
    WallClock,
    /// Unseeded RNG construction.
    Rng,
    /// Process environment read.
    Env,
    /// Thread identity.
    ThreadId,
    /// `HashMap`/`HashSet` iteration.
    UnorderedIter,
    /// Float reduction over an unordered iterator.
    FloatOrder,
}

impl TaintKind {
    /// Short label used in messages and the source/sink catalogue.
    pub fn label(self) -> &'static str {
        match self {
            TaintKind::WallClock => "wall-clock",
            TaintKind::Rng => "unseeded-rng",
            TaintKind::Env => "process-env",
            TaintKind::ThreadId => "thread-id",
            TaintKind::UnorderedIter => "unordered-iter",
            TaintKind::FloatOrder => "float-order",
        }
    }
}

/// A direct taint source inside a function body.
#[derive(Debug, Clone)]
struct Source {
    kind: TaintKind,
    line: u32,
    what: String,
}

/// One analyzable file: parsed items plus the token stream and test
/// regions they came from.
pub struct Unit<'a> {
    /// Item-level parse of the file.
    pub parsed: &'a ParsedFile,
    /// The file's token stream (body ranges index into it).
    pub tokens: &'a [Tok],
    /// `#[cfg(test)]`/`#[test]` regions — functions inside are skipped.
    pub test_regions: &'a TestRegions,
}

/// Built-in sink catalogue: function-name patterns. Returns the sink
/// category for reporting.
fn builtin_sink_fn(name: &str) -> Option<&'static str> {
    if name == "design_digest" || name.starts_with("fnv") || name.contains("fingerprint") {
        return Some("digest");
    }
    if matches!(
        name,
        "save_checkpoint" | "save_json_atomic" | "save_sim_state" | "save_adaptive_state"
            | "write_checkpoint"
    ) {
        return Some("checkpoint");
    }
    if name.contains("golden") && (name.starts_with("write") || name.starts_with("save")) {
        return Some("golden-snapshot");
    }
    None
}

/// Metric-emission methods (the `dcc-obs` recording surface). Span
/// timings are redacted by the obs layer, so `span`/`span_at` are not
/// sinks; the value-carrying emitters are.
const EMITTER_SINKS: &[&str] = &["add", "gauge", "observe", "event"];

/// How a function became tainted.
#[derive(Debug, Clone)]
enum Witness {
    /// Contains a direct source.
    Direct(Source),
    /// Calls the tainted function `callee` (global index) at `line`.
    Via { callee: usize, line: u32 },
}

struct FnNode {
    path: String,
    name: String,
    qual: String,
    line: u32,
    calls: Vec<Call>,
    laundered: bool,
    sources: Vec<Source>,
    sink_def: Option<&'static str>,
}

/// Runs the taint pass over the parsed workspace. `policy` entries are
/// marked used as they match; stale entries become `taint-policy`
/// findings.
pub fn analyze(units: &[Unit<'_>], policy: &mut Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut nodes: Vec<FnNode> = Vec::new();

    // 1. Collect function nodes (non-test only), apply launder policy,
    //    scan direct sources.
    for unit in units {
        for f in &unit.parsed.fns {
            if unit.test_regions.contains(f.line) {
                continue;
            }
            let mut laundered = false;
            for e in &mut policy.entries {
                if e.kind == EntryKind::Launder
                    && e.pattern.matches_fn(&unit.parsed.path, &f.qual, &f.name)
                {
                    e.used = true;
                    laundered = true;
                }
            }
            let mut sink_def = builtin_sink_fn(&f.name);
            for e in &mut policy.entries {
                if e.kind == EntryKind::Sink
                    && e.pattern.matches_fn(&unit.parsed.path, &f.qual, &f.name)
                {
                    e.used = true;
                    sink_def = sink_def.or(Some("policy"));
                }
            }
            let sources = if laundered {
                Vec::new()
            } else {
                scan_sources(unit.tokens, f.body.clone(), policy)
            };
            nodes.push(FnNode {
                path: unit.parsed.path.clone(),
                name: f.name.clone(),
                qual: f.qual.clone(),
                line: f.line,
                calls: f.calls.clone(),
                laundered,
                sources,
                sink_def,
            });
        }
    }

    // 2. Index by bare name for call resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }

    // 3. Reverse call edges: callee -> (caller, call line). Calls whose
    //    name matches a `launder call:` pattern never propagate.
    let mut callers: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes.len()];
    let mut laundered_call_lines: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    for caller in 0..nodes.len() {
        for c in nodes[caller].calls.clone() {
            let mut laundered_call = false;
            for e in &mut policy.entries {
                if e.kind == EntryKind::Launder && e.pattern.matches_call(&c.name) {
                    e.used = true;
                    laundered_call = true;
                }
            }
            if laundered_call {
                laundered_call_lines[caller].push(c.line);
                continue;
            }
            for target in resolve(&c, &nodes, &by_name) {
                if target != caller {
                    callers[target].push((caller, c.line));
                }
            }
        }
    }

    // 4. Propagate taint from direct sources to callers (BFS, in
    //    deterministic global order).
    let mut witness: Vec<Option<Witness>> = vec![None; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        if let Some(src) = n.sources.first() {
            witness[i] = Some(Witness::Direct(src.clone()));
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &(caller, line) in &callers[cur] {
            if witness[caller].is_none() && !nodes[caller].laundered {
                witness[caller] = Some(Witness::Via { callee: cur, line });
                queue.push_back(caller);
            }
        }
    }

    // 5. Findings: sink calls inside tainted functions, and tainted
    //    sink definitions.
    for (i, n) in nodes.iter().enumerate() {
        let Some(_) = witness[i] else { continue };
        let (trace_prefix, origin) = taint_chain(i, &nodes, &witness);
        for c in &n.calls {
            if laundered_call_lines[i].contains(&c.line) {
                continue;
            }
            let category = sink_category(c, &nodes, &by_name, policy);
            let Some(category) = category else { continue };
            let mut trace = trace_prefix.clone();
            trace.push(TraceStep {
                path: n.path.clone(),
                line: c.line,
                note: format!("`{}` calls {category} sink `{}` with taint in scope", n.qual, c.name),
            });
            findings.push(Finding::with_trace(
                "determinism-taint",
                &n.path,
                c.line,
                format!(
                    "tainted value may reach {category} sink `{}`: {origin} reaches `{}`",
                    c.name, n.qual
                ),
                trace,
            ));
        }
        if let Some(category) = n.sink_def {
            let mut trace = trace_prefix.clone();
            trace.push(TraceStep {
                path: n.path.clone(),
                line: n.line,
                note: format!("`{}` is a {category} sink and is itself tainted", n.qual),
            });
            findings.push(Finding::with_trace(
                "determinism-taint",
                &n.path,
                n.line,
                format!(
                    "{category} sink `{}` is itself tainted: {origin}",
                    n.qual
                ),
                trace,
            ));
        }
    }

    policy.stale_entries(&mut findings);
    findings
}

/// Reconstructs the source→…→function chain for a tainted node.
/// Returns the trace steps (source first) and a one-line origin
/// description for the message.
fn taint_chain(
    idx: usize,
    nodes: &[FnNode],
    witness: &[Option<Witness>],
) -> (Vec<TraceStep>, String) {
    // Follow Via links down to the Direct source.
    let mut hops: Vec<usize> = vec![idx];
    let mut cur = idx;
    let (src_node, src) = loop {
        match &witness[cur] {
            Some(Witness::Direct(s)) => break (cur, s.clone()),
            Some(Witness::Via { callee, .. }) => {
                cur = *callee;
                if hops.contains(&cur) {
                    // Defensive: witness chains are acyclic by
                    // construction (BFS assigns once), but never loop.
                    break (cur, Source {
                        kind: TaintKind::WallClock,
                        line: nodes[cur].line,
                        what: "cyclic witness".to_string(),
                    });
                }
                hops.push(cur);
            }
            None => {
                break (cur, Source {
                    kind: TaintKind::WallClock,
                    line: nodes[cur].line,
                    what: "unknown".to_string(),
                })
            }
        }
    };
    hops.reverse(); // source-side first
    let mut trace = vec![TraceStep {
        path: nodes[src_node].path.clone(),
        line: src.line,
        note: format!(
            "{} source: {} in `{}`",
            src.kind.label(),
            src.what,
            nodes[src_node].qual
        ),
    }];
    for pair in hops.windows(2) {
        let (callee, caller) = (pair[0], pair[1]);
        let line = match &witness[caller] {
            Some(Witness::Via { line, .. }) => *line,
            _ => nodes[caller].line,
        };
        trace.push(TraceStep {
            path: nodes[caller].path.clone(),
            line,
            note: format!("`{}` calls tainted `{}`", nodes[caller].qual, nodes[callee].qual),
        });
    }
    let origin = format!(
        "{} source ({}) at {}:{}",
        src.kind.label(),
        src.what,
        nodes[src_node].path,
        src.line
    );
    (trace, origin)
}

/// Whether a call site is a sink, and its category. Built-in emitter
/// methods and sink names match directly; policy `sink fn:` entries
/// match through call resolution.
fn sink_category(
    call: &Call,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    policy: &mut Policy,
) -> Option<&'static str> {
    if call.method && EMITTER_SINKS.contains(&call.name.as_str()) {
        return Some("metric-emission");
    }
    if let Some(cat) = builtin_sink_fn(&call.name) {
        return Some(cat);
    }
    for target in resolve(call, nodes, by_name) {
        for e in &mut policy.entries {
            if e.kind == EntryKind::Sink
                && e.pattern.matches_fn(&nodes[target].path, &nodes[target].qual, &nodes[target].name)
            {
                e.used = true;
                return Some("policy");
            }
        }
    }
    None
}

/// Resolves a call site to candidate function indices by name, narrowed
/// by the call's path qualifier when one is present.
fn resolve(call: &Call, nodes: &[FnNode], by_name: &BTreeMap<&str, Vec<usize>>) -> Vec<usize> {
    let Some(candidates) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    if call.qualifier.is_empty() {
        return candidates.clone();
    }
    // `Type::assoc(…)` or `module::f(…)`: keep candidates whose
    // qualified name or file/module path agrees with the last
    // qualifier segment. Crate names map onto `crates/<dir>` with the
    // `dcc_` prefix stripped.
    let q = call.qualifier.last().map(String::as_str).unwrap_or("");
    let q_norm = q.strip_prefix("dcc_").unwrap_or(q);
    let narrowed: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| {
            let n = &nodes[i];
            n.qual == format!("{q}::{}", call.name)
                || n.path
                    .split('/')
                    .any(|seg| seg == q_norm || seg.strip_suffix(".rs") == Some(q_norm))
        })
        .collect();
    if narrowed.is_empty() {
        candidates.clone()
    } else {
        narrowed
    }
}

/// Scans a body token range for direct sources. `launder call:`
/// patterns suppress matching identifiers (and are marked used).
fn scan_sources(tokens: &[Tok], body: std::ops::Range<usize>, policy: &mut Policy) -> Vec<Source> {
    let mut out = Vec::new();
    let start = body.start.min(tokens.len());
    let end = body.end.min(tokens.len());
    let slice = &tokens[start..end];
    // Hash containers are usually named in the signature
    // (`m: &HashMap<…>`), not the body — scan back to the `fn` keyword.
    let sig_start = (0..start)
        .rev()
        .find(|&k| tokens[k].kind == TokKind::Ident && tokens[k].text == "fn")
        .unwrap_or(start);
    let mentions_hash = tokens[sig_start..end]
        .iter()
        .any(|t| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet"));
    for (j, t) in slice.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = slice.get(j + 1).map(|t| t.text.as_str()).unwrap_or("");
        let next2 = slice.get(j + 2).map(|t| t.text.as_str()).unwrap_or("");
        let prev = j.checked_sub(1).map(|k| slice[k].text.as_str()).unwrap_or("");
        let mut push = |kind: TaintKind, what: String| {
            out.push(Source {
                kind,
                line: t.line,
                what,
            });
        };
        let laundered = policy_launders_call(policy, &t.text);
        if laundered {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => {
                push(TaintKind::WallClock, format!("`{}` read", t.text));
            }
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" => {
                push(TaintKind::Rng, format!("unseeded RNG `{}`", t.text));
            }
            "env" if next == "::" && matches!(next2, "var" | "vars" | "var_os" | "temp_dir") => {
                push(TaintKind::Env, format!("`env::{next2}` read"));
            }
            "ThreadId" => push(TaintKind::ThreadId, "`ThreadId` use".to_string()),
            "thread" if next == "::" && next2 == "current" => {
                push(TaintKind::ThreadId, "`thread::current` read".to_string());
            }
            "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "drain" | "into_iter"
            | "into_keys" | "into_values" | "retain"
                if mentions_hash && prev == "." =>
            {
                push(
                    TaintKind::UnorderedIter,
                    format!("`.{}()` over a hash container", t.text),
                );
            }
            "sum" | "product" | "fold" if mentions_hash && prev == "." => {
                push(
                    TaintKind::FloatOrder,
                    format!("`.{}()` reduction in unordered iteration order", t.text),
                );
            }
            _ => {}
        }
    }
    out
}

fn policy_launders_call(policy: &mut Policy, name: &str) -> bool {
    let mut hit = false;
    for e in &mut policy.entries {
        if e.kind == EntryKind::Launder && e.pattern.matches_call(name) {
            e.used = true;
            hit = true;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::test_regions;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    struct Owned {
        parsed: ParsedFile,
        tokens: Vec<Tok>,
        regions: TestRegions,
    }

    fn build(files: &[(&str, &str)]) -> Vec<Owned> {
        files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let regions = test_regions(&lexed.tokens);
                let parsed = parse_file(path, &lexed.tokens);
                Owned {
                    parsed,
                    tokens: lexed.tokens,
                    regions,
                }
            })
            .collect()
    }

    fn run(files: &[(&str, &str)], policy_src: &str) -> Vec<Finding> {
        let owned = build(files);
        let units: Vec<Unit<'_>> = owned
            .iter()
            .map(|o| Unit {
                parsed: &o.parsed,
                tokens: &o.tokens,
                test_regions: &o.regions,
            })
            .collect();
        let mut policy = Policy::parse("dcc-lint.policy", policy_src).expect("policy parses");
        analyze(&units, &mut policy)
    }

    #[test]
    fn cross_crate_source_helper_sink_flow_is_found() {
        let alpha = "pub fn now_us() -> u64 { Instant::now().elapsed().as_micros() as u64 }\n";
        let beta = "\
pub fn stamp() -> u64 { alpha::now_us() }
pub fn digest_round(xs: &[u64]) -> u64 {
    let t = stamp();
    fnv_fold(xs, t)
}
pub fn fnv_fold(xs: &[u64], seed: u64) -> u64 { xs.iter().fold(seed, |a, b| a ^ b) }
pub fn clean(xs: &[u64]) -> u64 { fnv_fold(xs, 0) }
";
        let f = run(
            &[
                ("crates/alpha/src/lib.rs", alpha),
                ("crates/beta/src/lib.rs", beta),
            ],
            "",
        );
        let taint: Vec<_> = f.iter().filter(|f| f.rule == "determinism-taint").collect();
        assert_eq!(taint.len(), 1, "{taint:#?}");
        let t = taint[0];
        assert_eq!(t.path, "crates/beta/src/lib.rs");
        assert_eq!(t.line, 4); // the fnv_fold call
        assert!(t.message.contains("digest sink `fnv_fold`"), "{}", t.message);
        assert!(t.message.contains("wall-clock"), "{}", t.message);
        // Trace: source, stamp hop, digest_round hop, sink call.
        assert_eq!(t.trace.len(), 4, "{:#?}", t.trace);
        assert_eq!(t.trace[0].path, "crates/alpha/src/lib.rs");
        assert!(t.trace[0].note.contains("wall-clock source"));
        assert!(t.trace[3].note.contains("sink"));
    }

    #[test]
    fn launder_policy_cuts_the_flow_and_unused_entries_are_findings() {
        let src = "\
pub fn timed() -> u64 { Instant::now().elapsed().as_micros() as u64 }
pub fn emit(m: &Metrics) { let v = timed(); m.add(\"x\", v); }
";
        // Unlaundered: the emission fires.
        let f = run(&[("crates/a/src/lib.rs", src)], "");
        assert!(f.iter().any(|f| f.rule == "determinism-taint"));
        // Laundering the timer kills the flow.
        let f = run(
            &[("crates/a/src/lib.rs", src)],
            "launder fn:crates/a/src/lib.rs#timed -- redacted downstream\n",
        );
        assert!(f.iter().all(|f| f.rule != "determinism-taint"), "{f:#?}");
        // A stale entry is reported on the policy file.
        let f = run(
            &[("crates/a/src/lib.rs", src)],
            "launder fn:crates/a/src/lib.rs#timed -- redacted downstream\nlaunder fn:ghost -- gone\n",
        );
        let stale: Vec<_> = f.iter().filter(|f| f.rule == "taint-policy").collect();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "dcc-lint.policy");
        assert_eq!(stale[0].line, 2);
    }

    #[test]
    fn env_source_reaches_policy_declared_sink() {
        let src = "\
pub fn tag() -> String { std::env::var(\"TAG\").unwrap_or_default() }
pub fn persist(rows: &[u64]) { let t = tag(); persist_rows(rows, t); }
pub fn persist_rows(_rows: &[u64], _t: String) {}
";
        let f = run(
            &[("crates/a/src/lib.rs", src)],
            "sink fn:persist_rows -- fixture checkpoint writer\n",
        );
        let taint: Vec<_> = f.iter().filter(|f| f.rule == "determinism-taint").collect();
        assert_eq!(taint.len(), 1, "{f:#?}");
        assert!(taint[0].message.contains("process-env"), "{}", taint[0].message);
        assert!(taint[0].message.contains("policy sink"), "{}", taint[0].message);
    }

    #[test]
    fn unordered_iteration_and_float_reductions_are_sources() {
        let src = "\
pub fn scatter(m: &HashMap<u64, f64>) -> f64 { m.values().sum() }
pub fn digest_scatter(m: &HashMap<u64, f64>) -> u64 { scatter(m) as u64 ^ fnv_mix(1) }
pub fn fnv_mix(x: u64) -> u64 { x }
";
        let f = run(&[("crates/a/src/lib.rs", src)], "");
        let taint: Vec<_> = f.iter().filter(|f| f.rule == "determinism-taint").collect();
        assert_eq!(taint.len(), 1, "{f:#?}");
        assert!(
            taint[0].message.contains("unordered-iter") || taint[0].message.contains("float-order"),
            "{}",
            taint[0].message
        );
    }

    #[test]
    fn tainted_sink_definition_is_reported() {
        let src = "\
pub fn design_digest(xs: &[f64]) -> u64 {
    let salt = std::env::var(\"SALT\").map(|s| s.len() as u64).unwrap_or(0);
    xs.len() as u64 ^ salt
}
";
        let f = run(&[("crates/a/src/lib.rs", src)], "");
        let taint: Vec<_> = f.iter().filter(|f| f.rule == "determinism-taint").collect();
        assert_eq!(taint.len(), 1, "{f:#?}");
        assert_eq!(taint[0].line, 1);
        assert!(taint[0].message.contains("is itself tainted"), "{}", taint[0].message);
    }

    #[test]
    fn seeded_rng_and_test_fns_are_not_sources() {
        let src = "\
pub fn seeded(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }
#[cfg(test)]
mod tests {
    fn t() { let i = Instant::now(); save_checkpoint(i); }
}
";
        let f = run(&[("crates/a/src/lib.rs", src)], "");
        assert!(f.iter().all(|f| f.rule != "determinism-taint"), "{f:#?}");
    }

    #[test]
    fn laundered_call_pattern_is_marked_used_not_stale() {
        let src = "pub fn seeded(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n";
        let f = run(
            &[("crates/a/src/lib.rs", src)],
            "launder call:seed_from_u64 -- seeded construction is the sanctioned RNG entry point\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }
}
