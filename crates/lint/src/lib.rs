//! `dcc-lint` — a workspace-specific determinism and numeric-safety
//! static analyzer.
//!
//! The pipeline's headline guarantees (bit-exact checkpoint/resume,
//! pool-invariant parallel solves, byte-deterministic `dcc-obs/1`
//! output) are enforced by tests that *sample* behavior. This crate
//! checks the *source*: a small Rust lexer plus a rule engine walk
//! every workspace file and enforce rules clippy cannot express:
//!
//! | rule | enforces |
//! |---|---|
//! | `float-eq` | no visibly-float `==`/`!=`; use `dcc_numerics` helpers |
//! | `unwrap-in-lib` | no `.unwrap()`/`.expect(…)`/`panic!` in non-test code |
//! | `nondet-iter` | no `HashMap`/`HashSet` (iteration order is nondeterministic) |
//! | `wall-clock` | no `Instant`/`SystemTime` outside `dcc-obs` |
//! | `hot-loop-alloc` | no per-element allocation in the struct-of-arrays solve kernels |
//! | `metric-registry` | metric names in code ↔ `docs/observability.md` stay in sync |
//! | `determinism-taint` | no source→sink nondeterminism flow through the call graph |
//! | `taint-policy` | the taint policy file contains no stale entries |
//!
//! The `determinism-taint` rule is semantic: an item-level parser
//! ([`parse`]) builds a cross-crate call graph and the taint engine
//! ([`taint`]) propagates nondeterminism from sources (wall clock,
//! unseeded RNG, `std::env`, thread IDs, unordered iteration) to sinks
//! (digest folds, checkpoint writers, metric emission), modulo
//! sanctioned laundering points declared in a checked-in [`policy`]
//! file.
//!
//! Findings are suppressible inline with
//! `// dcc-lint: allow(<rule>, reason = "…")` — the reason is
//! mandatory, and unused suppressions are themselves findings — or
//! ratcheted via a committed [`baseline`] file. Output formats: text,
//! `dcc-lint/2` JSON, and SARIF 2.1.0 ([`sarif`]). See
//! `docs/static-analysis.md` for the full rule catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod classify;
pub mod lexer;
pub mod parse;
pub mod policy;
pub mod registry;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod suppress;
pub mod taint;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One step of a taint trace: where the flow passes and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What happens at this step (source, hop, or sink).
    pub note: String,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Source→…→sink steps for `determinism-taint` findings; empty for
    /// token-rule findings.
    pub trace: Vec<TraceStep>,
}

impl Finding {
    /// Builds a finding; `rule` must be a known id.
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            trace: Vec::new(),
        }
    }

    /// Builds a finding carrying a taint trace.
    pub fn with_trace(
        rule: &'static str,
        path: &str,
        line: u32,
        message: String,
        trace: Vec<TraceStep>,
    ) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            trace,
        }
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; findings are reported relative to it.
    pub root: PathBuf,
    /// Explicit files/directories to lint (workspace-walk when empty).
    /// Explicit mode runs the token rules only — the `metric-registry`
    /// cross-check needs the whole workspace to be meaningful.
    pub paths: Vec<PathBuf>,
    /// Root-relative path of the file holding the `pub mod names`
    /// metric registry (direction 2 of `metric-registry`).
    pub registry_module: Option<PathBuf>,
    /// Root-relative path of the metric documentation table.
    pub registry_doc: Option<PathBuf>,
    /// Root-relative path of the taint policy file (launder/sink
    /// declarations for `determinism-taint`). The taint pass runs in
    /// workspace mode regardless; without a policy nothing is
    /// sanctioned.
    pub policy: Option<PathBuf>,
}

impl Config {
    /// The standard workspace configuration rooted at `root`: full
    /// walk, with the registry cross-check wired to
    /// `crates/obs/src/lib.rs` ↔ `docs/observability.md` when both
    /// exist.
    pub fn workspace(root: impl Into<PathBuf>) -> Config {
        let root = root.into();
        let module = PathBuf::from("crates/obs/src/lib.rs");
        let doc = PathBuf::from("docs/observability.md");
        let both = root.join(&module).is_file() && root.join(&doc).is_file();
        let policy = PathBuf::from("dcc-lint.policy");
        let policy = root.join(&policy).is_file().then_some(policy);
        Config {
            root,
            paths: Vec::new(),
            registry_module: both.then(|| module.clone()),
            registry_doc: both.then_some(doc),
            policy,
        }
    }

    /// Lints only `paths` (files or directories), token rules only.
    pub fn explicit(root: impl Into<PathBuf>, paths: Vec<PathBuf>) -> Config {
        Config {
            root: root.into(),
            paths,
            registry_module: None,
            registry_doc: None,
            policy: None,
        }
    }
}

/// Analyzer output.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        report::render_text(&self.findings, self.files_scanned)
    }

    /// Machine-readable `dcc-lint/2` JSON.
    pub fn to_json(&self) -> String {
        report::render_json(&self.findings, self.files_scanned)
    }

    /// SARIF 2.1.0 document with no baseline applied (every finding is
    /// an open result). For ratchet-aware emission build
    /// [`sarif::SarifResult`]s from a [`baseline::Outcome`].
    pub fn to_sarif(&self) -> String {
        let results: Vec<sarif::SarifResult<'_>> = self
            .findings
            .iter()
            .map(|f| sarif::SarifResult {
                finding: f,
                justification: None,
            })
            .collect();
        sarif::render(&results)
    }
}

/// Directory names never descended into. `fixtures` holds this crate's
/// deliberately-violating test inputs; `shims` is vendored third-party
/// API surface that keeps upstream idiom.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "fixtures"];

/// Runs the analyzer.
///
/// # Errors
///
/// Returns a message when the root or an explicit path cannot be read.
pub fn run(cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    if cfg.paths.is_empty() {
        walk(&cfg.root, &mut files).map_err(|e| format!("walk {}: {e}", cfg.root.display()))?;
    } else {
        for p in &cfg.paths {
            let abs = if p.is_absolute() { p.clone() } else { cfg.root.join(p) };
            if abs.is_dir() {
                walk(&abs, &mut files).map_err(|e| format!("walk {}: {e}", abs.display()))?;
            } else if abs.is_file() {
                files.push(abs);
            } else {
                return Err(format!("no such file or directory: {}", p.display()));
            }
        }
    }
    files.sort();
    files.dedup();

    let mut per_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let mut suppressions: BTreeMap<String, Vec<suppress::Suppression>> = BTreeMap::new();
    let mut code_names: Vec<registry::CodeName> = Vec::new();
    let mut const_refs: Vec<registry::ConstRef> = Vec::new();
    let mut reg_consts: BTreeMap<String, String> = BTreeMap::new();
    let mut files_scanned = 0usize;
    // Parsed files retained for the interprocedural taint pass (runs in
    // workspace-walk mode only — explicit paths cannot see the graph).
    let taint_mode = cfg.paths.is_empty();
    struct TaintUnit {
        parsed: parse::ParsedFile,
        tokens: Vec<lexer::Tok>,
        regions: classify::TestRegions,
    }
    let mut taint_units: Vec<TaintUnit> = Vec::new();

    for file in &files {
        let rel = rel_path(&cfg.root, file);
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        files_scanned += 1;
        if classify::is_test_path(&rel) {
            continue;
        }
        let lexed = lexer::lex(&source);
        let regions = classify::test_regions(&lexed.tokens);
        let findings = per_file.entry(rel.clone()).or_default();
        let sup = suppress::parse(&rel, &lexed.comments, findings);
        suppressions.insert(rel.clone(), sup);

        let ctx = rules::FileCtx {
            path: &rel,
            tokens: &lexed.tokens,
            test_regions: &regions,
            wall_clock_exempt: wall_clock_exempt(&rel),
            hot_loop_scope: hot_loop_scope(&rel),
        };
        rules::run_token_rules(&ctx, findings);

        if cfg.registry_doc.is_some() {
            registry::collect_emissions(
                &rel,
                &lexed.tokens,
                &regions,
                &mut code_names,
                &mut const_refs,
            );
            if cfg
                .registry_module
                .as_ref()
                .is_some_and(|m| m.as_path() == Path::new(&rel))
            {
                registry::collect_registry_consts(&rel, &lexed.tokens, &mut code_names);
                reg_consts = registry::const_map(&lexed.tokens);
            }
        }

        if taint_mode {
            taint_units.push(TaintUnit {
                parsed: parse::parse_file(&rel, &lexed.tokens),
                tokens: lexed.tokens,
                regions,
            });
        }
    }

    if taint_mode {
        let mut pol = match &cfg.policy {
            Some(rel) => {
                let abs = cfg.root.join(rel);
                let src = std::fs::read_to_string(&abs)
                    .map_err(|e| format!("read {}: {e}", abs.display()))?;
                policy::Policy::parse(&rel.to_string_lossy().replace('\\', "/"), &src)?
            }
            None => policy::Policy::default(),
        };
        let units: Vec<taint::Unit<'_>> = taint_units
            .iter()
            .map(|u| taint::Unit {
                parsed: &u.parsed,
                tokens: &u.tokens,
                test_regions: &u.regions,
            })
            .collect();
        for f in taint::analyze(&units, &mut pol) {
            per_file.entry(f.path.clone()).or_default().push(f);
        }
    }

    if let Some(doc_rel) = &cfg.registry_doc {
        let doc_path = cfg.root.join(doc_rel);
        let doc_src = std::fs::read_to_string(&doc_path)
            .map_err(|e| format!("read {}: {e}", doc_path.display()))?;
        let doc = registry::doc_names(&doc_src);
        let doc_rel_str = doc_rel.to_string_lossy().replace('\\', "/");
        let mut reg_findings = Vec::new();
        registry::resolve_const_refs(&const_refs, &reg_consts, &mut code_names, &mut reg_findings);
        registry::cross_check(&code_names, &doc, &doc_rel_str, &mut reg_findings);
        for f in reg_findings {
            per_file.entry(f.path.clone()).or_default().push(f);
        }
    }

    let mut all = Vec::new();
    for (rel, findings) in per_file {
        match suppressions.get_mut(&rel) {
            Some(sup) => all.extend(suppress::apply(&rel, sup, findings)),
            None => all.extend(findings),
        }
    }
    all.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    Ok(Report {
        findings: all,
        files_scanned,
    })
}

/// Lints a single in-memory source under a synthetic path (test and
/// property-test entry point; token rules only).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let regions = classify::test_regions(&lexed.tokens);
    let mut findings = Vec::new();
    let mut sup = suppress::parse(rel_path, &lexed.comments, &mut findings);
    if classify::is_test_path(rel_path) {
        return Vec::new();
    }
    let ctx = rules::FileCtx {
        path: rel_path,
        tokens: &lexed.tokens,
        test_regions: &regions,
        wall_clock_exempt: wall_clock_exempt(rel_path),
        hot_loop_scope: hot_loop_scope(rel_path),
    };
    rules::run_token_rules(&ctx, &mut findings);
    let mut kept = suppress::apply(rel_path, &mut sup, findings);
    kept.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    kept
}

/// Files the `wall-clock` rule exempts wholesale: the `dcc-obs` timing
/// layer itself, and the `dcc-faults` retry module (the sanctioned home
/// for backoff logic — its schedule is logical, and any future real
/// sleep belongs there, visible to review).
fn wall_clock_exempt(rel: &str) -> bool {
    rel.starts_with("crates/obs/") || rel == "crates/faults/src/retry.rs"
}

/// Files where the advisory `hot-loop-alloc` rule applies: the
/// struct-of-arrays solve kernels, whose contract is allocation-free
/// column access on the per-subproblem path.
fn hot_loop_scope(rel: &str) -> bool {
    rel == "crates/core/src/soa.rs"
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let name = name.as_deref().unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_end_to_end_with_suppression() {
        let src = "\
use std::collections::HashMap; // dcc-lint: allow(nondet-iter, reason = \"test harness\")
fn f(x: f64) -> bool { x == 0.0 }
";
        let findings = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "float-eq");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn test_paths_produce_no_findings() {
        let findings = lint_source("crates/x/tests/t.rs", "fn f() { o.unwrap(); }\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn workspace_config_wires_registry_only_when_present() {
        let cfg = Config::workspace("/nonexistent");
        assert!(cfg.registry_doc.is_none());
        assert!(cfg.registry_module.is_none());
    }
}
