//! Splits a file into production and test regions.
//!
//! Whole files are test code when their path contains a `tests/`,
//! `benches/`, or `examples/` segment. Within production files, items
//! annotated `#[test]` or `#[cfg(test)]` (including `cfg(any(test,…))`)
//! are test regions: the attribute plus the item body it attaches to.
//! `#[cfg_attr(test, …)]` does *not* mark an item as test-only — the
//! item still compiles into the library.

use crate::lexer::{Tok, TokKind};

/// Whether the (workspace-relative, `/`-separated) path is test, bench,
/// or example code as a whole.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Inclusive line ranges covered by test-only items.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    /// Whether `line` falls inside a `#[test]` / `#[cfg(test)]` item.
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

/// Finds test regions by scanning attributes and brace-matching the
/// items they attach to.
pub fn test_regions(tokens: &[Tok]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && matches!(tokens.get(i + 1), Some(t) if t.text == "[") {
            let attr_line = tokens[i].line;
            let (idents, after) = attr_contents(tokens, i + 1);
            if attr_marks_test(&idents) {
                let end = item_end(tokens, after);
                let end_line = tokens
                    .get(end.saturating_sub(1).min(tokens.len().saturating_sub(1)))
                    .map_or(attr_line, |t| t.line);
                regions.ranges.push((attr_line, end_line.max(attr_line)));
                i = end;
                continue;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    regions
}

/// Collects identifiers inside the attribute opening at `open` (`[`),
/// returning them with the index just past the matching `]`.
fn attr_contents(tokens: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i + 1);
                }
            }
            _ => {
                if tokens[i].kind == TokKind::Ident {
                    idents.push(tokens[i].text.clone());
                }
            }
        }
        i += 1;
    }
    (idents, i)
}

/// Whether an attribute's identifier sequence marks a test-only item.
fn attr_marks_test(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") => true,
        Some("cfg") => idents.iter().any(|id| id == "test"),
        _ => false,
    }
}

/// Index just past the item starting at `start`: skips further
/// attributes, then either a `;`-terminated item or a braced body.
fn item_end(tokens: &[Tok], mut start: usize) -> usize {
    // Skip stacked attributes between the test marker and the item.
    while start < tokens.len()
        && tokens[start].text == "#"
        && matches!(tokens.get(start + 1), Some(t) if t.text == "[")
    {
        let (_, after) = attr_contents(tokens, start + 1);
        start = after;
    }
    let mut i = start;
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_paths() {
        assert!(is_test_path("crates/core/tests/proptest_core.rs"));
        assert!(is_test_path("crates/bench/benches/engine.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/core/src/sim.rs"));
        assert!(!is_test_path("src/lib.rs"));
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}\n";
        let regions = test_regions(&lex(src).tokens);
        assert!(!regions.contains(1));
        assert!(regions.contains(2));
        assert!(regions.contains(4));
        assert!(regions.contains(5));
        assert!(!regions.contains(6));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    let x = 1;\n}\nfn lib() {}\n";
        let regions = test_regions(&lex(src).tokens);
        assert!(regions.contains(1));
        assert!(regions.contains(4));
        assert!(!regions.contains(6));
    }

    #[test]
    fn cfg_attr_test_is_not_a_region() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn lib() {\n    work();\n}\n";
        let regions = test_regions(&lex(src).tokens);
        assert!(!regions.contains(2));
        assert!(!regions.contains(3));
    }

    #[test]
    fn cfg_any_test_is_a_region() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod harness {\n    fn h() {}\n}\n";
        let regions = test_regions(&lex(src).tokens);
        assert!(regions.contains(3));
    }

    #[test]
    fn semicolon_terminated_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {}\n";
        let regions = test_regions(&lex(src).tokens);
        assert!(regions.contains(2));
        assert!(!regions.contains(3));
    }
}
