//! The finding baseline and its ratchet rule.
//!
//! The baseline (`dcc-lint.baseline` at the workspace root) records
//! known findings that are sanctioned pending staged burn-down, one per
//! line with a mandatory justification:
//!
//! ```text
//! # comment
//! determinism-taint crates/x/src/lib.rs:42 -- legacy flow, tracked in ROADMAP
//! ```
//!
//! The ratchet: `dcc lint --baseline <file>` fails when a finding is
//! **not** in the baseline (no new debt), *and* when a baseline entry
//! no longer fires (the debt was paid — the entry must be deleted so
//! the ratchet can never loosen). `--update-baseline` regenerates the
//! file from current findings, preserving justifications for entries
//! that still fire.

use crate::Finding;
use std::fmt::Write as _;

/// One baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule id of the baselined finding.
    pub rule: String,
    /// Workspace-relative path of the baselined finding.
    pub path: String,
    /// 1-based line of the baselined finding.
    pub line: u32,
    /// Mandatory justification.
    pub justification: String,
    /// 1-based line in the baseline file (for stale reporting).
    pub file_line: u32,
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// Workspace-relative path of the baseline file itself.
    pub path: String,
}

/// Result of applying the ratchet to a finding list.
#[derive(Debug)]
pub struct Outcome {
    /// Findings not in the baseline — new debt; these fail the run.
    pub fresh: Vec<Finding>,
    /// Baselined findings with their justifications (suppressed in
    /// text/exit-code terms, still visible in SARIF).
    pub suppressed: Vec<(Finding, String)>,
    /// Baseline entries that no longer fire — these also fail the run.
    pub stale: Vec<Entry>,
}

impl Outcome {
    /// Whether the ratchet passes: nothing fresh, nothing stale.
    pub fn clean(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Parses baseline `source` read from `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(path: &str, source: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in source.lines().enumerate() {
            let file_line = u32::try_from(i + 1).unwrap_or(u32::MAX);
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let Some((head, justification)) = text.split_once(" -- ") else {
                return Err(format!(
                    "{path}:{file_line}: missing mandatory ` -- <justification>` on baseline entry"
                ));
            };
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!(
                    "{path}:{file_line}: empty justification on baseline entry"
                ));
            }
            let mut parts = head.split_whitespace();
            let (Some(rule), Some(loc), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "{path}:{file_line}: baseline entries are `<rule> <path>:<line> -- <justification>`"
                ));
            };
            let Some((fpath, line)) = loc.rsplit_once(':') else {
                return Err(format!(
                    "{path}:{file_line}: baseline location must be `<path>:<line>`"
                ));
            };
            let Ok(line) = line.parse::<u32>() else {
                return Err(format!(
                    "{path}:{file_line}: baseline line number {line:?} is not a number"
                ));
            };
            entries.push(Entry {
                rule: rule.to_string(),
                path: fpath.to_string(),
                line,
                justification: justification.to_string(),
                file_line,
            });
        }
        Ok(Baseline {
            entries,
            path: path.to_string(),
        })
    }

    /// Applies the ratchet: splits `findings` into fresh vs. baselined
    /// and reports entries that no longer fire. Matching is exact on
    /// (rule, path, line); each entry absorbs at most one finding.
    pub fn apply(&self, findings: Vec<Finding>) -> Outcome {
        let mut used = vec![false; self.entries.len()];
        let mut fresh = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let slot = self.entries.iter().enumerate().find(|(i, e)| {
                !used[*i] && e.rule == f.rule && e.path == f.path && e.line == f.line
            });
            match slot {
                Some((i, e)) => {
                    used[i] = true;
                    suppressed.push((f, e.justification.clone()));
                }
                None => fresh.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect();
        Outcome {
            fresh,
            suppressed,
            stale,
        }
    }
}

/// Renders a baseline file from current findings, preserving the
/// justification of any entry in `previous` that still matches and
/// stamping `TODO: justify or fix` on genuinely new entries.
pub fn render(findings: &[Finding], previous: &Baseline) -> String {
    let mut out = String::from(
        "# dcc-lint baseline — sanctioned findings pending burn-down.\n\
         # Format: <rule> <path>:<line> -- <justification>\n\
         # The ratchet fails on findings missing here AND on entries that no longer fire.\n",
    );
    for f in findings {
        let prev = previous
            .entries
            .iter()
            .find(|e| e.rule == f.rule && e.path == f.path && e.line == f.line);
        let justification = prev
            .map(|e| e.justification.as_str())
            .unwrap_or("TODO: justify or fix");
        let _ = writeln!(out, "{} {}:{} -- {}", f.rule, f.path, f.line, justification);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding::new(rule, path, line, format!("{rule} at {path}:{line}"))
    }

    #[test]
    fn ratchet_passes_only_when_exactly_matched() {
        let b = Baseline::parse(
            "dcc-lint.baseline",
            "determinism-taint a.rs:4 -- legacy\nfloat-eq b.rs:7 -- migrating\n",
        )
        .expect("parses");
        // Exact match on both: clean.
        let out = b.apply(vec![
            finding("determinism-taint", "a.rs", 4),
            finding("float-eq", "b.rs", 7),
        ]);
        assert!(out.clean());
        assert_eq!(out.suppressed.len(), 2);
        assert_eq!(out.suppressed[0].1, "legacy");
        // A new finding trips the ratchet.
        let out = b.apply(vec![
            finding("determinism-taint", "a.rs", 4),
            finding("float-eq", "b.rs", 7),
            finding("wall-clock", "c.rs", 1),
        ]);
        assert!(!out.clean());
        assert_eq!(out.fresh.len(), 1);
        assert_eq!(out.fresh[0].rule, "wall-clock");
        // A fixed finding makes its entry stale — also a failure.
        let out = b.apply(vec![finding("determinism-taint", "a.rs", 4)]);
        assert!(!out.clean());
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].rule, "float-eq");
        assert_eq!(out.stale[0].file_line, 2);
    }

    #[test]
    fn malformed_baselines_are_hard_errors() {
        for bad in [
            "determinism-taint a.rs:4",          // no justification
            "determinism-taint a.rs:4 -- ",      // empty justification
            "determinism-taint a.rs -- x",       // no line number
            "determinism-taint a.rs:four -- x",  // bad line number
            "determinism-taint -- x",            // no location
            "a b c:1 -- x",                      // too many fields
        ] {
            assert!(Baseline::parse("b", bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn update_preserves_justifications_and_stamps_new_entries() {
        let prev = Baseline::parse("b", "float-eq b.rs:7 -- migrating\n").expect("parses");
        let rendered = render(
            &[finding("float-eq", "b.rs", 7), finding("wall-clock", "c.rs", 1)],
            &prev,
        );
        assert!(rendered.contains("float-eq b.rs:7 -- migrating"));
        assert!(rendered.contains("wall-clock c.rs:1 -- TODO: justify or fix"));
        // Round-trip: the rendered file parses and is clean against the
        // same findings.
        let b = Baseline::parse("b", &rendered).expect("round-trips");
        assert!(b
            .apply(vec![finding("float-eq", "b.rs", 7), finding("wall-clock", "c.rs", 1)])
            .clean());
    }
}
