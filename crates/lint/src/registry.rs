//! `metric-registry`: cross-artifact drift detection between metric
//! names in code and the table in `docs/observability.md`.
//!
//! Three directions are checked:
//!
//! 1. every name passed to an emitting call
//!    (`.span`/`.span_at`/`.event`/`.add`/`.gauge`/`.observe`) in
//!    non-test code must appear in the doc table — both string
//!    literals and `names::SCREAMING_SNAKE` constant references, which
//!    are resolved through the registry module's const→value map;
//! 2. every `pub const … : &str = "…"` in the `dcc_obs::names` module
//!    must appear in the doc table;
//! 3. every name in the doc table must be defined in `names` or
//!    emitted somewhere — documentation cannot outlive the code.
//!
//! On any drift, in addition to the per-name findings, one aggregate
//! finding on the doc file prints the exact missing/extra rows on both
//! sides.

use crate::classify::TestRegions;
use crate::lexer::{Tok, TokKind};
use crate::Finding;
use std::collections::BTreeMap;

/// A metric name observed in code: either a registry constant or a
/// string literal at an emitting call site.
#[derive(Debug, Clone)]
pub struct CodeName {
    /// The metric/span name.
    pub name: String,
    /// File the name appears in.
    pub path: String,
    /// Line of the constant or call.
    pub line: u32,
    /// Whether this is a literal at a call site (direction 1) rather
    /// than a registry constant (direction 2).
    pub is_emission: bool,
}

/// Emitting `Metrics`/`Recorder` methods whose first argument names a
/// metric.
const EMITTERS: &[&str] = &["span", "span_at", "event", "add", "gauge", "observe"];

/// A `names::SCREAMING_SNAKE` constant referenced at an emitter call
/// site, resolved against the registry module after the walk.
#[derive(Debug, Clone)]
pub struct ConstRef {
    /// The constant's identifier (last path segment).
    pub const_name: String,
    /// File of the call site.
    pub path: String,
    /// Line of the call site.
    pub line: u32,
}

/// Whether an identifier looks like a constant reference
/// (`SCREAMING_SNAKE`: uppercase/digits/underscores, at least one
/// uppercase letter).
fn is_screaming(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Collects metric names at emitter call sites from one file's tokens:
/// string literals go straight to `out`; constant references go to
/// `const_refs` for resolution against the registry module.
pub fn collect_emissions(
    path: &str,
    tokens: &[Tok],
    test_regions: &TestRegions,
    out: &mut Vec<CodeName>,
    const_refs: &mut Vec<ConstRef>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !EMITTERS.contains(&t.text.as_str())
            || test_regions.contains(t.line)
        {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);
        if !(matches!(prev, Some(p) if p.text == ".")
            && matches!(next, Some(n) if n.text == "("))
        {
            continue;
        }
        if let Some(lit) = tokens.get(i + 2).filter(|a| a.kind == TokKind::Str) {
            if let Some(name) = unquote(&lit.text) {
                out.push(CodeName {
                    name,
                    path: path.to_string(),
                    line: t.line,
                    is_emission: true,
                });
            }
            continue;
        }
        // First argument as a `::`-separated identifier path ending in a
        // SCREAMING_SNAKE constant (e.g. `names::COUNTER_SERVE_EVENTS`).
        let mut j = i + 2;
        let mut last_ident: Option<&Tok> = None;
        while let Some(tok) = tokens.get(j) {
            match (tok.kind, tok.text.as_str()) {
                (TokKind::Ident, _) => last_ident = Some(tok),
                (_, "::") => {}
                (_, "," | ")") => break,
                _ => {
                    last_ident = None;
                    break;
                }
            }
            j += 1;
        }
        if let Some(c) = last_ident.filter(|c| is_screaming(&c.text)) {
            const_refs.push(ConstRef {
                const_name: c.text.clone(),
                path: path.to_string(),
                line: t.line,
            });
        }
    }
}

/// Builds the const→value map (`const NAME: &str = "…";`) from the
/// registry module's tokens.
pub fn const_map(tokens: &[Tok]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "const" {
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        if let Some(lit) = tokens[i..tokens.len().min(i + 8)]
            .iter()
            .find(|t| t.kind == TokKind::Str)
        {
            if let Some(value) = unquote(&lit.text) {
                out.entry(name.text.clone()).or_insert(value);
            }
        }
    }
    out
}

/// Resolves collected constant references through the registry map:
/// resolved refs become emission [`CodeName`]s; unresolved refs are
/// `metric-registry` findings (an emitter is using a constant the
/// registry does not define).
pub fn resolve_const_refs(
    refs: &[ConstRef],
    map: &BTreeMap<String, String>,
    out: &mut Vec<CodeName>,
    findings: &mut Vec<Finding>,
) {
    for r in refs {
        match map.get(&r.const_name) {
            Some(value) => out.push(CodeName {
                name: value.clone(),
                path: r.path.clone(),
                line: r.line,
                is_emission: true,
            }),
            None => findings.push(Finding::new(
                "metric-registry",
                &r.path,
                r.line,
                format!(
                    "emitter call references constant `{}` that the metric registry does not define",
                    r.const_name
                ),
            )),
        }
    }
}

/// Collects `pub const NAME: &str = "…";` definitions inside
/// `pub mod names { … }` from the registry module's tokens.
pub fn collect_registry_consts(path: &str, tokens: &[Tok], out: &mut Vec<CodeName>) {
    // Locate `mod names {` and its matching close brace.
    let mut start = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "mod" && matches!(tokens.get(i + 1), Some(n) if n.text == "names") {
            start = Some(i);
            break;
        }
    }
    let Some(start) = start else { return };
    let mut depth = 0usize;
    let mut i = start;
    let mut end = tokens.len();
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let mut j = start;
    while j < end {
        if tokens[j].text == "const" {
            // const NAME : & str = "value" ;
            let lit = tokens[j..end.min(j + 8)]
                .iter()
                .find(|t| t.kind == TokKind::Str);
            if let Some(lit) = lit {
                if let Some(name) = unquote(&lit.text) {
                    out.push(CodeName {
                        name,
                        path: path.to_string(),
                        line: tokens[j].line,
                        is_emission: false,
                    });
                }
            }
        }
        j += 1;
    }
}

/// Strips the quotes off a lexed string literal (`"x"` / `r"x"` …).
fn unquote(text: &str) -> Option<String> {
    let open = text.find('"')?;
    let close = text.rfind('"')?;
    if close > open {
        Some(text[open + 1..close].to_string())
    } else {
        None
    }
}

/// Names documented in the registry table: name → first doc line.
pub fn doc_names(doc: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(cells) = trimmed.strip_prefix('|') else {
            continue;
        };
        let Some(first) = cells.split('|').next() else {
            continue;
        };
        let first = first.trim();
        // Only rows whose first cell is exactly one backticked name are
        // registry rows; header, separator, and prose tables fall out.
        if first.len() >= 3 && first.starts_with('`') && first.ends_with('`') {
            let name = &first[1..first.len() - 1];
            if !name.is_empty() && !name.contains('`') {
                #[allow(clippy::cast_possible_truncation)]
                out.entry(name.to_string()).or_insert(i as u32 + 1);
            }
        }
    }
    out
}

/// Runs the three cross-checks.
pub fn cross_check(
    code_names: &[CodeName],
    doc: &BTreeMap<String, u32>,
    doc_path: &str,
    findings: &mut Vec<Finding>,
) {
    for cn in code_names {
        if !doc.contains_key(&cn.name) {
            let what = if cn.is_emission {
                "emitted"
            } else {
                "registered in dcc_obs::names"
            };
            findings.push(Finding::new(
                "metric-registry",
                &cn.path,
                cn.line,
                format!("metric name \"{}\" is {what} but not documented in {doc_path}", cn.name),
            ));
        }
    }
    for (name, line) in doc {
        if !code_names.iter().any(|cn| &cn.name == name) {
            findings.push(Finding::new(
                "metric-registry",
                doc_path,
                *line,
                format!("documented metric name \"{name}\" is neither registered nor emitted"),
            ));
        }
    }

    // Aggregate drift summary: the exact rows missing/extra on both
    // sides, in one message.
    let mut missing: Vec<&str> = code_names
        .iter()
        .filter(|cn| !doc.contains_key(&cn.name))
        .map(|cn| cn.name.as_str())
        .collect();
    missing.sort_unstable();
    missing.dedup();
    let stale: Vec<&str> = doc
        .keys()
        .filter(|name| !code_names.iter().any(|cn| &&cn.name == name))
        .map(String::as_str)
        .collect();
    if !missing.is_empty() || !stale.is_empty() {
        let fmt = |rows: &[&str]| {
            if rows.is_empty() {
                "none".to_string()
            } else {
                rows.join(", ")
            }
        };
        findings.push(Finding::new(
            "metric-registry",
            doc_path,
            1,
            format!(
                "registry drift — in code but missing from {doc_path}: {}; in {doc_path} but not in code: {}",
                fmt(&missing),
                fmt(&stale)
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::test_regions;
    use crate::lexer::lex;

    #[test]
    fn emissions_are_collected_outside_tests_only() {
        let src = "\
fn f(m: &Metrics) { m.add(\"a.b\", 1); m.gauge(\"c.d\", 2.0); m.add(var, 1); }
#[cfg(test)]
mod tests { fn t(m: &Metrics) { m.add(\"t.t\", 1); } }
";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let mut out = Vec::new();
        let mut refs = Vec::new();
        collect_emissions("f.rs", &lexed.tokens, &regions, &mut out, &mut refs);
        let names: Vec<_> = out.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a.b", "c.d"]);
        // `var` is lowercase: not a const ref, silently skipped.
        assert!(refs.is_empty());
    }

    #[test]
    fn const_refs_are_collected_and_resolved() {
        let src = "\
fn f(m: &Metrics) {
    m.add(names::COUNTER_X, 1);
    m.gauge(obs::names::GAUGE_Y, 2.0);
    m.add(UNDEFINED_Z, 1);
}
";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let mut out = Vec::new();
        let mut refs = Vec::new();
        collect_emissions("f.rs", &lexed.tokens, &regions, &mut out, &mut refs);
        assert!(out.is_empty());
        let got: Vec<_> = refs.iter().map(|r| r.const_name.as_str()).collect();
        assert_eq!(got, ["COUNTER_X", "GAUGE_Y", "UNDEFINED_Z"]);

        let reg = lex("pub mod names { pub const COUNTER_X: &str = \"x.count\"; pub const GAUGE_Y: &str = \"y.gauge\"; }");
        let map = const_map(&reg.tokens);
        assert_eq!(map.get("COUNTER_X").map(String::as_str), Some("x.count"));

        let mut findings = Vec::new();
        resolve_const_refs(&refs, &map, &mut out, &mut findings);
        let names: Vec<_> = out.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["x.count", "y.gauge"]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("UNDEFINED_Z"), "{}", findings[0].message);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn registry_consts_are_collected() {
        let src = "\
pub mod names {
    pub const A: &str = \"x.y\";
    /// doc
    pub const B: &str = \"z.w\";
}
pub const OUTSIDE: &str = \"no\";
";
        let lexed = lex(src);
        let mut out = Vec::new();
        collect_registry_consts("lib.rs", &lexed.tokens, &mut out);
        let names: Vec<_> = out.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["x.y", "z.w"]);
    }

    #[test]
    fn doc_table_parsing_skips_headers_and_prose() {
        let doc = "\
| name | kind |
|---|---|
| `a.b` | counter |
| `c.d` | gauge |

| engine | plain cell |
";
        let names = doc_names(doc);
        assert_eq!(names.len(), 2);
        assert_eq!(names.get("a.b"), Some(&3));
    }

    #[test]
    fn cross_check_reports_all_three_directions() {
        let code = vec![
            CodeName { name: "in.doc".into(), path: "a.rs".into(), line: 1, is_emission: true },
            CodeName { name: "not.in.doc".into(), path: "a.rs".into(), line: 2, is_emission: true },
        ];
        let mut doc = BTreeMap::new();
        doc.insert("in.doc".to_string(), 3u32);
        doc.insert("orphan".to_string(), 4u32);
        let mut findings = Vec::new();
        cross_check(&code, &doc, "docs/observability.md", &mut findings);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().any(|f| f.message.contains("not.in.doc")));
        assert!(findings.iter().any(|f| f.message.contains("orphan")));
        // The aggregate summary prints exact rows on both sides.
        let summary = findings
            .iter()
            .find(|f| f.message.contains("registry drift"))
            .expect("drift summary present");
        assert_eq!(summary.line, 1);
        assert!(
            summary.message.contains("missing from docs/observability.md: not.in.doc"),
            "{}",
            summary.message
        );
        assert!(
            summary.message.contains("not in code: orphan"),
            "{}",
            summary.message
        );
    }

    #[test]
    fn clean_cross_check_has_no_drift_summary() {
        let code = vec![CodeName {
            name: "in.doc".into(),
            path: "a.rs".into(),
            line: 1,
            is_emission: true,
        }];
        let mut doc = BTreeMap::new();
        doc.insert("in.doc".to_string(), 3u32);
        let mut findings = Vec::new();
        cross_check(&code, &doc, "docs/observability.md", &mut findings);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
