//! `metric-registry`: cross-artifact drift detection between metric
//! names in code and the table in `docs/observability.md`.
//!
//! Three directions are checked:
//!
//! 1. every string literal passed to an emitting call
//!    (`.span`/`.span_at`/`.event`/`.add`/`.gauge`/`.observe`) in
//!    non-test code must appear in the doc table;
//! 2. every `pub const … : &str = "…"` in the `dcc_obs::names` module
//!    must appear in the doc table;
//! 3. every name in the doc table must be defined in `names` or
//!    emitted somewhere — documentation cannot outlive the code.

use crate::classify::TestRegions;
use crate::lexer::{Tok, TokKind};
use crate::Finding;
use std::collections::BTreeMap;

/// A metric name observed in code: either a registry constant or a
/// string literal at an emitting call site.
#[derive(Debug, Clone)]
pub struct CodeName {
    /// The metric/span name.
    pub name: String,
    /// File the name appears in.
    pub path: String,
    /// Line of the constant or call.
    pub line: u32,
    /// Whether this is a literal at a call site (direction 1) rather
    /// than a registry constant (direction 2).
    pub is_emission: bool,
}

/// Emitting `Metrics`/`Recorder` methods whose first argument names a
/// metric.
const EMITTERS: &[&str] = &["span", "span_at", "event", "add", "gauge", "observe"];

/// Collects emission literals from one file's tokens.
pub fn collect_emissions(
    path: &str,
    tokens: &[Tok],
    test_regions: &TestRegions,
    out: &mut Vec<CodeName>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !EMITTERS.contains(&t.text.as_str())
            || test_regions.contains(t.line)
        {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);
        let arg = tokens.get(i + 2);
        if matches!(prev, Some(p) if p.text == ".")
            && matches!(next, Some(n) if n.text == "(")
        {
            if let Some(lit) = arg.filter(|a| a.kind == TokKind::Str) {
                if let Some(name) = unquote(&lit.text) {
                    out.push(CodeName {
                        name,
                        path: path.to_string(),
                        line: t.line,
                        is_emission: true,
                    });
                }
            }
        }
    }
}

/// Collects `pub const NAME: &str = "…";` definitions inside
/// `pub mod names { … }` from the registry module's tokens.
pub fn collect_registry_consts(path: &str, tokens: &[Tok], out: &mut Vec<CodeName>) {
    // Locate `mod names {` and its matching close brace.
    let mut start = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "mod" && matches!(tokens.get(i + 1), Some(n) if n.text == "names") {
            start = Some(i);
            break;
        }
    }
    let Some(start) = start else { return };
    let mut depth = 0usize;
    let mut i = start;
    let mut end = tokens.len();
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let mut j = start;
    while j < end {
        if tokens[j].text == "const" {
            // const NAME : & str = "value" ;
            let lit = tokens[j..end.min(j + 8)]
                .iter()
                .find(|t| t.kind == TokKind::Str);
            if let Some(lit) = lit {
                if let Some(name) = unquote(&lit.text) {
                    out.push(CodeName {
                        name,
                        path: path.to_string(),
                        line: tokens[j].line,
                        is_emission: false,
                    });
                }
            }
        }
        j += 1;
    }
}

/// Strips the quotes off a lexed string literal (`"x"` / `r"x"` …).
fn unquote(text: &str) -> Option<String> {
    let open = text.find('"')?;
    let close = text.rfind('"')?;
    if close > open {
        Some(text[open + 1..close].to_string())
    } else {
        None
    }
}

/// Names documented in the registry table: name → first doc line.
pub fn doc_names(doc: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(cells) = trimmed.strip_prefix('|') else {
            continue;
        };
        let Some(first) = cells.split('|').next() else {
            continue;
        };
        let first = first.trim();
        // Only rows whose first cell is exactly one backticked name are
        // registry rows; header, separator, and prose tables fall out.
        if first.len() >= 3 && first.starts_with('`') && first.ends_with('`') {
            let name = &first[1..first.len() - 1];
            if !name.is_empty() && !name.contains('`') {
                #[allow(clippy::cast_possible_truncation)]
                out.entry(name.to_string()).or_insert(i as u32 + 1);
            }
        }
    }
    out
}

/// Runs the three cross-checks.
pub fn cross_check(
    code_names: &[CodeName],
    doc: &BTreeMap<String, u32>,
    doc_path: &str,
    findings: &mut Vec<Finding>,
) {
    for cn in code_names {
        if !doc.contains_key(&cn.name) {
            let what = if cn.is_emission {
                "emitted"
            } else {
                "registered in dcc_obs::names"
            };
            findings.push(Finding::new(
                "metric-registry",
                &cn.path,
                cn.line,
                format!("metric name \"{}\" is {what} but not documented in {doc_path}", cn.name),
            ));
        }
    }
    for (name, line) in doc {
        if !code_names.iter().any(|cn| &cn.name == name) {
            findings.push(Finding::new(
                "metric-registry",
                doc_path,
                *line,
                format!("documented metric name \"{name}\" is neither registered nor emitted"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::test_regions;
    use crate::lexer::lex;

    #[test]
    fn emissions_are_collected_outside_tests_only() {
        let src = "\
fn f(m: &Metrics) { m.add(\"a.b\", 1); m.gauge(\"c.d\", 2.0); m.add(var, 1); }
#[cfg(test)]
mod tests { fn t(m: &Metrics) { m.add(\"t.t\", 1); } }
";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let mut out = Vec::new();
        collect_emissions("f.rs", &lexed.tokens, &regions, &mut out);
        let names: Vec<_> = out.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a.b", "c.d"]);
    }

    #[test]
    fn registry_consts_are_collected() {
        let src = "\
pub mod names {
    pub const A: &str = \"x.y\";
    /// doc
    pub const B: &str = \"z.w\";
}
pub const OUTSIDE: &str = \"no\";
";
        let lexed = lex(src);
        let mut out = Vec::new();
        collect_registry_consts("lib.rs", &lexed.tokens, &mut out);
        let names: Vec<_> = out.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["x.y", "z.w"]);
    }

    #[test]
    fn doc_table_parsing_skips_headers_and_prose() {
        let doc = "\
| name | kind |
|---|---|
| `a.b` | counter |
| `c.d` | gauge |

| engine | plain cell |
";
        let names = doc_names(doc);
        assert_eq!(names.len(), 2);
        assert_eq!(names.get("a.b"), Some(&3));
    }

    #[test]
    fn cross_check_reports_all_three_directions() {
        let code = vec![
            CodeName { name: "in.doc".into(), path: "a.rs".into(), line: 1, is_emission: true },
            CodeName { name: "not.in.doc".into(), path: "a.rs".into(), line: 2, is_emission: true },
        ];
        let mut doc = BTreeMap::new();
        doc.insert("in.doc".to_string(), 3u32);
        doc.insert("orphan".to_string(), 4u32);
        let mut findings = Vec::new();
        cross_check(&code, &doc, "docs/observability.md", &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.message.contains("not.in.doc")));
        assert!(findings.iter().any(|f| f.message.contains("orphan")));
    }
}
