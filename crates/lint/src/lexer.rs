//! A minimal Rust lexer: just enough structure for line-accurate rule
//! matching — comments, string/char literals, numbers (with the
//! int/float distinction), identifiers, and multi-character operators.
//!
//! The goal is *not* to parse Rust. The rules only need a token stream
//! in which string literals and comments can never be mistaken for
//! code, float literals are distinguishable from integers and tuple
//! indices, and `{`/`}` can be brace-matched safely.

/// The coarse class of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw `r#ident`).
    Ident,
    /// An integer literal (decimal, hex, octal, binary).
    Int,
    /// A float literal (`1.0`, `1.`, `1e3`, `1_000.5f64`).
    Float,
    /// A string literal (normal, raw, or byte), quotes included.
    Str,
    /// A char or byte-char literal.
    Char,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// Any punctuation / operator (`==`, `.`, `::`, `{`, …).
    Punct,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (for `Str`, includes the quotes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment, kept out of the token stream but retained for
/// suppression parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether a significant token precedes the comment on its line
    /// (a trailing comment applies to its own line; a standalone
    /// comment applies to the next line).
    pub trailing: bool,
}

/// Lexer output: significant tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unknown bytes are skipped (the analyzer only runs
/// over files rustc already accepted, so error recovery is moot).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        last_sig_line: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    last_sig_line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'b' if self.peek(1) == Some(b'"') => self.string(self.pos + 1),
                b'b' if self.peek(1) == Some(b'\'') => self.char_lit(self.pos + 1),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.tokens.push(Tok {
            kind,
            text,
            line: self.line,
        });
        self.last_sig_line = self.line;
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let line = self.line;
        let trailing = self.last_sig_line == line;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_sig_line == line;
        let start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        let mut end = self.bytes.len();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => self.line += 1,
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 1;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        end = self.pos - 1;
                        self.pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let end = end.min(self.bytes.len());
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..end.max(start)]).into_owned(),
            line,
            trailing,
        });
    }

    /// Lexes a `"…"` literal whose opening quote is at `quote`.
    fn string(&mut self, quote: usize) {
        let start = self.pos;
        self.pos = quote + 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, start);
    }

    /// Whether `r"`, `r#…#"`, `br"`, or `br#…#"` starts at `pos`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = self.pos + 1;
        if self.bytes[self.pos] == b'b' {
            if self.peek(1) != Some(b'r') {
                return false;
            }
            i += 1;
        }
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn raw_string(&mut self) {
        let start = self.pos;
        self.pos += 1; // r
        if self.bytes.get(self.pos) == Some(&b'r') {
            self.pos += 1; // the r of br
        }
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            if self.bytes[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        self.push(TokKind::Str, start);
    }

    /// Lexes a char literal whose opening `'` is at `quote`.
    fn char_lit(&mut self, quote: usize) {
        let start = self.pos;
        self.pos = quote + 1;
        if self.bytes.get(self.pos) == Some(&b'\\') {
            self.pos += 2;
        } else {
            self.pos += 1;
        }
        // Multi-byte chars: advance to the closing quote.
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
            self.pos += 1;
        }
        // An unterminated literal at end of input has no closing quote.
        self.pos = (self.pos + 1).min(self.bytes.len());
        self.push(TokKind::Char, start);
    }

    fn char_or_lifetime(&mut self) {
        // `'a` / `'static` (lifetime) vs `'x'` / `'\n'` (char).
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic())
            && after != Some(b'\'');
        if is_lifetime {
            let start = self.pos;
            self.pos += 1;
            while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
            self.push(TokKind::Lifetime, start);
        } else {
            self.char_lit(self.pos);
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            self.push(TokKind::Int, start);
            return;
        }
        let mut is_float = false;
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
        // Fraction: a `.` NOT followed by a second `.` (range) or an
        // identifier start (method call / tuple access chain).
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            let starts_ident =
                matches!(after, Some(c) if c == b'_' || c.is_ascii_alphabetic());
            if after != Some(b'.') && !starts_ident {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let exp = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some(b'+' | b'-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if exp {
                is_float = true;
                self.pos += 2;
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            }
        }
        // Suffix (`f64` marks a float even without `.`).
        let suffix_start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        let suffix = &self.bytes[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
        self.push(if is_float { TokKind::Float } else { TokKind::Int }, start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        // Raw identifier `r#name`.
        if self.bytes[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start);
    }

    fn punct(&mut self) {
        let start = self.pos;
        let rest = &self.bytes[self.pos..];
        let three = [b"..=", b"<<=", b">>="];
        let two: [&[u8; 2]; 15] = [
            b"==", b"!=", b"<=", b">=", b"&&", b"||", b"::", b"->", b"=>", b"..", b"+=", b"-=",
            b"*=", b"/=", b"%=",
        ];
        if three.iter().any(|op| rest.starts_with(*op)) {
            self.pos += 3;
        } else if two.iter().any(|op| rest.starts_with(*op)) {
            self.pos += 2;
        } else {
            self.pos += 1;
        }
        self.push(TokKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn unterminated_char_literal_at_eof_does_not_panic() {
        for src in ["'", "'x", "'\\", "b'", "let c = '"] {
            let toks = lex(src).tokens;
            assert!(!toks.is_empty(), "{src:?} should still produce tokens");
        }
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = kinds("1.0 1. 1e3 1_000.5f64 2f32 7 0x1f 0..n x.0 1..=3");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "1.", "1e3", "1_000.5f64", "2f32"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["7", "0x1f", "0", "0", "1", "3"]);
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lexed = lex("let s = \"a == 1.0 .unwrap()\"; // trailing == note\n/* block\n1.0 */ x");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Float));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("x"));
        assert_eq!(lexed.tokens.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let toks = kinds("r#\"1.0 == 2.0\"# 'a' '\\n' &'static str b\"x\"");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Char);
        assert_eq!(toks[2].0, TokKind::Char);
        assert_eq!(toks[4].0, TokKind::Lifetime);
        assert_eq!(toks[6].0, TokKind::Str);
    }

    #[test]
    fn operators_are_grouped() {
        let toks = kinds("a == b != c..=d");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "..="]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
