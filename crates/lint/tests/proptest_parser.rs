//! Properties of the item-level parser against the lexer:
//!
//! 1. **Round-trip** — re-rendering a token stream (space-joined token
//!    texts) and re-lexing yields the same token texts and the same
//!    parsed fn skeleton; the parser depends only on the token stream,
//!    not on whitespace or comments.
//! 2. **Structure recovery** — generated programs with a known shape
//!    (free fns, impl methods, nested modules) parse to exactly the
//!    expected qualified names and calls.
//! 3. **Adversarial payloads** — `fn`/`#[test]`/`mod tests` text hidden
//!    inside raw strings, nested block comments, normal strings, and
//!    line comments must never panic the parser, never produce phantom
//!    fn items, and never shift test-region classification.
//! 4. **Totality** — arbitrary character soup (including `r#`
//!    fragments, stray quotes, unbalanced braces) never panics the
//!    lexer→parser→taint pipeline.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_lint::classify::test_regions;
use dcc_lint::lexer::lex;
use dcc_lint::parse::parse_file;
use proptest::prelude::*;

const FN_NAMES: [&str; 4] = ["alpha_f", "beta_g", "gamma_h", "delta_k"];
const CALLEES: [&str; 4] = ["now_us", "fnv_fold", "helper", "save_checkpoint"];

/// Characters safe inside every container (raw string, block comment,
/// normal string, line comment): no quotes, no `/*`-formers, no `#`.
const PAYLOAD_ALPHABET: [char; 46] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
    's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9',
    '_', ' ', ':', ';', '(', ')', '{', '}', ',', '=',
];

const IDENT_ALPHABET: [char; 28] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
    's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '_', '0',
];

/// Full punctuation soup, including quote/comment/raw-string formers.
const SOUP_ALPHABET: [char; 40] = [
    'a', 'f', 'n', 'r', 'x', '0', '9', '_', ' ', '\t', '\n', ':', ';', '(', ')', '{', '}', '[',
    ']', '<', '>', '#', '!', '"', '\'', '/', '*', '.', ',', '=', '&', '|', '-', '+', '%', '^',
    '@', '?', '$', '~',
];

const RAW_BODY_ALPHABET: [char; 8] = ['a', 'b', ' ', '"', 'z', '0', '_', '.'];

/// Builds a program from (fn index, callee index, as_method) triples and
/// returns the expected (qual, callee) list. Duplicate names are fine —
/// the parser records every item.
fn build(entries: &[(usize, usize, bool)]) -> (String, Vec<(String, String)>) {
    let mut src = String::new();
    let mut expected = Vec::new();
    for &(f, c, method) in entries {
        let name = FN_NAMES[f % FN_NAMES.len()];
        let callee = CALLEES[c % CALLEES.len()];
        if method {
            src.push_str(&format!(
                "impl Widget {{ pub fn {name}(&self) {{ {callee}(); }} }}\n"
            ));
            expected.push((format!("Widget::{name}"), callee.to_string()));
        } else {
            src.push_str(&format!("pub fn {name}() {{ {callee}(); }}\n"));
            expected.push((name.to_string(), callee.to_string()));
        }
    }
    (src, expected)
}

proptest! {
    #[test]
    fn generated_programs_parse_to_expected_structure(
        entries in proptest::collection::vec((0usize..4, 0usize..4, any::<bool>()), 0..10)
    ) {
        let (src, expected) = build(&entries);
        let parsed = parse_file("crates/gen/src/lib.rs", &lex(&src).tokens);
        let got: Vec<(String, String)> = parsed
            .fns
            .iter()
            .map(|f| {
                let callee = f.calls.first().map(|c| c.name.clone()).unwrap_or_default();
                (f.qual.clone(), callee)
            })
            .collect();
        prop_assert_eq!(got, expected, "source:\n{}", src);
    }

    #[test]
    fn token_streams_round_trip_through_rendering(
        entries in proptest::collection::vec((0usize..4, 0usize..4, any::<bool>()), 0..10)
    ) {
        let (src, _) = build(&entries);
        let original = lex(&src).tokens;
        // Re-render as space-joined token texts (drops comments and all
        // layout) and re-lex: the token texts must survive unchanged…
        let rendered: String = original
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let relexed = lex(&rendered).tokens;
        let a: Vec<&str> = original.iter().map(|t| t.text.as_str()).collect();
        let b: Vec<&str> = relexed.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(a, b, "rendered:\n{}", rendered);
        // …and so must the parsed fn skeleton.
        let p1 = parse_file("crates/gen/src/lib.rs", &original);
        let p2 = parse_file("crates/gen/src/lib.rs", &relexed);
        let q1: Vec<&str> = p1.fns.iter().map(|f| f.qual.as_str()).collect();
        let q2: Vec<&str> = p2.fns.iter().map(|f| f.qual.as_str()).collect();
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn hidden_payloads_produce_no_phantom_items(
        payload_idx in proptest::collection::vec(0usize..PAYLOAD_ALPHABET.len(), 0..40),
        container in 0usize..4
    ) {
        let payload: String = payload_idx.iter().map(|&i| PAYLOAD_ALPHABET[i]).collect();
        // The payload claims to declare fns and test regions, but lives
        // inside literal/comment containers the parser must not enter.
        let nasty = format!("fn fake_item() {{ Instant::now(); }} #[test] mod tests {{ {payload} }}");
        let embedded = match container {
            0 => format!("let _s = r#\"{nasty}\"#;"),
            1 => format!("/* outer /* {nasty} */ still comment */"),
            2 => format!("let _s = \"{nasty}\";"),
            _ => format!("// {nasty}"),
        };
        let src = format!(
            "pub fn real_one() {{\n    {embedded}\n    work();\n}}\npub fn real_two() {{}}\n"
        );
        let lexed = lex(&src);
        let parsed = parse_file("crates/gen/src/lib.rs", &lexed.tokens);
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        prop_assert_eq!(names, vec!["real_one", "real_two"], "source:\n{}", src);
        // No phantom calls out of the payload either.
        prop_assert!(
            parsed.fns[0].calls.iter().all(|c| c.name == "work"),
            "calls: {:#?}\nsource:\n{}",
            parsed.fns[0].calls,
            src
        );
        // And the real fns are not classified as test code.
        let regions = test_regions(&lexed.tokens);
        for f in &parsed.fns {
            prop_assert!(!regions.contains(f.line), "fn at {} misclassified", f.line);
        }
    }

    #[test]
    fn r_hash_idents_lex_as_idents_not_raw_strings(
        name_idx in proptest::collection::vec(0usize..IDENT_ALPHABET.len(), 1..10)
    ) {
        let name: String = name_idx.iter().map(|&i| IDENT_ALPHABET[i]).collect();
        // `r#match` is a raw identifier, not the start of `r#"…"`.
        let src = format!("pub fn r#{name}() {{ r#{name}(); }}\n");
        let parsed = parse_file("crates/gen/src/lib.rs", &lex(&src).tokens);
        prop_assert_eq!(parsed.fns.len(), 1, "source:\n{}", src);
        prop_assert!(parsed.fns[0].name.ends_with(name.as_str()));
    }

    #[test]
    fn arbitrary_soup_never_panics(
        soup_idx in proptest::collection::vec(0usize..SOUP_ALPHABET.len(), 0..200)
    ) {
        let src: String = soup_idx.iter().map(|&i| SOUP_ALPHABET[i]).collect();
        // Totality: lexer, test-region classifier, parser, and the
        // single-file taint pipeline must accept anything.
        let lexed = lex(&src);
        let regions = test_regions(&lexed.tokens);
        let parsed = parse_file("crates/soup/src/lib.rs", &lexed.tokens);
        let unit = dcc_lint::taint::Unit {
            parsed: &parsed,
            tokens: &lexed.tokens,
            test_regions: &regions,
        };
        let mut policy = dcc_lint::policy::Policy::default();
        let _ = dcc_lint::taint::analyze(std::slice::from_ref(&unit), &mut policy);
    }

    #[test]
    fn raw_string_edges_never_panic(
        hashes in 0usize..3,
        body_idx in proptest::collection::vec(0usize..RAW_BODY_ALPHABET.len(), 0..20)
    ) {
        let body: String = body_idx.iter().map(|&i| RAW_BODY_ALPHABET[i]).collect();
        let h = "#".repeat(hashes);
        let src = format!("pub fn f() {{ let _s = r{h}\"{body}\"{h}; g(); }}\n");
        let parsed = parse_file("crates/gen/src/lib.rs", &lex(&src).tokens);
        // The fn must still be found; whether g() survives depends on
        // quote/hash collisions in the body, which may legitimately
        // extend the literal.
        prop_assert!(!parsed.fns.is_empty());
    }
}
