//! Ratchet semantics over the committed `fixtures/ratchet/` workspace:
//! two known taint findings checked against three baseline variants.
//! `baseline-ok` covers both (clean), `baseline-short` misses one (a
//! fresh finding trips the ratchet), `baseline-stale` carries a ghost
//! entry (a stale entry trips the ratchet even with full coverage).
//! CI runs the same three cases through the CLI as its trip-proof.

// Test helpers outside `#[test]` fns miss clippy.toml's in-tests exemption.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_lint::baseline::Baseline;
use dcc_lint::{run, Config, Finding};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ratchet")
}

fn fixture_findings() -> Vec<Finding> {
    let report = run(&Config::workspace(fixture_root())).expect("ratchet fixture lints");
    let got: Vec<(&str, u32)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        [("determinism-taint", 13), ("determinism-taint", 23)],
        "fixture must produce exactly its two seeded findings: {:#?}",
        report.findings
    );
    report.findings
}

fn baseline(name: &str) -> Baseline {
    let src =
        std::fs::read_to_string(fixture_root().join(name)).expect("baseline variant reads");
    Baseline::parse(name, &src).expect("baseline variant parses")
}

#[test]
fn full_baseline_is_clean() {
    let out = baseline("baseline-ok").apply(fixture_findings());
    assert!(out.clean(), "fresh={:#?} stale={:#?}", out.fresh, out.stale);
    assert_eq!(out.suppressed.len(), 2);
    // Justifications ride along for SARIF suppression records.
    assert!(out.suppressed[0].1.contains("legacy digest stamp"));
}

#[test]
fn missing_entry_trips_on_the_fresh_finding() {
    let out = baseline("baseline-short").apply(fixture_findings());
    assert!(!out.clean());
    assert_eq!(out.fresh.len(), 1, "{:#?}", out.fresh);
    assert_eq!(out.fresh[0].line, 23);
    assert_eq!(out.suppressed.len(), 1);
    assert!(out.stale.is_empty());
}

#[test]
fn ghost_entry_trips_as_stale() {
    let out = baseline("baseline-stale").apply(fixture_findings());
    assert!(!out.clean());
    assert!(out.fresh.is_empty(), "{:#?}", out.fresh);
    assert_eq!(out.suppressed.len(), 2);
    assert_eq!(out.stale.len(), 1);
    assert_eq!(out.stale[0].line, 99);
}
