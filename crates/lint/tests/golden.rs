//! Golden-snapshot tests over the seeded taint fixture workspace
//! (`fixtures/taint/`): three crates, two cross-crate nondeterminism
//! flows (wall-clock → FNV digest, env → checkpoint), one
//! policy-laundered flow that must stay silent. The committed
//! `dcc-lint/2` JSON and SARIF outputs are compared byte-for-byte —
//! any drift in message wording, trace construction, ordering, or
//! serialization shows up as a diff against `tests/golden/`.
//!
//! To regenerate after an intentional change:
//! `cargo run -p dcc-cli -- lint --root crates/lint/fixtures/taint --json`
//! (JSON on stderr, strip the `error: ` prefix and trailing newline)
//! and `… --sarif crates/lint/tests/golden/taint.sarif`.

// Test helpers outside `#[test]` fns miss clippy.toml's in-tests exemption.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_lint::{run, Config};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/taint")
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("golden {name} reads: {e}"))
}

#[test]
fn taint_fixture_matches_committed_json_golden() {
    let cfg = Config::workspace(fixture_root());
    assert!(cfg.policy.is_some(), "fixture policy must be picked up");
    let report = run(&cfg).expect("fixture lint runs");
    assert_eq!(report.to_json(), golden("taint.json"), "dcc-lint/2 JSON drifted");
}

#[test]
fn taint_fixture_matches_committed_sarif_golden() {
    let report = run(&Config::workspace(fixture_root())).expect("fixture lint runs");
    assert_eq!(report.to_sarif(), golden("taint.sarif"), "SARIF output drifted");
}

#[test]
fn fixture_findings_are_exactly_the_two_seeded_flows() {
    let report = run(&Config::workspace(fixture_root())).expect("fixture lint runs");
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        [
            ("determinism-taint", "crates/beta/src/digest.rs", 12),
            ("determinism-taint", "crates/gamma/src/persist.rs", 10),
        ],
        "{:#?}",
        report.findings
    );
    // The wall-clock flow carries the full 4-step cross-crate trace.
    assert_eq!(report.findings[0].trace.len(), 4);
    assert_eq!(report.findings[0].trace[0].path, "crates/alpha/src/time.rs");
}

/// Perturbation detection: adding a third flow to a copy of the fixture
/// must change both outputs and surface the new finding — the goldens
/// cannot pass by accident.
#[test]
fn perturbed_fixture_diverges_from_goldens() {
    let tmp = std::env::temp_dir().join("dcc-lint-golden-perturb");
    let _ = std::fs::remove_dir_all(&tmp);
    for rel in [
        "dcc-lint.policy",
        "crates/alpha/src/time.rs",
        "crates/beta/src/digest.rs",
        "crates/gamma/src/persist.rs",
    ] {
        let dst = tmp.join(rel);
        std::fs::create_dir_all(dst.parent().expect("parent")).expect("mkdir");
        std::fs::copy(fixture_root().join(rel), dst).expect("copy");
    }
    // New flow: a thread-id read laundered into the digest via a fresh fn.
    let beta = tmp.join("crates/beta/src/digest.rs");
    let mut src = std::fs::read_to_string(&beta).expect("beta reads");
    src.push_str(
        "\n/// Perturbation: a second wall-clock flow into the digest.\n\
         pub fn sneaky(seed: u64) -> u64 {\n    fnv_fold(seed, now_us())\n}\n",
    );
    std::fs::write(&beta, src).expect("beta writes");

    let report = run(&Config::workspace(&tmp)).expect("perturbed lint runs");
    assert_ne!(report.to_json(), golden("taint.json"));
    assert_ne!(report.to_sarif(), golden("taint.sarif"));
    assert_eq!(report.findings.len(), 3, "{:#?}", report.findings);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("`sneaky`") || f.message.contains("reaches `sneaky`")),
        "new flow must be attributed to `sneaky`: {:#?}",
        report.findings
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
