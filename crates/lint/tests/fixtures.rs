//! Fixture-driven end-to-end tests: one known violation per rule, a
//! clean fixture with zero findings, and the registry cross-check over
//! a fixture doc table.

// Test helpers outside `#[test]` fns miss clippy.toml's in-tests exemption.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_lint::{run, Config};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn one_violation(file: &str, rule: &str, line: u32) {
    let cfg = Config::explicit(fixture_root(), vec![PathBuf::from(file)]);
    let report = run(&cfg).expect("fixture lint runs");
    assert_eq!(
        report.findings.len(),
        1,
        "{file}: expected exactly one finding, got {:#?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!(f.rule, rule);
    assert_eq!(f.line, line);
    assert!(f.path.ends_with(file), "path {} should end with {file}", f.path);
}

#[test]
fn float_eq_fixture() {
    one_violation("violations/float_eq.rs", "float-eq", 4);
}

#[test]
fn unwrap_in_lib_fixture() {
    one_violation("violations/unwrap_in_lib.rs", "unwrap-in-lib", 4);
}

#[test]
fn nondet_iter_fixture() {
    one_violation("violations/nondet_iter.rs", "nondet-iter", 4);
}

#[test]
fn wall_clock_fixture() {
    one_violation("violations/wall_clock.rs", "wall-clock", 4);
}

#[test]
fn thread_sleep_fixture() {
    one_violation("violations/thread_sleep.rs", "wall-clock", 4);
}

#[test]
fn hot_loop_alloc_fixture() {
    let src = std::fs::read_to_string(fixture_root().join("violations/hot_loop_alloc.rs"))
        .expect("fixture reads");
    // The rule only applies inside the sanctioned struct-of-arrays
    // kernels, so the fixture is linted under that path…
    let findings = dcc_lint::lint_source("crates/core/src/soa.rs", &src);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "hot-loop-alloc");
    assert_eq!(findings[0].line, 7);
    // …and stays silent everywhere else.
    assert!(dcc_lint::lint_source("crates/x/src/lib.rs", &src).is_empty());
}

#[test]
fn metric_registry_fixture() {
    let cfg = Config {
        root: fixture_root().join("registry"),
        paths: Vec::new(),
        registry_module: None,
        registry_doc: Some(PathBuf::from("registry.md")),
        policy: None,
    };
    let report = run(&cfg).expect("registry fixture lint runs");
    // One per-name finding at the call site plus the aggregate drift
    // summary on the doc file.
    assert_eq!(
        report.findings.len(),
        2,
        "expected per-name finding + drift summary, got {:#?}",
        report.findings
    );
    let f = &report.findings[0];
    assert_eq!(f.rule, "metric-registry");
    assert_eq!(f.path, "emit.rs");
    assert_eq!(f.line, 6);
    assert!(f.message.contains("lint.fixture.undocumented"));
    let s = &report.findings[1];
    assert_eq!(s.path, "registry.md");
    assert!(s.message.contains("registry drift"), "{}", s.message);
    assert!(
        s.message.contains("missing from registry.md: lint.fixture.undocumented"),
        "{}",
        s.message
    );
    assert!(s.message.contains("not in code: none"), "{}", s.message);
}

#[test]
fn clean_fixture_has_zero_findings() {
    let cfg = Config {
        root: fixture_root().join("clean"),
        paths: Vec::new(),
        registry_module: None,
        registry_doc: None,
        policy: None,
    };
    let report = run(&cfg).expect("clean fixture lint runs");
    assert!(
        report.findings.is_empty(),
        "clean fixture must have zero findings, got {:#?}",
        report.findings
    );
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn violations_dir_walk_finds_every_rule_once() {
    let cfg = Config {
        root: fixture_root().join("violations"),
        paths: Vec::new(),
        registry_module: None,
        registry_doc: None,
        policy: None,
    };
    let report = run(&cfg).expect("violations walk runs");
    let mut rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        ["float-eq", "nondet-iter", "unwrap-in-lib", "wall-clock", "wall-clock"]
    );
}

#[test]
fn json_output_is_machine_readable() {
    let cfg = Config::explicit(
        fixture_root(),
        vec![PathBuf::from("violations/float_eq.rs")],
    );
    let report = run(&cfg).expect("fixture lint runs");
    let json = report.to_json();
    assert!(json.starts_with("{\"schema\":\"dcc-lint/2\""));
    assert!(json.contains("\"rule\":\"float-eq\""));
    assert!(json.contains("\"line\":4"));
    assert!(json.contains("\"counts\":{\"float-eq\":1}"));
}
