//! Property: `// dcc-lint: allow(rule, reason = "…")` suppressions are
//! honored exactly once per line — a suppression silences findings of
//! its rule on its target line only, never a neighboring line, never a
//! different rule, and a suppression with nothing to suppress is
//! reported as `unused-suppression`.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_lint::lint_source;
use proptest::prelude::*;

/// One violation template per rule: each line triggers its rule exactly
/// once when unsuppressed.
const TEMPLATES: [(&str, &str); 4] = [
    ("float-eq", "let _a = x == 1.0;"),
    ("unwrap-in-lib", "let _b = o.unwrap();"),
    ("nondet-iter", "let _c = HashMap::new();"),
    ("wall-clock", "let _d = Instant::now();"),
];

/// Builds a source file from (template index, suppressed?) pairs and
/// returns it with the expected (rule, line) findings.
fn build(entries: &[(usize, bool)]) -> (String, Vec<(&'static str, u32)>) {
    let mut src = String::from("fn generated() {\n");
    let mut line = 1u32;
    let mut expected = Vec::new();
    for &(idx, suppressed) in entries {
        let (rule, stmt) = TEMPLATES[idx % TEMPLATES.len()];
        if suppressed {
            src.push_str(&format!(
                "    // dcc-lint: allow({rule}, reason = \"generated case\")\n"
            ));
            line += 1;
        }
        src.push_str("    ");
        src.push_str(stmt);
        src.push('\n');
        line += 1;
        if !suppressed {
            expected.push((rule, line));
        }
    }
    src.push_str("}\n");
    (src, expected)
}

proptest! {
    #[test]
    fn suppressions_silence_exactly_their_line(
        entries in proptest::collection::vec((0usize..4, any::<bool>()), 0..12)
    ) {
        let (src, expected) = build(&entries);
        let findings = lint_source("crates/gen/src/lib.rs", &src);
        // No unused suppressions: every suppression sat on a violating
        // line, so each must have been consumed exactly once.
        prop_assert!(
            findings.iter().all(|f| f.rule != "unused-suppression"),
            "unexpected unused-suppression in {findings:#?}\nsource:\n{src}"
        );
        let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
        prop_assert_eq!(got, expected, "source:\n{}", src);
    }

    #[test]
    fn a_suppression_never_leaks_to_the_next_line(idx in 0usize..4) {
        // Two identical violations; only the first is suppressed. The
        // second must still be reported — the allow is line-scoped.
        let (rule, stmt) = TEMPLATES[idx];
        let src = format!(
            "fn generated() {{\n    // dcc-lint: allow({rule}, reason = \"first only\")\n    {stmt}\n    {stmt}\n}}\n"
        );
        let findings = lint_source("crates/gen/src/lib.rs", &src);
        prop_assert_eq!(findings.len(), 1, "{:#?}", findings);
        prop_assert_eq!(findings[0].rule, rule);
        prop_assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn an_unmatched_suppression_is_reported(idx in 0usize..4) {
        let (rule, _) = TEMPLATES[idx];
        let src = format!(
            "fn generated() {{\n    // dcc-lint: allow({rule}, reason = \"nothing here\")\n    let _x = 1;\n}}\n"
        );
        let findings = lint_source("crates/gen/src/lib.rs", &src);
        prop_assert_eq!(findings.len(), 1, "{:#?}", findings);
        prop_assert_eq!(findings[0].rule, "unused-suppression");
        prop_assert_eq!(findings[0].line, 2);
    }
}
