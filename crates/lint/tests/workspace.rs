//! End-to-end checks against the real workspace: the full analyzer
//! (token rules + registry cross-check + determinism-taint with the
//! checked-in policy) must be clean at head, and the `metric-registry`
//! direction-1 coverage must see every `serve.*` and `batch.*` name
//! through constant resolution — the serve and batch crates emit via
//! `names::CONST` references, not string literals, so these names
//! prove the const→value resolution path end-to-end.

// Test helpers outside `#[test]` fns miss clippy.toml's in-tests exemption.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_lint::{classify, lexer, registry};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// The 12 `serve.*` names of the streaming service.
const SERVE_NAMES: &[&str] = &[
    "serve.round",
    "serve.events",
    "serve.rounds",
    "serve.dirty.workers",
    "serve.dirty.products",
    "serve.solve.resolved",
    "serve.solve.reused",
    "serve.fit.refits",
    "serve.fit.reused",
    "serve.checkpoint.saved",
    "serve.checkpoint.restored",
    "serve.incremental_ratio",
];

/// The 6 supervision names added with the supervised batch scheduler.
const BATCH_SUPERVISION_NAMES: &[&str] = &[
    "batch.retry.attempts",
    "batch.retry.recovered",
    "batch.quarantine.scenarios",
    "batch.quarantine.panics",
    "batch.quarantine.budget_exhausted",
    "batch.checkpoint.restored",
];

#[test]
fn workspace_lint_is_clean_at_head() {
    let cfg = dcc_lint::Config::workspace(workspace_root());
    assert!(
        cfg.policy.is_some(),
        "dcc-lint.policy must exist at the workspace root"
    );
    let report = dcc_lint::run(&cfg).expect("workspace lint runs");
    assert!(
        report.findings.is_empty(),
        "workspace must be lint-clean, got {:#?}",
        report.findings
    );
}

/// Lexes every non-test `.rs` file under `dir` and feeds it to the
/// emission collector.
fn collect_dir(
    root: &Path,
    dir: &str,
    names: &mut Vec<registry::CodeName>,
    refs: &mut Vec<registry::ConstRef>,
) {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(dir))
        .expect("crate src dir reads")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let rel = format!(
            "{dir}/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        let src = std::fs::read_to_string(&path).expect("source reads");
        let lexed = lexer::lex(&src);
        let regions = classify::test_regions(&lexed.tokens);
        registry::collect_emissions(&rel, &lexed.tokens, &regions, names, refs);
    }
}

#[test]
fn serve_and_batch_names_are_covered_end_to_end() {
    let root = workspace_root();

    // Direction 1: emissions in the serve/batch crates plus the CLI
    // (checkpoint counters are emitted from `cmd_serve`), via const
    // refs.
    let mut names = Vec::new();
    let mut refs = Vec::new();
    collect_dir(&root, "crates/serve/src", &mut names, &mut refs);
    collect_dir(&root, "crates/batch/src", &mut names, &mut refs);
    collect_dir(&root, "crates/cli/src", &mut names, &mut refs);
    assert!(
        !refs.is_empty(),
        "serve/batch must emit via names:: constants"
    );

    let obs_src =
        std::fs::read_to_string(root.join("crates/obs/src/lib.rs")).expect("obs lib reads");
    let map = registry::const_map(&lexer::lex(&obs_src).tokens);
    let mut findings = Vec::new();
    registry::resolve_const_refs(&refs, &map, &mut names, &mut findings);
    assert!(
        findings.is_empty(),
        "every emitted constant must resolve, got {findings:#?}"
    );

    let emitted: Vec<&str> = names.iter().map(|n| n.name.as_str()).collect();
    for want in SERVE_NAMES.iter().chain(BATCH_SUPERVISION_NAMES) {
        assert!(
            emitted.contains(want),
            "{want} must be emitted from the serve/batch crates; saw {emitted:#?}"
        );
    }

    // Direction 3: all of them documented.
    let doc_src =
        std::fs::read_to_string(root.join("docs/observability.md")).expect("doc reads");
    let doc = registry::doc_names(&doc_src);
    for want in SERVE_NAMES.iter().chain(BATCH_SUPERVISION_NAMES) {
        assert!(doc.contains_key(*want), "{want} must be documented");
    }

    // And the cross-check over exactly this slice is drift-free.
    let mut drift = Vec::new();
    let doc_slice: BTreeMap<String, u32> = doc
        .into_iter()
        .filter(|(k, _)| {
            names.iter().any(|n| &n.name == k)
        })
        .collect();
    registry::cross_check(&names, &doc_slice, "docs/observability.md", &mut drift);
    assert!(drift.is_empty(), "{drift:#?}");
}

#[test]
fn drift_summary_names_exact_rows_when_a_doc_row_is_removed() {
    let root = workspace_root();
    let doc_src =
        std::fs::read_to_string(root.join("docs/observability.md")).expect("doc reads");
    // Simulate doc drift: drop the serve.events row, add a phantom row.
    let mutated: String = doc_src
        .lines()
        .filter(|l| !l.contains("`serve.events`"))
        .chain(std::iter::once("| `serve.phantom` | counter | never emitted |"))
        .map(|l| format!("{l}\n"))
        .collect();
    let doc = registry::doc_names(&mutated);
    let code = vec![registry::CodeName {
        name: "serve.events".to_string(),
        path: "crates/serve/src/service.rs".to_string(),
        line: 1,
        is_emission: true,
    }];
    let code_present: BTreeMap<String, u32> = doc
        .into_iter()
        .filter(|(k, _)| k.starts_with("serve.phantom"))
        .collect();
    let mut findings = Vec::new();
    registry::cross_check(&code, &code_present, "docs/observability.md", &mut findings);
    let summary = findings
        .iter()
        .find(|f| f.message.contains("registry drift"))
        .expect("summary fires");
    assert!(
        summary.message.contains("missing from docs/observability.md: serve.events"),
        "{}",
        summary.message
    );
    assert!(
        summary.message.contains("not in code: serve.phantom"),
        "{}",
        summary.message
    );
}
