//! Subcommand implementations. Each returns its report as a `String` so
//! the logic is unit-testable without capturing stdout.

use crate::args::ParsedArgs;
use crate::error::CliError;
use dcc_batch::{BatchError, BatchOptions, BatchRunner, ScenarioGrid};
use dcc_core::{
    CollusionProofParams, DesignConfig, FailurePolicy, ModelParams, SimulationConfig, StrategyKind,
};
use dcc_detect::{run_pipeline, PipelineConfig, SuspectSource};
use dcc_engine::{
    Engine, EngineConfig, EngineSimOutcome, PoolSize, RoundContext, SimOptions, StageKind,
    TraceSource,
};
use dcc_experiments::ExperimentScale;
use dcc_faults::{FaultPlan, FaultPlanConfig, Json};
use dcc_label::{LabelMarket, MarketConfig};
use dcc_obs::{JsonRecorder, Metrics};
use dcc_serve::{events_from_trace, ServeEvent, ServeService};
use dcc_trace::{
    read_trace_columnar, read_trace_csv, write_trace_columnar, write_trace_csv, AdversarialConfig,
    AdversaryPlan, AdversaryPlanConfig, ColumnarTrace, TraceDataset, TraceSummary, WorkerClass,
    COLUMNAR_VERSION,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Top-level result type for the CLI; `main` maps the error variant to
/// an exit code and never panics on user input.
pub type CliResult = Result<String, CliError>;

/// `dcc gen --seed N --scale small|paper --out DIR`
pub fn cmd_gen(args: &ParsedArgs) -> CliResult {
    let seed: u64 = args.num_flag("seed", 42)?;
    let scale = ExperimentScale::parse(&args.str_flag("scale", "small"))
        .ok_or_else(|| "flag --scale: expected small|paper".to_string())?;
    let out = args.str_flag("out", "trace_out");
    let trace = scale.generate(seed);
    write_trace_csv(&trace, Path::new(&out))
        .map_err(|e| CliError::Failed(format!("cannot write trace {out}: {e}")))?;
    Ok(format!(
        "wrote {} reviews / {} reviewers / {} products to {out}/",
        trace.reviews().len(),
        trace.reviewers().len(),
        trace.products().len()
    ))
}

/// A plain file is a `dcc-trace-col/1` columnar trace; a directory is a
/// CSV trace. Every TRACE-taking command accepts either.
fn trace_source_of(path: &str) -> TraceSource {
    if Path::new(path).is_file() {
        TraceSource::Columnar(PathBuf::from(path))
    } else {
        TraceSource::CsvDir(PathBuf::from(path))
    }
}

fn read_any_trace(path: &str) -> Result<TraceDataset, CliError> {
    let result = if Path::new(path).is_file() {
        read_trace_columnar(Path::new(path)).and_then(|col| col.to_dataset())
    } else {
        read_trace_csv(Path::new(path))
    };
    result.map_err(|e| CliError::Failed(format!("cannot read trace {path}: {e}")))
}

fn load_trace(args: &ParsedArgs) -> Result<TraceDataset, CliError> {
    let dir = args
        .positional
        .first()
        .cloned()
        .or_else(|| args.flags.get("trace").cloned())
        .ok_or_else(|| {
            CliError::Usage("expected a trace directory (positional or --trace DIR)".into())
        })?;
    read_any_trace(&dir)
}

/// `dcc summary TRACE_DIR`
pub fn cmd_summary(args: &ParsedArgs) -> CliResult {
    let trace = load_trace(args)?;
    Ok(TraceSummary::of(&trace).to_string())
}

/// `dcc detect TRACE_DIR [--estimated THRESHOLD]`
pub fn cmd_detect(args: &ParsedArgs) -> CliResult {
    let trace = load_trace(args)?;
    let mut config = PipelineConfig::default();
    if args.bool_flag("estimated") || args.flags.contains_key("threshold") {
        config.suspects = SuspectSource::Estimated {
            threshold: args.num_flag("threshold", 0.5)?,
        };
    }
    let result = run_pipeline(&trace, config);
    let mut out = String::new();
    writeln!(
        out,
        "suspected malicious workers: {} ({} communities, {} singletons)",
        result.suspected.len(),
        result.collusion.communities.len(),
        result.collusion.singletons.len()
    )
    .ok();
    for (label, pct) in result.collusion.size_percentages() {
        writeln!(out, "  community size {label:>4}: {pct:5.1}%").ok();
    }
    for class in WorkerClass::ALL {
        let ids = trace.workers_of_class(class);
        if let Some(mean) = result.weights.mean_over(&ids) {
            writeln!(out, "mean Eq.5 weight, {class}: {mean:.4}").ok();
        }
    }
    Ok(out)
}

fn failure_policy(args: &ParsedArgs) -> Result<FailurePolicy, CliError> {
    match args.str_flag("policy", "abort").as_str() {
        "abort" => Ok(FailurePolicy::Abort),
        "fallback" => Ok(FailurePolicy::FallbackBaseline {
            amount: args.num_flag("fallback-amount", 0.5)?,
        }),
        "skip" => Ok(FailurePolicy::Skip),
        other => Err(CliError::Usage(format!(
            "flag --policy: expected abort|fallback|skip, got {other:?}"
        ))),
    }
}

fn design_config(args: &ParsedArgs) -> Result<DesignConfig, CliError> {
    Ok(DesignConfig {
        params: ModelParams {
            mu: args.num_flag("mu", 1.5)?,
            omega: args.num_flag("omega", 1.0)?,
            beta: args.num_flag("beta", 1.0)?,
            ..ModelParams::default()
        },
        intervals: args.num_flag("intervals", 20)?,
        effort_quantile: 95.0,
        parallel: !args.bool_flag("serial"),
        per_worker_fit_min_reviews: if args.flags.contains_key("per-worker") {
            Some(args.num_flag("per-worker", 20)?)
        } else {
            None
        },
        failure_policy: failure_policy(args)?,
    })
}

/// Resolves the worker-pool size for the parallel solve: `--pool N`
/// pins an exact thread count, `--serial` forces the sequential path,
/// and otherwise the engine sizes the pool from the machine. Every
/// choice produces bit-identical contracts.
fn pool_size(args: &ParsedArgs) -> Result<PoolSize, CliError> {
    if args.flags.contains_key("pool") {
        Ok(PoolSize::Fixed(args.num_flag("pool", 1usize)?))
    } else if args.bool_flag("serial") {
        Ok(PoolSize::Sequential)
    } else {
        Ok(PoolSize::Auto)
    }
}

/// A pending `--metrics FILE` request: the recorder installed in the
/// engine context plus the path the rendered JSON document goes to once
/// the command's engine runs are over.
struct MetricsSink {
    recorder: Arc<JsonRecorder>,
    path: PathBuf,
}

impl MetricsSink {
    /// Renders the recorder and writes the metrics document, appending a
    /// confirmation line to the command's report.
    fn flush(&self, out: &mut String) -> Result<(), CliError> {
        let json = self.recorder.to_json();
        std::fs::write(&self.path, &json).map_err(|e| {
            CliError::Failed(format!("cannot write metrics {}: {e}", self.path.display()))
        })?;
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        writeln!(out, "wrote metrics to {}", self.path.display()).ok();
        Ok(())
    }
}

/// Builds the staged-engine context shared by `run`, `design`,
/// `simulate`, and `replay` from the command-line flags, plus the
/// metrics sink when `--metrics FILE` was given.
fn engine_context(args: &ParsedArgs) -> Result<(RoundContext, Option<MetricsSink>), CliError> {
    let dir = args
        .positional
        .first()
        .cloned()
        .or_else(|| args.flags.get("trace").cloned())
        .ok_or_else(|| {
            CliError::Usage("expected a trace directory (positional or --trace DIR)".into())
        })?;
    let strategy = match args.str_flag("strategy", "dynamic").as_str() {
        "dynamic" => StrategyKind::DynamicContract,
        "exclude" => StrategyKind::ExcludeMalicious,
        "fixed" => StrategyKind::FixedPayment {
            amount: args.num_flag("amount", 1.0)?,
        },
        "collusion-proof" => StrategyKind::CollusionProof {
            params: CollusionProofParams::default(),
        },
        other => {
            return Err(CliError::Usage(format!(
                "flag --strategy: unknown strategy {other:?}"
            )))
        }
    };
    let fault_plan = match args.flags.get("fault-plan") {
        Some(file) => FaultPlan::load(Path::new(file))?,
        None => FaultPlan::default(),
    };
    let kill_at = if args.flags.contains_key("kill-at") {
        Some(args.num_flag("kill-at", 0usize)?)
    } else {
        None
    };
    let mut config = EngineConfig::for_source(trace_source_of(&dir));
    config.design = design_config(args)?;
    config.pool = pool_size(args)?;
    config.strategy = strategy;
    config.sim = SimulationConfig {
        rounds: args.num_flag("rounds", 20)?,
        feedback_noise_sd: args.num_flag("noise", 0.5)?,
        seed: args.num_flag("seed", 7)?,
    };
    config.sim_options = SimOptions {
        fault_plan,
        checkpoint: args.flags.get("checkpoint").map(PathBuf::from),
        kill_at,
        resume: args.bool_flag("resume"),
    };
    let sink = args.flags.get("metrics").map(|file| {
        let recorder = Arc::new(JsonRecorder::new());
        config.metrics = Metrics::new(recorder.clone());
        MetricsSink {
            recorder,
            path: PathBuf::from(file),
        }
    });
    Ok((RoundContext::new(config), sink))
}

/// Appends the degraded-subproblem report (if any) to a command's output.
fn report_degradation(out: &mut String, degradation: &dcc_core::DegradationReport) {
    if degradation.is_empty() {
        return;
    }
    writeln!(out, "degraded subproblems: {}", degradation.len()).ok();
    for d in &degradation.degraded {
        writeln!(
            out,
            "  subproblem {} ({} workers): {}",
            d.subproblem,
            d.members.len(),
            d.reason
        )
        .ok();
    }
}

/// `dcc design TRACE_DIR [--mu F] [--omega F] [--intervals N] [--serial]
///  [--budget F]`
pub fn cmd_design(args: &ParsedArgs) -> CliResult {
    let (mut ctx, sink) = engine_context(args)?;
    Engine::new().run_to(&mut ctx, StageKind::ConstructContracts)?;
    let trace = ctx.trace()?;
    let design = ctx.design()?;
    let mut out = String::new();
    writeln!(
        out,
        "designed {} contracts; requester per-round utility {:.3}",
        design.agents.len(),
        design.total_requester_utility
    )
    .ok();
    report_degradation(&mut out, &design.degradation);
    if args.flags.contains_key("budget") {
        let budget: f64 = args.num_flag("budget", 0.0)?;
        let selection = dcc_core::select_within_budget(&design.solution, budget)?;
        writeln!(
            out,
            "budget {budget:.2}: funded {} contracts, spend {:.2}, utility {:.3}",
            selection.funded.len(),
            selection.spend,
            selection.utility
        )
        .ok();
    }
    if let Some(dump_dir) = args.flags.get("dump") {
        let path = std::path::Path::new(dump_dir);
        std::fs::create_dir_all(path)
            .map_err(|e| CliError::Failed(format!("cannot create {dump_dir}: {e}")))?;
        let mut csv = String::from("worker,k_opt,compensation,effort,knots,payments\n");
        for a in &design.agents {
            let knots: Vec<String> = a
                .contract
                .feedback_knots()
                .iter()
                .map(|v| format!("{v:.6}"))
                .collect();
            let pays: Vec<String> = a
                .contract
                .payments()
                .iter()
                .map(|v| format!("{v:.6}"))
                .collect();
            writeln!(
                csv,
                "{},{},{:.6},{:.6},{},{}",
                a.worker.index(),
                a.k_opt.map(|k| k.to_string()).unwrap_or_default(),
                a.compensation,
                a.induced_effort,
                knots.join(";"),
                pays.join(";")
            )
            .ok();
        }
        let file = path.join("contracts.csv");
        std::fs::write(&file, csv)
            .map_err(|e| CliError::Failed(format!("cannot write {}: {e}", file.display())))?;
        writeln!(out, "wrote {} contracts to {}", design.agents.len(), file.display()).ok();
    }
    for class in WorkerClass::ALL {
        let comps = design.compensations_of(&trace.workers_of_class(class));
        if comps.is_empty() {
            continue;
        }
        let mean = comps.iter().sum::<f64>() / comps.len() as f64;
        let paid = comps.iter().filter(|&&c| c > 1e-9).count();
        writeln!(
            out,
            "  {class:<24} mean pay {mean:8.4}  paid {paid}/{}",
            comps.len()
        )
        .ok();
    }
    if let Some(sink) = &sink {
        sink.flush(&mut out)?;
    }
    Ok(out)
}

/// `dcc simulate TRACE_DIR [--rounds N] [--strategy dynamic|exclude|fixed|collusion-proof]
///  [--amount F] [--noise F] [--mu F] [--fault-plan FILE]
///  [--checkpoint FILE [--kill-at N | --resume]]
///  [--policy abort|fallback|skip [--fallback-amount F]]`
///
/// With `--checkpoint` the complete simulation state is persisted after
/// every round; `--kill-at N` stops the run before round `N` (simulating
/// a crash), and `--resume` continues from the checkpoint instead of
/// starting over. Because the fault plan is deterministic in `(agent,
/// round)`, a killed-and-resumed run reproduces the uninterrupted
/// outcome bit-exactly.
pub fn cmd_simulate(args: &ParsedArgs) -> CliResult {
    let (mut ctx, sink) = engine_context(args)?;
    Engine::new().run(&mut ctx)?;
    let mut out = match ctx.sim_outcome()? {
        EngineSimOutcome::Killed {
            at_round,
            total_rounds,
            checkpoint,
        } => format!(
            "killed at round {} of {}; checkpoint saved to {} (continue with --resume)",
            at_round,
            total_rounds,
            checkpoint.display()
        ),
        EngineSimOutcome::Completed {
            outcome,
            faults_scheduled,
            faults_fired,
        } => {
            let mut out = format!(
                "strategy {:?}: mean round utility {:.3}, cumulative {:.3} over {} rounds",
                args.str_flag("strategy", "dynamic"),
                outcome.mean_round_utility,
                outcome.cumulative_requester_utility,
                outcome.rounds.len()
            );
            if *faults_scheduled > 0 {
                write!(
                    out,
                    "\nfault plan: {faults_scheduled} scheduled events, {faults_fired} fired this invocation"
                )
                .ok();
            }
            let mut degraded = String::new();
            report_degradation(&mut degraded, &ctx.design()?.degradation);
            if !degraded.is_empty() {
                out.push('\n');
                out.push_str(degraded.trim_end());
            }
            out
        }
    };
    if let Some(sink) = &sink {
        sink.flush(&mut out)?;
    }
    Ok(out)
}

/// `dcc run TRACE_DIR [design flags] [simulate flags] [--pool N]` — the
/// full staged pipeline end to end (ingest, detect, fit, solve,
/// construct, simulate) with a per-stage timing report.
pub fn cmd_run(args: &ParsedArgs) -> CliResult {
    let (mut ctx, sink) = engine_context(args)?;
    let report = Engine::new().run(&mut ctx)?;
    let mut out = String::from("pipeline stages:\n");
    write!(out, "{report}").ok();
    let design = ctx.design()?;
    writeln!(
        out,
        "designed {} contracts; requester per-round utility {:.3}",
        design.agents.len(),
        design.total_requester_utility
    )
    .ok();
    report_degradation(&mut out, &design.degradation);
    match ctx.sim_outcome()? {
        EngineSimOutcome::Killed {
            at_round,
            total_rounds,
            checkpoint,
        } => {
            writeln!(
                out,
                "killed at round {} of {}; checkpoint saved to {} (continue with --resume)",
                at_round,
                total_rounds,
                checkpoint.display()
            )
            .ok();
        }
        EngineSimOutcome::Completed {
            outcome,
            faults_scheduled,
            faults_fired,
        } => {
            writeln!(
                out,
                "strategy {:?}: mean round utility {:.3}, cumulative {:.3} over {} rounds",
                args.str_flag("strategy", "dynamic"),
                outcome.mean_round_utility,
                outcome.cumulative_requester_utility,
                outcome.rounds.len()
            )
            .ok();
            if *faults_scheduled > 0 {
                writeln!(
                    out,
                    "fault plan: {faults_scheduled} scheduled events, {faults_fired} fired this invocation"
                )
                .ok();
            }
        }
    }
    if let Some(sink) = &sink {
        sink.flush(&mut out)?;
    }
    Ok(out)
}

/// `dcc faults gen [--agents N --rounds N --seed N --dropout F --missing F
///  --corrupt F --nan F --delay F --out FILE]` — sample a deterministic
/// fault plan; `dcc faults show FILE` — summarize one.
pub fn cmd_faults(args: &ParsedArgs) -> CliResult {
    match args.positional.first().map(String::as_str) {
        Some("gen") => {
            let config = FaultPlanConfig {
                agents: args.num_flag("agents", 10)?,
                rounds: args.num_flag("rounds", 20)?,
                dropout_prob: args.num_flag("dropout", 0.02)?,
                max_dropout_len: args.num_flag("max-dropout-len", 3)?,
                missing_prob: args.num_flag("missing", 0.03)?,
                corrupt_prob: args.num_flag("corrupt", 0.03)?,
                nan_prob: args.num_flag("nan", 0.01)?,
                delay_prob: args.num_flag("delay", 0.03)?,
                max_delay: args.num_flag("max-delay", 3)?,
                outlier_scale: args.num_flag("outlier-scale", 10.0)?,
                seed: args.num_flag("seed", 42)?,
            };
            let plan = config.generate()?;
            let out = args.str_flag("out", "fault_plan.json");
            plan.save(Path::new(&out))?;
            Ok(format!(
                "wrote fault plan to {out}: {} events ({} dropouts, {} missing, {} corrupt, {} delays)",
                plan.len(),
                plan.dropouts.len(),
                plan.missing.len(),
                plan.corrupt.len(),
                plan.delays.len()
            ))
        }
        Some("show") => {
            let file = args.positional.get(1).ok_or_else(|| {
                CliError::Usage("usage: dcc faults show PLAN_FILE".into())
            })?;
            let plan = FaultPlan::load(Path::new(file))?;
            let mut out = format!(
                "fault plan {file}: {} events\n  dropouts: {}\n  missing feedback: {}\n  corrupted feedback: {}\n  payment delays: {}\n",
                plan.len(),
                plan.dropouts.len(),
                plan.missing.len(),
                plan.corrupt.len(),
                plan.delays.len()
            );
            for d in plan.dropouts.iter().take(10) {
                writeln!(out, "  agent {} absent rounds {}..{}", d.agent, d.from, d.until).ok();
            }
            Ok(out)
        }
        _ => Err(CliError::Usage(
            "usage: dcc faults gen [FLAGS] | dcc faults show PLAN_FILE".into(),
        )),
    }
}

/// `dcc adversary gen [--seed N --campaigns N --rounds N --split-prob F
///  --merge-prob F --sybil-prob F --max-sybils N --underreport-prob F
///  --min-factor F --out FILE]` — sample a deterministic adversary plan;
/// `dcc adversary show FILE` — summarize one; `dcc adversary apply
///  --plan FILE [--seed N --scale small|paper --out DIR]` — generate the
/// base trace and write the attacked variant as a CSV trace directory.
pub fn cmd_adversary(args: &ParsedArgs) -> CliResult {
    const USAGE: &str =
        "usage: dcc adversary gen [FLAGS] | dcc adversary show PLAN_FILE | \
         dcc adversary apply --plan PLAN_FILE [--seed N --scale small|paper --out DIR]";
    match args.positional.first().map(String::as_str) {
        Some("gen") => {
            let config = AdversaryPlanConfig {
                seed: args.num_flag("seed", 42)?,
                n_campaigns: args.num_flag("campaigns", 8)?,
                n_rounds: args.num_flag("rounds", 8)?,
                split_prob: args.num_flag("split-prob", 0.25)?,
                merge_prob: args.num_flag("merge-prob", 0.25)?,
                sybil_prob: args.num_flag("sybil-prob", 0.25)?,
                max_sybils: args.num_flag("max-sybils", 4)?,
                underreport_prob: args.num_flag("underreport-prob", 0.25)?,
                min_factor: args.num_flag("min-factor", 0.2)?,
            };
            let plan = config
                .generate()
                .map_err(|e| CliError::Failed(format!("cannot sample adversary plan: {e}")))?;
            let out = args.str_flag("out", "adversary_plan.json");
            plan.save(Path::new(&out))
                .map_err(|e| CliError::Failed(format!("cannot write plan {out}: {e}")))?;
            Ok(format!(
                "wrote adversary plan to {out}: {} events ({} sybil influxes, {} splits, {} merges, {} under-report windows)",
                plan.len(),
                plan.sybils.len(),
                plan.splits.len(),
                plan.merges.len(),
                plan.underreports.len()
            ))
        }
        Some("show") => {
            let file = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("usage: dcc adversary show PLAN_FILE".into()))?;
            let plan = AdversaryPlan::load(Path::new(file))
                .map_err(|e| CliError::Failed(format!("cannot read plan {file}: {e}")))?;
            let mut out = format!(
                "adversary plan {file}: {} events (seed {})\n  sybil influxes: {}\n  community splits: {}\n  community merges: {}\n  under-report windows: {}\n",
                plan.len(),
                plan.seed,
                plan.sybils.len(),
                plan.splits.len(),
                plan.merges.len(),
                plan.underreports.len()
            );
            for s in plan.sybils.iter().take(10) {
                writeln!(
                    out,
                    "  {} sybils join campaign {} at round {}",
                    s.count, s.campaign, s.round
                )
                .ok();
            }
            for s in plan.splits.iter().take(10) {
                writeln!(out, "  campaign {} splits at round {}", s.campaign, s.round).ok();
            }
            for m in plan.merges.iter().take(10) {
                writeln!(
                    out,
                    "  campaigns {} and {} merge at round {}",
                    m.first, m.second, m.round
                )
                .ok();
            }
            for u in plan.underreports.iter().take(10) {
                writeln!(
                    out,
                    "  campaign {} damps feedback by {:.2} from round {}",
                    u.campaign, u.factor, u.from_round
                )
                .ok();
            }
            Ok(out)
        }
        Some("apply") => {
            let file = args
                .flags
                .get("plan")
                .cloned()
                .ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let plan = AdversaryPlan::load(Path::new(&file))
                .map_err(|e| CliError::Failed(format!("cannot read plan {file}: {e}")))?;
            let seed: u64 = args.num_flag("seed", 42)?;
            let scale = ExperimentScale::parse(&args.str_flag("scale", "small"))
                .ok_or_else(|| "flag --scale: expected small|paper".to_string())?;
            let out = args.str_flag("out", "adversarial_trace_out");
            let base = scale.trace_config(seed);
            let events = plan.len();
            let trace = AdversarialConfig { base, plan }
                .generate()
                .map_err(|e| CliError::Failed(format!("cannot apply plan {file}: {e}")))?;
            write_trace_csv(&trace, Path::new(&out))
                .map_err(|e| CliError::Failed(format!("cannot write trace {out}: {e}")))?;
            Ok(format!(
                "applied {events} adversarial events; wrote {} reviews / {} reviewers / {} products ({} campaigns) to {out}/",
                trace.reviews().len(),
                trace.reviewers().len(),
                trace.products().len(),
                trace.campaigns().len()
            ))
        }
        _ => Err(CliError::Usage(USAGE.into())),
    }
}

/// `dcc trace convert SRC DEST` — convert a CSV trace directory to a
/// `dcc-trace-col/1` columnar file, or a columnar file back to a CSV
/// directory (direction inferred from whether SRC is a file or a
/// directory); `dcc trace info FILE` — header report for a columnar
/// trace without materializing any rows.
pub fn cmd_trace(args: &ParsedArgs) -> CliResult {
    const USAGE: &str = "usage: dcc trace convert SRC DEST | dcc trace info FILE";
    match args.positional.first().map(String::as_str) {
        Some("convert") => {
            let src = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let dest = args
                .positional
                .get(2)
                .cloned()
                .or_else(|| args.flags.get("out").cloned())
                .ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let trace = read_any_trace(src)?;
            if Path::new(src).is_file() {
                write_trace_csv(&trace, Path::new(&dest))
                    .map_err(|e| CliError::Failed(format!("cannot write trace {dest}: {e}")))?;
                Ok(format!(
                    "wrote {} reviews / {} reviewers / {} products to {dest}/ (CSV)",
                    trace.reviews().len(),
                    trace.reviewers().len(),
                    trace.products().len()
                ))
            } else {
                write_trace_columnar(&trace, Path::new(&dest))
                    .map_err(|e| CliError::Failed(format!("cannot write trace {dest}: {e}")))?;
                let col = ColumnarTrace::from_dataset(&trace);
                Ok(format!(
                    "wrote {} reviews / {} reviewers / {} products to {dest} \
                     (dcc-trace-col/{COLUMNAR_VERSION}, {} bytes, checksum {:016x})",
                    trace.reviews().len(),
                    trace.reviewers().len(),
                    trace.products().len(),
                    col.as_bytes().len(),
                    col.checksum()
                ))
            }
        }
        Some("info") => {
            let file = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let col = read_trace_columnar(Path::new(file))
                .map_err(|e| CliError::Failed(format!("cannot read trace {file}: {e}")))?;
            Ok(format!(
                "{file}: dcc-trace-col/{COLUMNAR_VERSION}\n  products:  {}\n  reviewers: {}\n  reviews:   {}\n  campaigns: {}\n  bytes:     {}\n  checksum:  {:016x}\n",
                col.n_products(),
                col.n_reviewers(),
                col.n_reviews(),
                col.n_campaigns(),
                col.as_bytes().len(),
                col.checksum()
            ))
        }
        _ => Err(CliError::Usage(USAGE.into())),
    }
}

/// Validates a parsed metrics document against the `dcc-obs/1` schema
/// (see `docs/observability.md`): schema tag, spans with
/// `id`/`parent`/`name`/`attrs`/`elapsed_us`, events with
/// `name`/`attrs`, numeric counters, gauges, and histograms carrying
/// `count`/`sum`/`min`/`max`.
fn validate_metrics_doc(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != dcc_obs::SCHEMA_VERSION {
        return Err(format!(
            "schema {schema:?} is not {:?}",
            dcc_obs::SCHEMA_VERSION
        ));
    }
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing array \"spans\"")?;
    for (i, span) in spans.iter().enumerate() {
        span.get("id")
            .and_then(Json::as_idx)
            .ok_or(format!("spans[{i}]: missing numeric \"id\""))?;
        match span.get("parent") {
            Some(Json::Null) => {}
            Some(p) if p.as_idx().is_some() => {}
            _ => return Err(format!("spans[{i}]: \"parent\" must be null or a span id")),
        }
        span.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("spans[{i}]: missing string \"name\""))?;
        if !matches!(span.get("attrs"), Some(Json::Obj(_))) {
            return Err(format!("spans[{i}]: missing object \"attrs\""));
        }
        match span.get("elapsed_us") {
            Some(Json::Null) | Some(Json::Num(_)) => {}
            _ => return Err(format!("spans[{i}]: \"elapsed_us\" must be null or a number")),
        }
    }
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing array \"events\"")?;
    for (i, event) in events.iter().enumerate() {
        event
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("events[{i}]: missing string \"name\""))?;
        if !matches!(event.get("attrs"), Some(Json::Obj(_))) {
            return Err(format!("events[{i}]: missing object \"attrs\""));
        }
    }
    let Some(Json::Obj(counters)) = doc.get("counters") else {
        return Err("missing object \"counters\"".into());
    };
    for (name, value) in counters {
        if value.as_idx().is_none() {
            return Err(format!("counter {name:?} is not a non-negative integer"));
        }
    }
    let Some(Json::Obj(gauges)) = doc.get("gauges") else {
        return Err("missing object \"gauges\"".into());
    };
    for (name, value) in gauges {
        if value.as_f64().is_none() {
            return Err(format!("gauge {name:?} is not a number"));
        }
    }
    let Some(Json::Obj(histograms)) = doc.get("histograms") else {
        return Err("missing object \"histograms\"".into());
    };
    for (name, hist) in histograms {
        for field in ["count", "sum", "min", "max"] {
            if hist.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("histogram {name:?}: missing numeric {field:?}"));
            }
        }
    }
    Ok(())
}

/// Renders the per-stage latency table plus solve/counter summaries from
/// a validated metrics document.
fn render_metrics_summary(doc: &Json) -> String {
    let spans = doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]);
    let events = doc.get("events").and_then(Json::as_arr).unwrap_or(&[]);
    let mut out = String::new();
    writeln!(
        out,
        "metrics document ({}): {} spans, {} events",
        dcc_obs::SCHEMA_VERSION,
        spans.len(),
        events.len()
    )
    .ok();
    writeln!(out, "\nper-stage latency:").ok();
    writeln!(
        out,
        "  {:<22} {:>12} {:>8}  cause",
        "stage", "elapsed_us", "cached"
    )
    .ok();
    for span in spans {
        if span.get("name").and_then(Json::as_str) != Some(dcc_obs::names::SPAN_STAGE) {
            continue;
        }
        let attrs = span.get("attrs");
        let get = |key: &str| attrs.and_then(|a| a.get(key));
        writeln!(
            out,
            "  {:<22} {:>12} {:>8}  {}",
            get("stage").and_then(Json::as_str).unwrap_or("?"),
            span.get("elapsed_us")
                .and_then(Json::as_f64)
                .map_or_else(|| "open".to_string(), |us| format!("{us:.0}")),
            get("cached").and_then(Json::as_bool).unwrap_or(false),
            get("cause").and_then(Json::as_str).unwrap_or("-"),
        )
        .ok();
    }
    if let Some(hist) = doc
        .get("histograms")
        .and_then(|h| h.get(dcc_obs::names::HIST_SUBPROBLEM_US))
    {
        let field = |name| hist.get(name).and_then(Json::as_f64).unwrap_or(0.0);
        writeln!(
            out,
            "\nsubproblem solves: {} in {:.0} us total (min {:.0}, max {:.0})",
            field("count"),
            field("sum"),
            field("min"),
            field("max")
        )
        .ok();
    }
    if let Some(Json::Obj(counters)) = doc.get("counters") {
        if !counters.is_empty() {
            writeln!(out, "\ncounters:").ok();
            for (name, value) in counters {
                writeln!(out, "  {:<32} {}", name, value.as_idx().unwrap_or(0)).ok();
            }
        }
    }
    out
}

/// `dcc metrics summarize FILE` — validate a `--metrics` document
/// against the dcc-obs/1 schema and render its per-stage latency table.
pub fn cmd_metrics(args: &ParsedArgs) -> CliResult {
    match args.positional.first().map(String::as_str) {
        Some("summarize") => {
            let file = args.positional.get(1).ok_or_else(|| {
                CliError::Usage("usage: dcc metrics summarize METRICS_FILE".into())
            })?;
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError::Failed(format!("cannot read metrics {file}: {e}")))?;
            let doc = Json::parse(&text)
                .map_err(|e| CliError::Failed(format!("{file}: invalid JSON: {e}")))?;
            validate_metrics_doc(&doc)
                .map_err(|e| CliError::Failed(format!("{file}: schema violation: {e}")))?;
            Ok(render_metrics_summary(&doc))
        }
        _ => Err(CliError::Usage(
            "usage: dcc metrics summarize METRICS_FILE".into(),
        )),
    }
}

/// `dcc batch GRID.json [--pool N | --serial]
///  [--policy abort|fallback|skip] [--metrics FILE]
///  [--max-retries N] [--scenario-budget UNITS]
///  [--checkpoint FILE [--checkpoint-every N] [--kill-at K | --resume]]`
/// — expand a `dcc-batch/1` scenario grid (traces × μ × budget
/// fraction × strategy) and run it on the supervised deterministic
/// batch scheduler.
///
/// A structurally invalid spec or flag combination is a usage error
/// (exit 2, naming the offending field); a scenario failing mid-batch
/// under `--policy abort` and an unreadable/mismatched checkpoint are
/// runtime failures (exit 1). The other policies itemize quarantined
/// failures in the report and exit 0. A `--kill-at` run that stops at
/// its threshold exits 0 and names the checkpoint to `--resume` from;
/// the resumed report is byte-identical to an uninterrupted run.
pub fn cmd_batch(args: &ParsedArgs) -> CliResult {
    let spec = args
        .positional
        .first()
        .cloned()
        .or_else(|| args.flags.get("grid").cloned())
        .ok_or_else(|| {
            CliError::Usage("expected a grid spec file (positional or --grid FILE)".into())
        })?;
    let text = std::fs::read_to_string(&spec)
        .map_err(|e| CliError::Failed(format!("cannot read grid spec {spec}: {e}")))?;
    let grid = ScenarioGrid::parse(&text).map_err(|e| CliError::Usage(format!("{spec}: {e}")))?;

    let checkpoint = match args.flags.get("checkpoint") {
        Some(path) => {
            let mut config = dcc_batch::CheckpointConfig::new(PathBuf::from(path));
            config.every = args.num_flag("checkpoint-every", 1usize)?.max(1);
            Some(config)
        }
        None => None,
    };
    let resume = args.bool_flag("resume");
    let kill_after = if args.flags.contains_key("kill-at") {
        Some(args.num_flag("kill-at", 1usize)?)
    } else {
        None
    };
    if (resume || kill_after.is_some()) && checkpoint.is_none() {
        return Err(CliError::Usage(
            "--kill-at and --resume require --checkpoint FILE".into(),
        ));
    }
    if resume && kill_after.is_some() {
        return Err(CliError::Usage(
            "--kill-at and --resume are mutually exclusive".into(),
        ));
    }
    let sup = dcc_batch::SupervisorOptions {
        max_retries: args.num_flag("max-retries", 0usize)?,
        scenario_budget: if args.flags.contains_key("scenario-budget") {
            Some(args.num_flag("scenario-budget", 0u64)?)
        } else {
            None
        },
        kill_after,
        checkpoint,
        resume,
        ..dcc_batch::SupervisorOptions::default()
    };

    let sink = args.flags.get("metrics").map(|file| MetricsSink {
        recorder: Arc::new(JsonRecorder::new()),
        path: PathBuf::from(file),
    });
    let runner = BatchRunner::with_options(BatchOptions {
        pool: pool_size(args)?,
        policy: failure_policy(args)?,
        metrics: sink
            .as_ref()
            .map(|s| Metrics::new(s.recorder.clone()))
            .unwrap_or_default(),
    });
    let outcome = runner
        .run_supervised(&grid, &grid.scenarios(), &sup)
        .map_err(|e| match e {
            BatchError::Spec(m) => CliError::Usage(format!("{spec}: {m}")),
            failed => CliError::Failed(failed.to_string()),
        })?;
    let report = match outcome {
        dcc_batch::BatchOutcome::Completed(report) => report,
        dcc_batch::BatchOutcome::Killed {
            completed,
            total,
            checkpoint,
        } => {
            let mut out = format!(
                "batch: killed after {completed} of {total} scenarios; \
                 checkpoint saved to {} (continue with --resume)\n",
                checkpoint.display()
            );
            if let Some(sink) = &sink {
                sink.flush(&mut out)?;
            }
            return Ok(out);
        }
    };

    let mut out = String::new();
    writeln!(
        out,
        "batch: {} scenarios, {} failed",
        report.records.len(),
        report.failed()
    )
    .ok();
    for r in &report.records {
        let s = &r.scenario;
        let label = grid
            .traces
            .get(s.trace)
            .map(|t| t.label.as_str())
            .unwrap_or("?");
        write!(
            out,
            "  #{:<3} {label} mu={:.3} budget={:.0}% {} [detect:{} fit:{} solve:{}] ",
            s.id,
            s.mu,
            100.0 * s.budget_fraction,
            dcc_batch::strategy_label(s.strategy),
            if r.detect_cached { "hit" } else { "miss" },
            if r.fit_cached { "hit" } else { "miss" },
            if r.solve_cached { "hit" } else { "miss" },
        )
        .ok();
        // Render from the canonical summary so a checkpoint-restored
        // record prints byte-identically to a freshly computed one.
        match (r.summary(), r.failure()) {
            (Some(o), _) => {
                write!(
                    out,
                    "utility {:.3} funded {}/{} spend {:.2}",
                    o.total_requester_utility,
                    o.funded.len(),
                    o.agents.len(),
                    o.spend,
                )
                .ok();
                if let Some(sim) = &o.sim {
                    write!(out, " sim-utility {:.3}", sim.mean_round_utility).ok();
                }
                writeln!(out).ok();
            }
            (None, Some(e)) => {
                writeln!(out, "ERROR: {e}").ok();
            }
            (None, None) => {
                writeln!(out, "ERROR: scenario produced no record").ok();
            }
        }
    }
    let st = &report.stats;
    writeln!(
        out,
        "cache: trace {}h/{}m, detect {}h/{}m, fit {}h/{}m, solve {}h/{}m",
        st.trace.hits, st.trace.misses, st.detect.hits, st.detect.misses, st.fit.hits,
        st.fit.misses, st.solve.hits, st.solve.misses
    )
    .ok();
    if !report.quarantine.is_empty() {
        writeln!(out, "quarantine: {} scenarios", report.quarantine.len()).ok();
        for q in &report.quarantine.entries {
            writeln!(
                out,
                "  #{:<3} {} after {} attempt{}: {}",
                q.scenario,
                q.kind.label(),
                q.attempts,
                if q.attempts == 1 { "" } else { "s" },
                q.message
            )
            .ok();
        }
    }
    if let Some(sink) = &sink {
        sink.flush(&mut out)?;
    }
    Ok(out)
}

/// `dcc experiment <fig6|fig7|fig8a|fig8b|fig8c|table2|table3|adaptive|all>
///  [--scale small|paper] [--seed N]`
pub fn cmd_experiment(args: &ParsedArgs) -> CliResult {
    let which = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::parse(&args.str_flag("scale", "small"))
        .ok_or_else(|| "flag --scale: expected small|paper".to_string())?;
    let seed: u64 = args.num_flag("seed", dcc_experiments::DEFAULT_SEED)?;
    let err = CliError::Core;

    let out = match which.as_str() {
        "fig6" => dcc_experiments::fig6::run(&dcc_experiments::fig6::DEFAULT_MS)
            .map_err(err)?
            .table()
            .to_string(),
        "fig7" => dcc_experiments::fig7::run(scale, seed).table().to_string(),
        "fig8a" => dcc_experiments::fig8a::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "fig8b" => dcc_experiments::fig8b::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "fig8c" => dcc_experiments::fig8c::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "table2" => dcc_experiments::table2::run(scale, seed)
            .map_err(CliError::from)?
            .table()
            .to_string(),
        "table3" => dcc_experiments::table3::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "adaptive" => dcc_experiments::adaptive_ext::run(seed)
            .map_err(err)?
            .table()
            .to_string(),
        "sensitivity" => dcc_experiments::sensitivity::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "detection" => dcc_experiments::detection_quality::run(scale, seed)
            .table()
            .to_string(),
        "collusion" => dcc_experiments::collusion_ablation::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "baselines" => dcc_experiments::baselines_ext::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "budget" => dcc_experiments::budget_ext::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "risk" => dcc_experiments::risk_ext::run(&dcc_experiments::risk_ext::DEFAULT_EXPONENTS)
            .map_err(err)?
            .table()
            .to_string(),
        "adversarial" => dcc_experiments::adversarial::run(scale, seed)
            .map_err(err)?
            .table()
            .to_string(),
        "all" => {
            let trace = scale.generate(seed);
            let mut s = String::new();
            writeln!(s, "--- Fig. 6 ---").ok();
            s += &dcc_experiments::fig6::run(&dcc_experiments::fig6::DEFAULT_MS)
                .map_err(err)?
                .table()
                .to_string();
            writeln!(s, "--- Table II ---").ok();
            s += &dcc_experiments::table2::run_on(&trace)
                .map_err(CliError::from)?
                .table()
                .to_string();
            writeln!(s, "--- Fig. 7 ---").ok();
            s += &dcc_experiments::fig7::run_on(&trace).table().to_string();
            writeln!(s, "--- Table III ---").ok();
            s += &dcc_experiments::table3::run_on(&trace)
                .map_err(err)?
                .table()
                .to_string();
            writeln!(s, "--- Fig. 8(a) ---").ok();
            s += &dcc_experiments::fig8a::run_on(&trace, &dcc_experiments::fig8a::DEFAULT_MS)
                .map_err(err)?
                .table()
                .to_string();
            writeln!(s, "--- Fig. 8(b) ---").ok();
            s += &dcc_experiments::fig8b::run_on(&trace, &dcc_experiments::fig8b::DEFAULT_MUS)
                .map_err(err)?
                .table()
                .to_string();
            writeln!(s, "--- Fig. 8(c) ---").ok();
            s += &dcc_experiments::fig8c::run_on(&trace, &dcc_experiments::fig8b::DEFAULT_MUS)
                .map_err(err)?
                .table()
                .to_string();
            s
        }
        other => return Err(CliError::Usage(format!("unknown experiment {other:?}"))),
    };
    Ok(out)
}

/// `dcc replay TRACE_DIR [--mu F]` — trace-driven evaluation: design
/// contracts, then replay the recorded per-round feedback through them
/// (Eq. 1 accounting) instead of simulating best responses.
pub fn cmd_replay(args: &ParsedArgs) -> CliResult {
    let (mut ctx, sink) = engine_context(args)?;
    Engine::new().run_to(&mut ctx, StageKind::ConstructContracts)?;
    let outcome = dcc_core::replay_trace(
        ctx.trace()?,
        ctx.detection()?,
        ctx.design()?,
        &ctx.config().design.params,
    )?;
    let mut out = String::new();
    writeln!(
        out,
        "replayed {} (worker, round) observations over {} rounds",
        outcome.observations,
        outcome.rounds.len()
    )
    .ok();
    writeln!(out, "mean round utility {:.3}", outcome.mean_round_utility).ok();
    for r in outcome.rounds.iter().take(8) {
        writeln!(
            out,
            "  round {:>2}: benefit {:>12.2}  payment {:>10.2}  utility {:>12.2}",
            r.round, r.benefit, r.payment, r.requester_utility
        )
        .ok();
    }
    if let Some(sink) = &sink {
        sink.flush(&mut out)?;
    }
    Ok(out)
}

/// `dcc label [--workers N] [--items N] [--mu F]`
pub fn cmd_label(args: &ParsedArgs) -> CliResult {
    let mut config = MarketConfig::default();
    config.n_workers = args.num_flag("workers", config.n_workers)?;
    config.n_items = args.num_flag("items", config.n_items)?;
    config.params.mu = args.num_flag("mu", config.params.mu)?;
    config.seed = args.num_flag("seed", config.seed)?;
    let report = LabelMarket::new(config)
        .run()
        .map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(format!(
        "labeling market: contract accuracy {:.1}% (effort {:.2}, spend {:.2}) vs fixed-payment accuracy {:.1}%",
        100.0 * report.contract_accuracy,
        report.mean_effort,
        report.contract_spend,
        100.0 * report.fixed_accuracy
    ))
}

/// `dcc lint [PATHS...] [--root DIR] [--json] [--sarif FILE]
///  [--policy FILE] [--baseline FILE] [--update-baseline]` — runs the
/// dcc-lint determinism & numeric-safety analyzer. With no paths the
/// whole workspace under `--root` (default `.`) is walked, the
/// `metric-registry` cross-check runs, and the interprocedural
/// `determinism-taint` pass analyzes the call graph (laundering points
/// come from `--policy`, default `dcc-lint.policy` at the root when
/// present); with explicit paths only those files/directories are
/// checked with the token rules. `--sarif FILE` additionally writes a
/// SARIF 2.1.0 document for code scanning. `--baseline FILE` applies
/// the ratchet: the run fails on findings *not* in the baseline and on
/// baseline entries that no longer fire; `--update-baseline`
/// regenerates the file from current findings, preserving
/// justifications. Exit 0 when clean; exit 1 with the findings (text
/// or `--json`) otherwise.
pub fn cmd_lint(args: &ParsedArgs) -> CliResult {
    let root = PathBuf::from(args.str_flag("root", "."));
    let mut cfg = if args.positional.is_empty() {
        dcc_lint::Config::workspace(root)
    } else {
        dcc_lint::Config::explicit(
            root,
            args.positional.iter().map(PathBuf::from).collect(),
        )
    };
    let policy_flag = args.str_flag("policy", "");
    if !policy_flag.is_empty() {
        cfg.policy = Some(PathBuf::from(&policy_flag));
    }
    let report = dcc_lint::run(&cfg).map_err(CliError::Usage)?;

    let baseline_flag = args.str_flag("baseline", "");
    if args.bool_flag("update-baseline") {
        if baseline_flag.is_empty() {
            return Err(CliError::Usage(
                "--update-baseline requires --baseline FILE".to_string(),
            ));
        }
        let bpath = cfg.root.join(&baseline_flag);
        // A missing file is an empty baseline: every finding gets a
        // TODO justification to fill in.
        let prev_src = std::fs::read_to_string(&bpath).unwrap_or_default();
        let prev = dcc_lint::baseline::Baseline::parse(&baseline_flag, &prev_src)
            .map_err(CliError::Usage)?;
        let rendered = dcc_lint::baseline::render(&report.findings, &prev);
        std::fs::write(&bpath, &rendered)
            .map_err(|e| CliError::Failed(format!("write {}: {e}", bpath.display())))?;
        return Ok(format!(
            "dcc-lint: wrote {} with {} entr{}",
            baseline_flag,
            report.findings.len(),
            if report.findings.len() == 1 { "y" } else { "ies" }
        ));
    }

    let outcome = if baseline_flag.is_empty() {
        None
    } else {
        let bpath = cfg.root.join(&baseline_flag);
        // Unlike --update-baseline, ratchet mode refuses a missing
        // file: silently treating it as empty would flip every
        // baselined finding to fresh (or hide a typo'd path).
        let prev_src = std::fs::read_to_string(&bpath).map_err(|e| {
            CliError::Usage(format!("--baseline {}: {e}", bpath.display()))
        })?;
        let prev = dcc_lint::baseline::Baseline::parse(&baseline_flag, &prev_src)
            .map_err(CliError::Usage)?;
        Some(prev.apply(report.findings.clone()))
    };

    let sarif_flag = args.str_flag("sarif", "");
    if !sarif_flag.is_empty() {
        let doc = match &outcome {
            None => report.to_sarif(),
            Some(out) => {
                // Fresh findings are open results; baselined ones carry
                // an external suppression. Merge back into the global
                // (path, line, rule) order for determinism.
                let mut merged: Vec<dcc_lint::sarif::SarifResult<'_>> = out
                    .fresh
                    .iter()
                    .map(|f| dcc_lint::sarif::SarifResult {
                        finding: f,
                        justification: None,
                    })
                    .chain(out.suppressed.iter().map(|(f, j)| {
                        dcc_lint::sarif::SarifResult {
                            finding: f,
                            justification: Some(j.as_str()),
                        }
                    }))
                    .collect();
                merged.sort_by(|a, b| {
                    (a.finding.path.as_str(), a.finding.line, a.finding.rule)
                        .cmp(&(b.finding.path.as_str(), b.finding.line, b.finding.rule))
                });
                dcc_lint::sarif::render(&merged)
            }
        };
        std::fs::write(&sarif_flag, &doc)
            .map_err(|e| CliError::Failed(format!("write {sarif_flag}: {e}")))?;
    }

    match outcome {
        None => {
            let rendered = if args.bool_flag("json") {
                report.to_json()
            } else {
                report.to_text()
            };
            if report.findings.is_empty() {
                Ok(rendered)
            } else {
                Err(CliError::Failed(rendered))
            }
        }
        Some(out) => {
            let mut rendered = if args.bool_flag("json") {
                dcc_lint::report::render_json(&out.fresh, report.files_scanned)
            } else {
                // render_text appends its own summary line; strip it —
                // the ratchet summary below replaces it.
                let mut text = dcc_lint::report::render_text(&out.fresh, 0);
                if let Some(pos) = text.rfind("dcc-lint:") {
                    text.truncate(pos);
                }
                text
            };
            if !args.bool_flag("json") {
                for e in &out.stale {
                    rendered.push_str(&format!(
                        "{}:{}: [baseline] entry no longer fires: {} {}:{} — delete it\n",
                        baseline_flag, e.file_line, e.rule, e.path, e.line
                    ));
                }
                rendered.push_str(&format!(
                    "dcc-lint: {} files, {} fresh finding{}, {} baselined, {} stale baseline entr{}\n",
                    report.files_scanned,
                    out.fresh.len(),
                    if out.fresh.len() == 1 { "" } else { "s" },
                    out.suppressed.len(),
                    out.stale.len(),
                    if out.stale.len() == 1 { "y" } else { "ies" }
                ));
            }
            if out.clean() {
                Ok(rendered)
            } else {
                Err(CliError::Failed(rendered))
            }
        }
    }
}

/// `dcc check [--r2 F --r1 F --r0 F --mu F --omega F --weight F
///  --intervals N --ymax F]` — builds a contract for the given parameters
/// and verifies the §IV-C theory at runtime: best-response interval
/// membership, the Lemma 4.2/4.3 compensation bracket, and the
/// Theorem 4.1 utility bracket.
pub fn cmd_check(args: &ParsedArgs) -> CliResult {
    use dcc_core::{best_response, bounds, ContractBuilder, Discretization};
    use dcc_numerics::Quadratic;

    let psi = Quadratic::new(
        args.num_flag("r2", -0.15)?,
        args.num_flag("r1", 2.5)?,
        args.num_flag("r0", 1.0)?,
    );
    let params = ModelParams {
        mu: args.num_flag("mu", 1.0)?,
        omega: args.num_flag("omega", 0.0)?,
        beta: args.num_flag("beta", 1.0)?,
        ..ModelParams::default()
    };
    let weight: f64 = args.num_flag("weight", 1.5)?;
    let intervals: usize = args.num_flag("intervals", 20)?;
    let y_max: f64 = args.num_flag("ymax", {
        psi.peak().map(|p| 0.9 * p).unwrap_or(10.0)
    })?;
    let disc = Discretization::covering(intervals, y_max)?;

    let built = ContractBuilder::new(params, disc, psi)
        .malicious(params.omega)
        .weight(weight)
        .build()?;
    let mut out = String::new();
    writeln!(out, "psi = {psi}; region [0, {y_max:.3}) in {intervals} intervals").ok();
    writeln!(
        out,
        "k_opt = {:?}; induced effort {:.4}; compensation {:.4}; requester utility {:.4}",
        built.k_opt(),
        built.induced_effort(),
        built.compensation(),
        built.requester_utility()
    )
    .ok();

    // Runtime verification.
    let response = best_response(&params, &psi, built.contract())?;
    let mut checks = Vec::new();
    if let Some(k) = built.k_opt() {
        let in_interval = response.effort >= disc.knot(k - 1) - 1e-9
            && response.effort <= disc.knot(k) + 1e-9;
        checks.push(("best response in target interval", in_interval));
        let c_lo = bounds::compensation_lower_bound(&params, &disc, k);
        let c_hi = bounds::compensation_upper_bound(&params, &disc, &psi, k);
        if dcc_numerics::exact_eq(params.omega, 0.0) {
            checks.push((
                "Lemma 4.2/4.3 compensation bracket",
                built.compensation() >= c_lo - 1e-9 && built.compensation() <= c_hi + 1e-9,
            ));
        }
        writeln!(out, "compensation bracket: [{c_lo:.4}, {c_hi:.4}]").ok();
    }
    if let Some((lo, hi)) = built.utility_bounds() {
        checks.push((
            "Theorem 4.1 utility bracket",
            built.requester_utility() >= lo - 1e-9 && built.requester_utility() <= hi + 1e-9,
        ));
        writeln!(out, "Theorem 4.1 bracket: [{lo:.4}, {hi:.4}]").ok();
    }
    checks.push(("contract monotone", built.contract().is_monotone()));
    checks.push(("worker individually rational", built.worker_utility() >= -1e-9));

    let mut all_ok = true;
    for (name, ok) in checks {
        writeln!(out, "  [{}] {name}", if ok { "ok" } else { "FAIL" }).ok();
        all_ok &= ok;
    }

    if args.bool_flag("plot") {
        writeln!(out, "\ncontract (pay vs feedback):").ok();
        out.push_str(&ascii_plot(built.contract(), 60, 12));
    }

    if all_ok {
        writeln!(out, "all checks passed").ok();
        Ok(out)
    } else {
        Err(CliError::Failed(out))
    }
}

/// Renders a contract as a small ASCII chart: feedback on the x-axis,
/// payment on the y-axis.
fn ascii_plot(contract: &dcc_core::Contract, width: usize, height: usize) -> String {
    let knots = contract.feedback_knots();
    let (q_lo, q_hi) = match (knots.first(), knots.last()) {
        (Some(&lo), Some(&hi)) => (lo, hi),
        _ => return "(contract has no knots)\n".to_string(),
    };
    let pay_max = contract.max_payment().max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (col, q) in (0..width)
        .map(|c| q_lo + (q_hi - q_lo) * c as f64 / (width - 1).max(1) as f64)
        .enumerate()
    {
        let pay = contract.compensation(q);
        let row = ((1.0 - pay / pay_max) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{pay_max:>8.2} |")
        } else if i == height - 1 {
            format!("{:>8.2} |", 0.0)
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          +{}\n           {:<.2}{}{:>.2}\n",
        "-".repeat(width),
        q_lo,
        " ".repeat(width.saturating_sub(10)),
        q_hi
    ));
    out
}

/// The help text.
/// `dcc serve --replay TRACE | --events FILE [--pool N] [--verify]
///  [--checkpoint FILE [--kill-at N | --resume]] [--metrics FILE]
///  [design flags]`
///
/// The incremental streaming service: ingests `{"ev": ...}` JSON-line
/// events (or derives them from an existing trace with `--replay`) and
/// emits one JSON line per round boundary, recomputing only what
/// changed while staying bit-identical to the batch pipeline over the
/// same prefix (`--verify` asserts that at every round). With
/// `--checkpoint FILE` the event log is checkpointed atomically at
/// every round boundary; `--kill-at N` stops after `N` events
/// (simulating a crash) and `--resume` re-applies the checkpointed log
/// — the resumed run re-emits the restored rounds, so its full output
/// is byte-identical to an uninterrupted run (`make chaos-serve`).
pub fn cmd_serve(args: &ParsedArgs) -> CliResult {
    let design = design_config(args)?;
    let pipeline = PipelineConfig::default();
    let pool: usize = args.num_flag("pool", 1usize)?;
    let verify = args.bool_flag("verify");

    let events: Vec<ServeEvent> = if let Some(file) = args.flags.get("events") {
        let text = if file == "-" {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| CliError::Failed(format!("cannot read events from stdin: {e}")))?;
            buf
        } else {
            std::fs::read_to_string(file)
                .map_err(|e| CliError::Failed(format!("cannot read events {file}: {e}")))?
        };
        text.lines()
            .filter(|line| !line.trim().is_empty())
            .map(ServeEvent::parse_line)
            .collect::<Result<_, _>>()?
    } else if args.flags.contains_key("replay")
        || args.flags.contains_key("trace")
        || !args.positional.is_empty()
    {
        let path = args
            .flags
            .get("replay")
            .cloned()
            .or_else(|| args.flags.get("trace").cloned())
            .or_else(|| args.positional.first().cloned())
            .unwrap_or_default();
        events_from_trace(&read_any_trace(&path)?)
    } else {
        return Err(CliError::Usage(
            "serve needs an event source: --replay TRACE or --events FILE (\"-\" for stdin)"
                .into(),
        ));
    };

    let checkpoint = args.flags.get("checkpoint").map(PathBuf::from);
    let kill_at = if args.flags.contains_key("kill-at") {
        Some(args.num_flag("kill-at", 0usize)?)
    } else {
        None
    };
    let resume = args.bool_flag("resume");
    if (kill_at.is_some() || resume) && checkpoint.is_none() {
        return Err(CliError::Usage(
            "--kill-at/--resume require --checkpoint FILE".into(),
        ));
    }

    let sink = args.flags.get("metrics").map(|file| {
        let recorder = Arc::new(JsonRecorder::new());
        MetricsSink {
            recorder,
            path: PathBuf::from(file),
        }
    });
    let metrics = sink
        .as_ref()
        .map(|s| Metrics::new(s.recorder.clone()))
        .unwrap_or_default();

    let mut out = String::new();
    let (mut service, restored) = match &checkpoint {
        Some(path) if resume && path.is_file() => {
            let log = dcc_serve::load_checkpoint(path)?;
            ServeService::restore(pipeline, design, pool, verify, metrics.clone(), &log)?
        }
        _ => (
            ServeService::new(pipeline, design, pool, verify, metrics.clone())?,
            Vec::new(),
        ),
    };
    for round in &restored {
        writeln!(out, "{}", ServeService::output_line(round)).ok();
    }

    let skip = service.events_applied();
    let mut killed = false;
    for event in events.iter().skip(skip) {
        if let Some(n) = kill_at {
            if service.events_applied() >= n {
                killed = true;
                break;
            }
        }
        if let Some(round) = service.apply(event)? {
            writeln!(out, "{}", ServeService::output_line(&round)).ok();
            if let Some(path) = &checkpoint {
                dcc_serve::save_checkpoint(path, service.log())?;
                metrics.add(dcc_obs::names::COUNTER_SERVE_CKPT_SAVED, 1);
            }
        }
    }

    if killed {
        if let Some(path) = &checkpoint {
            dcc_serve::save_checkpoint(path, service.log())?;
            metrics.add(dcc_obs::names::COUNTER_SERVE_CKPT_SAVED, 1);
            writeln!(
                out,
                "serve: killed after {} events; checkpoint saved to {} (continue with --resume)",
                service.events_applied(),
                path.display()
            )
            .ok();
        }
    } else {
        writeln!(out, "{}", service.summary_line()).ok();
    }
    if let Some(sink) = &sink {
        sink.flush(&mut out)?;
    }
    Ok(out)
}

pub fn help() -> String {
    "dcc — dynamic contract design for heterogeneous crowdsourcing workers (ICDCS 2017)

USAGE: dcc <COMMAND> [ARGS]

COMMANDS:
  gen        --seed N --scale small|paper --out DIR    generate a synthetic trace
  summary    TRACE_DIR                                 dataset statistics
  detect     TRACE_DIR [--estimated --threshold F]     detection + clustering report
  design     TRACE_DIR [--mu F --omega F --intervals N --serial --pool N]
                                                       design all contracts
  simulate   TRACE_DIR [--strategy dynamic|exclude|fixed|collusion-proof --rounds N --noise F]
             [--fault-plan FILE] [--checkpoint FILE [--kill-at N | --resume]]
             [--policy abort|fallback|skip [--fallback-amount F]]
                                                       run the repeated game
  run        TRACE_DIR [design + simulate flags] [--pool N] [--metrics FILE]
                                                       full staged pipeline with
                                                       per-stage timings
  faults     gen [--agents N --rounds N --seed N --dropout F --missing F
             --corrupt F --nan F --delay F --out FILE] | show FILE
                                                       deterministic fault plans
  adversary  gen [--seed N --campaigns N --rounds N --split-prob F
             --merge-prob F --sybil-prob F --max-sybils N
             --underreport-prob F --min-factor F --out FILE] | show FILE |
             apply --plan FILE [--seed N --scale small|paper --out DIR]
                                                       deterministic adversary
                                                       plans (sybils, community
                                                       splits/merges,
                                                       under-reporting)
  trace      convert SRC DEST | info FILE              CSV dir <-> dcc-trace-col/1
                                                       columnar file; every TRACE
                                                       below accepts either form
  metrics    summarize FILE                            validate + summarize a
                                                       --metrics JSON document
  batch      GRID.json [--pool N | --serial] [--policy abort|fallback|skip]
             [--metrics FILE] [--max-retries N] [--scenario-budget UNITS]
             [--checkpoint FILE [--checkpoint-every N] [--kill-at K | --resume]]
                                                       run a dcc-batch/1 scenario
                                                       grid on the supervised
                                                       batch scheduler
  serve      --replay TRACE | --events FILE [--pool N] [--verify]
             [--checkpoint FILE [--kill-at N | --resume]] [--metrics FILE]
                                                       incremental streaming
                                                       service: one JSON line per
                                                       round, bit-identical to the
                                                       batch pipeline
  replay     TRACE_DIR [--mu F]                        trace-driven evaluation
  check      [--r2 F --r1 F --r0 F --mu F --omega F --weight F --intervals N]
                                                       verify the theory at runtime
  experiment fig6|fig7|fig8a|fig8b|fig8c|table2|table3|adaptive|sensitivity|
             detection|collusion|adversarial|all [--scale small|paper --seed N]
                                                       regenerate paper artifacts
  label      [--workers N --items N --mu F]            classification extension
  lint       [PATHS...] [--root DIR --json] [--sarif FILE] [--policy FILE]
             [--baseline FILE [--update-baseline]]     determinism & numeric-safety
                                                       static analysis with the
                                                       taint pass, SARIF output,
                                                       and the baseline ratchet
  help                                                 this text
"
    .to_string()
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &ParsedArgs) -> CliResult {
    match args.command.as_deref() {
        Some("gen") => cmd_gen(args),
        Some("summary") => cmd_summary(args),
        Some("detect") => cmd_detect(args),
        Some("design") => cmd_design(args),
        Some("simulate") => cmd_simulate(args),
        Some("run") => cmd_run(args),
        Some("faults") => cmd_faults(args),
        Some("adversary") => cmd_adversary(args),
        Some("trace") => cmd_trace(args),
        Some("metrics") => cmd_metrics(args),
        Some("batch") => cmd_batch(args),
        Some("serve") => cmd_serve(args),
        Some("replay") => cmd_replay(args),
        Some("check") => cmd_check(args),
        Some("experiment") => cmd_experiment(args),
        Some("label") => cmd_label(args),
        Some("lint") => cmd_lint(args),
        Some("help") | None => Ok(help()),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{}",
            help()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from))
    }

    fn temp_dir(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("dcc_cli_{tag}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn gen_summary_detect_design_simulate_roundtrip() {
        let dir = temp_dir("rt");
        let out = dispatch(&parse(&format!("gen --seed 5 --scale small --out {dir}"))).unwrap();
        assert!(out.contains("reviews"));

        let summary = dispatch(&parse(&format!("summary {dir}"))).unwrap();
        assert!(summary.contains("honest"));

        let detect = dispatch(&parse(&format!("detect {dir}"))).unwrap();
        assert!(detect.contains("communities"));

        let design = dispatch(&parse(&format!("design {dir} --mu 1.2"))).unwrap();
        assert!(design.contains("designed"));

        let budgeted =
            dispatch(&parse(&format!("design {dir} --mu 1.2 --budget 100"))).unwrap();
        assert!(budgeted.contains("funded"));

        let sim =
            dispatch(&parse(&format!("simulate {dir} --rounds 5 --strategy exclude"))).unwrap();
        assert!(sim.contains("mean round utility"));

        let replay = dispatch(&parse(&format!("replay {dir}"))).unwrap();
        assert!(replay.contains("replayed"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_convert_info_and_columnar_commands_roundtrip() {
        let dir = temp_dir("col");
        dispatch(&parse(&format!("gen --seed 9 --scale small --out {dir}/csv"))).unwrap();

        let col = format!("{dir}/trace.dcol");
        let out = dispatch(&parse(&format!("trace convert {dir}/csv {col}"))).unwrap();
        assert!(out.contains("dcc-trace-col/1"), "{out}");
        assert!(out.contains("checksum"), "{out}");

        let info = dispatch(&parse(&format!("trace info {col}"))).unwrap();
        assert!(info.contains("dcc-trace-col/1"), "{info}");
        assert!(info.contains("reviewers"), "{info}");

        // Every TRACE-taking command accepts the columnar file, and the
        // designs from the two formats agree word for word.
        let from_csv = dispatch(&parse(&format!("design {dir}/csv --mu 1.2"))).unwrap();
        let from_col = dispatch(&parse(&format!("design {col} --mu 1.2"))).unwrap();
        assert_eq!(from_csv, from_col);
        let summary = dispatch(&parse(&format!("summary {col}"))).unwrap();
        assert!(summary.contains("honest"));

        // Converting back to CSV reproduces the dataset bit-exactly.
        let back = format!("{dir}/csv2");
        dispatch(&parse(&format!("trace convert {col} {back}"))).unwrap();
        let a = dcc_trace::read_trace_csv(Path::new(&format!("{dir}/csv"))).unwrap();
        let b = dcc_trace::read_trace_csv(Path::new(&back)).unwrap();
        // The columnar encoding is deterministic, so byte equality of the
        // re-encodings is bit-exact dataset equality.
        assert_eq!(
            ColumnarTrace::from_dataset(&a).as_bytes(),
            ColumnarTrace::from_dataset(&b).as_bytes()
        );

        assert!(dispatch(&parse("trace")).is_err());
        assert!(dispatch(&parse("trace info /nonexistent.dcol")).is_err());
        assert!(dispatch(&parse("trace convert onlysrc")).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_command_reports_stages_and_outcome() {
        let dir = temp_dir("run");
        dispatch(&parse(&format!("gen --seed 6 --scale small --out {dir}"))).unwrap();

        let out = dispatch(&parse(&format!("run {dir} --rounds 5 --pool 4"))).unwrap();
        for stage in [
            "ingest",
            "detect",
            "fit-effort",
            "solve-subproblems",
            "construct-contracts",
            "simulate",
        ] {
            assert!(out.contains(stage), "missing stage {stage} in:\n{out}");
        }
        assert!(out.contains("designed"));
        assert!(out.contains("mean round utility"));

        // The pooled design is bit-identical to the sequential one: the
        // printed reports must agree word for word.
        let pooled = dispatch(&parse(&format!("design {dir} --pool 7"))).unwrap();
        let serial = dispatch(&parse(&format!("design {dir} --serial"))).unwrap();
        assert_eq!(pooled, serial);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_metrics_writes_a_valid_document_and_summarize_renders_it() {
        let dir = temp_dir("metrics");
        dispatch(&parse(&format!("gen --seed 8 --scale small --out {dir}"))).unwrap();
        let file = format!("{dir}/metrics.json");

        let out =
            dispatch(&parse(&format!("run {dir} --rounds 4 --pool 2 --metrics {file}"))).unwrap();
        assert!(out.contains("wrote metrics to"), "{out}");
        let text = std::fs::read_to_string(&file).unwrap();
        assert!(text.contains("\"schema\":\"dcc-obs/1\""));

        let summary = dispatch(&parse(&format!("metrics summarize {file}"))).unwrap();
        for stage in [
            "ingest",
            "detect",
            "fit-effort",
            "solve-subproblems",
            "construct-contracts",
            "simulate",
        ] {
            assert!(summary.contains(stage), "missing stage {stage} in:\n{summary}");
        }
        assert!(summary.contains("per-stage latency"));
        assert!(summary.contains("subproblem solves"));
        assert!(summary.contains("sim.rounds"));

        // The other engine commands accept --metrics too.
        let design =
            dispatch(&parse(&format!("design {dir} --metrics {file}"))).unwrap();
        assert!(design.contains("wrote metrics to"));
        let summary = dispatch(&parse(&format!("metrics summarize {file}"))).unwrap();
        assert!(summary.contains("construct-contracts"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_summarize_rejects_missing_files_bad_json_and_schema_violations() {
        assert!(dispatch(&parse("metrics summarize /nonexistent/metrics.json")).is_err());
        assert!(dispatch(&parse("metrics bogus")).is_err());
        assert_eq!(dispatch(&parse("metrics")).unwrap_err().exit_code(), 2);

        let dir = temp_dir("badmetrics");
        std::fs::create_dir_all(&dir).unwrap();
        let file = format!("{dir}/m.json");

        std::fs::write(&file, "{not json").unwrap();
        let err = dispatch(&parse(&format!("metrics summarize {file}"))).unwrap_err();
        assert!(err.to_string().contains("invalid JSON"), "{err}");

        std::fs::write(
            &file,
            "{\"schema\":\"dcc-obs/0\",\"spans\":[],\"events\":[],\
             \"counters\":{},\"gauges\":{},\"histograms\":{}}",
        )
        .unwrap();
        let err = dispatch(&parse(&format!("metrics summarize {file}"))).unwrap_err();
        assert!(err.to_string().contains("schema violation"), "{err}");

        std::fs::write(
            &file,
            "{\"schema\":\"dcc-obs/1\",\"spans\":[{\"id\":1}],\"events\":[],\
             \"counters\":{},\"gauges\":{},\"histograms\":{}}",
        )
        .unwrap();
        let err = dispatch(&parse(&format!("metrics summarize {file}"))).unwrap_err();
        assert!(err.to_string().contains("parent"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiment_fig6_runs() {
        let out = dispatch(&parse("experiment fig6")).unwrap();
        assert!(out.contains("upper bound"));
    }

    #[test]
    fn label_command_runs() {
        let out = dispatch(&parse("label --workers 9 --items 51")).unwrap();
        assert!(out.contains("accuracy"));
    }

    #[test]
    fn check_command_verifies_theory() {
        let out = dispatch(&parse("check --mu 1.2 --weight 2.0")).unwrap();
        assert!(out.contains("all checks passed"));
        let plotted = dispatch(&parse("check --mu 1.2 --weight 2.0 --plot")).unwrap();
        assert!(plotted.contains('*'), "plot should draw the contract");
        let malicious = dispatch(&parse("check --omega 0.5 --weight 1.0")).unwrap();
        assert!(malicious.contains("all checks passed"));
        // A convex psi must be rejected upstream.
        assert!(dispatch(&parse("check --r2 0.1")).is_err());
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(dispatch(&parse("bogus")).is_err());
        assert!(dispatch(&parse("help")).unwrap().contains("USAGE"));
        assert!(dispatch(&ParsedArgs::default()).unwrap().contains("USAGE"));
    }

    #[test]
    fn missing_trace_is_an_error() {
        let err = dispatch(&parse("summary /nonexistent/dcc")).unwrap_err();
        assert!(err.to_string().contains("cannot read trace"));
        assert_eq!(err.exit_code(), 1);
        let err = dispatch(&parse("summary")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "missing argument is a usage error");
    }

    #[test]
    fn faults_gen_and_show_round_trip() {
        let dir = temp_dir("faultplan");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = format!("{dir}/plan.json");
        let out = dispatch(&parse(&format!(
            "faults gen --agents 5 --rounds 10 --missing 0.2 --seed 3 --out {plan}"
        )))
        .unwrap();
        assert!(out.contains("wrote fault plan"));
        let shown = dispatch(&parse(&format!("faults show {plan}"))).unwrap();
        assert!(shown.contains("events"));
        assert!(dispatch(&parse("faults show /nonexistent/plan.json")).is_err());
        assert!(dispatch(&parse("faults bogus")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adversary_gen_show_apply_round_trip() {
        let dir = temp_dir("advplan");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = format!("{dir}/adversary.json");
        let out = dispatch(&parse(&format!(
            "adversary gen --campaigns 3 --rounds 6 --sybil-prob 1.0 --split-prob 0.5 --seed 11 --out {plan}"
        )))
        .unwrap();
        assert!(out.contains("wrote adversary plan"));
        let shown = dispatch(&parse(&format!("adversary show {plan}"))).unwrap();
        assert!(shown.contains("sybil influxes"));

        let trace_dir = format!("{dir}/trace");
        let applied = dispatch(&parse(&format!(
            "adversary apply --plan {plan} --seed 11 --scale small --out {trace_dir}"
        )))
        .unwrap();
        assert!(applied.contains("adversarial events"));
        let summary = dispatch(&parse(&format!("summary {trace_dir}"))).unwrap();
        assert!(summary.contains("honest"));

        assert!(dispatch(&parse("adversary show /nonexistent/plan.json")).is_err());
        assert!(dispatch(&parse("adversary apply")).is_err());
        assert!(dispatch(&parse("adversary bogus")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_kill_then_resume_matches_uninterrupted_run() {
        let dir = temp_dir("killresume");
        dispatch(&parse(&format!("gen --seed 9 --scale small --out {dir}"))).unwrap();
        let plan = format!("{dir}/plan.json");
        dispatch(&parse(&format!(
            "faults gen --agents 400 --rounds 8 --dropout 0.05 --missing 0.1 --corrupt 0.1 \
             --delay 0.1 --seed 4 --out {plan}"
        )))
        .unwrap();

        let base = format!("simulate {dir} --rounds 8 --fault-plan {plan}");
        let uninterrupted = dispatch(&parse(&base)).unwrap();

        let cp = format!("{dir}/sim.ckpt.json");
        let killed = dispatch(&parse(&format!("{base} --checkpoint {cp} --kill-at 4"))).unwrap();
        assert!(killed.contains("killed at round 4"), "{killed}");
        let resumed =
            dispatch(&parse(&format!("{base} --checkpoint {cp} --resume"))).unwrap();

        // The accounting line must agree exactly with the uninterrupted
        // run; only the per-invocation fired-fault count may differ.
        assert_eq!(
            uninterrupted.lines().next().unwrap(),
            resumed.lines().next().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_checkpoint_flag_misuse_is_a_usage_error() {
        let dir = temp_dir("ckptmisuse");
        dispatch(&parse(&format!("gen --seed 9 --scale small --out {dir}"))).unwrap();
        let err =
            dispatch(&parse(&format!("simulate {dir} --rounds 4 --kill-at 2"))).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err =
            dispatch(&parse(&format!("simulate {dir} --rounds 4 --resume"))).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_flags_parse_and_bogus_policy_is_rejected() {
        let p = parse("design x --policy fallback --fallback-amount 0.7");
        assert_eq!(
            failure_policy(&p).unwrap(),
            FailurePolicy::FallbackBaseline { amount: 0.7 }
        );
        assert_eq!(
            failure_policy(&parse("design x --policy skip")).unwrap(),
            FailurePolicy::Skip
        );
        assert_eq!(
            failure_policy(&parse("design x")).unwrap(),
            FailurePolicy::Abort
        );
        assert!(failure_policy(&parse("design x --policy sometimes")).is_err());
    }

    /// Writes a small CSV trace for the batch tests (much smaller than
    /// `dcc gen --scale small`, so the grid runs fast).
    fn tiny_trace_dir(tag: &str) -> String {
        let dir = temp_dir(tag);
        let mut cfg = dcc_trace::SyntheticConfig::small(7);
        cfg.n_honest = 14;
        cfg.n_ncm = 5;
        cfg.n_cm_target = 6;
        cfg.n_rounds = 2;
        cfg.n_products = 160;
        write_trace_csv(&cfg.generate(), Path::new(&dir)).unwrap();
        dir
    }

    #[test]
    fn batch_command_runs_a_grid_end_to_end() {
        let dir = tiny_trace_dir("batchrun");
        let spec = format!("{dir}/grid.json");
        std::fs::write(
            &spec,
            format!(
                r#"{{"schema": "dcc-batch/1",
                    "traces": [{{"csv": "{dir}", "label": "t"}}],
                    "mus": [1.5, 1.2],
                    "budget_fractions": [0.5, 1.0],
                    "strategies": ["dynamic", "fixed:0.75"],
                    "sim": {{"rounds": 3, "noise": 0.25, "seed": 9}}}}"#
            ),
        )
        .unwrap();

        let out = dispatch(&parse(&format!("batch {spec} --pool 4"))).unwrap();
        assert!(out.contains("batch: 8 scenarios, 0 failed"), "{out}");
        assert!(out.contains("sim-utility"), "{out}");
        assert!(out.contains("detect:miss"), "{out}");
        assert!(out.contains("detect:hit"), "{out}");
        // 4 scenarios per μ (2 fractions × 2 strategies) share one solve.
        assert!(out.contains("solve:miss"), "{out}");
        assert!(out.contains("solve:hit"), "{out}");
        assert!(out.contains("cache: trace"), "{out}");

        // Pool choice never changes the deterministic report.
        let serial = dispatch(&parse(&format!("batch {spec} --serial"))).unwrap();
        assert_eq!(out, serial);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_bad_grid_spec_is_a_usage_error_naming_the_field() {
        let dir = temp_dir("batchspec");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = format!("{dir}/grid.json");

        // Unknown field, DesignConfig-style naming, exit code 2.
        std::fs::write(&spec, r#"{"traces": [{"scale": "small"}], "mu": [1.0]}"#).unwrap();
        let err = dispatch(&parse(&format!("batch {spec}"))).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(
            err.to_string().contains("GridSpec has unknown field \"mu\""),
            "{err}"
        );

        // Invalid value inside a nested block is also named.
        std::fs::write(
            &spec,
            r#"{"traces": [{"scale": "small"}], "mus": [1.0], "sim": {"rounds": 0}}"#,
        )
        .unwrap();
        let err = dispatch(&parse(&format!("batch {spec}"))).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("GridSpec.sim.rounds"), "{err}");

        // Missing file is a runtime failure, missing argument a usage one.
        let err = dispatch(&parse("batch /nonexistent/grid.json")).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert_eq!(dispatch(&parse("batch")).unwrap_err().exit_code(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_abort_policy_fails_mid_batch_and_skip_itemizes() {
        let dir = tiny_trace_dir("batchpolicy");
        let spec = format!("{dir}/grid.json");
        // μ = -1 passes the spec but fails design validation at runtime.
        std::fs::write(
            &spec,
            format!(
                r#"{{"traces": [{{"csv": "{dir}"}}], "mus": [1.5, -1.0, 1.2]}}"#
            ),
        )
        .unwrap();

        let err = dispatch(&parse(&format!("batch {spec} --policy abort"))).unwrap_err();
        assert_eq!(err.exit_code(), 1, "mid-batch abort is a runtime failure");
        assert!(err.to_string().contains("scenario 1 failed"), "{err}");
        assert!(err.to_string().contains("mu must be positive"), "{err}");

        let out = dispatch(&parse(&format!("batch {spec} --policy skip"))).unwrap();
        assert!(out.contains("batch: 3 scenarios, 1 failed"), "{out}");
        assert!(out.contains("ERROR: "), "{out}");
        assert!(out.contains("mu must be positive"), "{out}");
        // Terminal failures are itemized in the quarantine section.
        assert!(out.contains("quarantine: 1 scenarios"), "{out}");
        assert!(out.contains("error after 1 attempt:"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_supervision_flag_misuse_is_a_usage_error() {
        let dir = tiny_trace_dir("batchsupmisuse");
        let spec = format!("{dir}/grid.json");
        std::fs::write(
            &spec,
            format!(r#"{{"traces": [{{"csv": "{dir}"}}], "mus": [1.5]}}"#),
        )
        .unwrap();
        for flags in [
            "--kill-at 1".to_string(),
            "--resume".to_string(),
            format!("--checkpoint {dir}/b.ckpt --kill-at 1 --resume"),
        ] {
            let err = dispatch(&parse(&format!("batch {spec} {flags}"))).unwrap_err();
            assert_eq!(err.exit_code(), 2, "batch {flags}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_kill_and_resume_reproduce_the_uninterrupted_output() {
        let dir = tiny_trace_dir("batchkill");
        let spec = format!("{dir}/grid.json");
        let ckpt = format!("{dir}/batch.ckpt");
        std::fs::write(
            &spec,
            format!(
                r#"{{"traces": [{{"csv": "{dir}"}}],
                    "mus": [1.5, 1.2, 1.0],
                    "budget_fractions": [0.5, 1.0]}}"#
            ),
        )
        .unwrap();

        let full = dispatch(&parse(&format!("batch {spec} --serial"))).unwrap();

        let killed = dispatch(&parse(&format!(
            "batch {spec} --serial --checkpoint {ckpt} --kill-at 2"
        )))
        .unwrap();
        assert!(killed.contains("killed after"), "{killed}");
        assert!(killed.contains("continue with --resume"), "{killed}");

        let resumed = dispatch(&parse(&format!(
            "batch {spec} --serial --checkpoint {ckpt} --resume"
        )))
        .unwrap();
        assert_eq!(resumed, full, "resumed output must be byte-identical");

        // A checkpoint written by a different grid is refused (exit 1).
        let other = format!("{dir}/other.json");
        std::fs::write(
            &other,
            format!(r#"{{"traces": [{{"csv": "{dir}"}}], "mus": [2.0]}}"#),
        )
        .unwrap();
        let err = dispatch(&parse(&format!(
            "batch {other} --checkpoint {ckpt} --resume"
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_metrics_document_validates_against_the_obs_schema() {
        let dir = tiny_trace_dir("batchmetrics");
        let spec = format!("{dir}/grid.json");
        let file = format!("{dir}/metrics.json");
        std::fs::write(
            &spec,
            format!(r#"{{"traces": [{{"csv": "{dir}"}}], "mus": [1.5, 1.2]}}"#),
        )
        .unwrap();

        let out =
            dispatch(&parse(&format!("batch {spec} --pool 2 --metrics {file}"))).unwrap();
        assert!(out.contains("wrote metrics to"), "{out}");

        let text = std::fs::read_to_string(&file).unwrap();
        let doc = Json::parse(&text).expect("metrics document parses");
        validate_metrics_doc(&doc).expect("metrics document matches dcc-obs/1");
        for name in [
            dcc_obs::names::COUNTER_BATCH_SCENARIOS,
            dcc_obs::names::COUNTER_BATCH_DETECT_HIT,
            dcc_obs::names::COUNTER_BATCH_SOLVE_MISS,
            dcc_obs::names::GAUGE_BATCH_POOL,
            dcc_obs::names::HIST_BATCH_SCENARIO_US,
            dcc_obs::names::SPAN_BATCH_SCENARIO,
        ] {
            assert!(text.contains(name), "metrics document lacks {name}:\n{text}");
        }
        // And the generic summarizer accepts it.
        let summary = dispatch(&parse(&format!("metrics summarize {file}"))).unwrap();
        assert!(summary.contains("batch.scenarios"), "{summary}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(dispatch(&parse("gen --scale huge")).is_err());
        assert!(dispatch(&parse("experiment bogus")).is_err());
        let dir = temp_dir("badflags");
        dispatch(&parse(&format!("gen --out {dir}"))).unwrap();
        assert!(dispatch(&parse(&format!("simulate {dir} --strategy nope"))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
