//! Minimal flag parser (the offline crate set has no `clap`).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` flags (`--key` alone is a boolean flag).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// Flag map; boolean flags map to `"true"`.
    pub flags: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses an argument vector (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> ParsedArgs {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                    iter.next().unwrap_or_else(|| "true".to_string())
                } else {
                    "true".to_string()
                };
                parsed.flags.insert(key.to_string(), value);
            } else if parsed.command.is_none() {
                parsed.command = Some(arg);
            } else {
                parsed.positional.push(arg);
            }
        }
        parsed
    }

    /// A string flag with default.
    pub fn str_flag(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// A parsed numeric flag with default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn num_flag<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse {v:?}")),
        }
    }

    /// Whether a boolean flag is present.
    pub fn bool_flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_flags_positional() {
        let p = parse("design trace_dir --mu 1.5 --parallel --intervals 40");
        assert_eq!(p.command.as_deref(), Some("design"));
        assert_eq!(p.positional, vec!["trace_dir"]);
        assert_eq!(p.str_flag("mu", "1.0"), "1.5");
        assert!(p.bool_flag("parallel"));
        assert_eq!(p.num_flag("intervals", 20usize).unwrap(), 40);
    }

    #[test]
    fn defaults_apply() {
        let p = parse("gen");
        assert_eq!(p.num_flag("seed", 42u64).unwrap(), 42);
        assert_eq!(p.str_flag("scale", "small"), "small");
        assert!(!p.bool_flag("estimated"));
    }

    #[test]
    fn bad_numeric_flag_is_an_error() {
        let p = parse("gen --seed abc");
        assert!(p.num_flag("seed", 0u64).is_err());
    }

    #[test]
    fn empty_args() {
        let p = parse("");
        assert_eq!(p.command, None);
        assert!(p.positional.is_empty());
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let p = parse("sim --verbose --rounds 5");
        assert!(p.bool_flag("verbose"));
        assert_eq!(p.num_flag("rounds", 0usize).unwrap(), 5);
    }
}
