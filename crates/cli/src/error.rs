//! The CLI's error type: every failure path returns a [`CliError`]
//! instead of panicking, and `main` maps the variant to an exit code
//! (`2` for usage mistakes, `1` for runtime failures) — the tool never
//! unwinds on user input.

use dcc_core::CoreError;
use dcc_engine::EngineError;
use std::fmt;

/// A failure surfaced to the terminal user.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong (unknown command, bad flag
    /// value, missing argument). Exit code 2.
    Usage(String),
    /// A pipeline stage failed (design, simulation, checkpoint IO, ...).
    /// Exit code 1.
    Core(CoreError),
    /// The command ran but its verdict is failure (e.g. `dcc check`
    /// found a violated bound); the message is the full report. Exit
    /// code 1.
    Failed(String),
}

impl CliError {
    /// The process exit code for this failure.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Core(_) | CliError::Failed(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

// Engine configuration mistakes (e.g. `--resume` without a checkpoint)
// are the user's, so they exit with code 2 like any other usage error;
// everything else from the engine is a runtime failure.
impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Config(m) => CliError::Usage(m),
            EngineError::Core(c) => CliError::Core(c),
            other => CliError::Failed(other.to_string()),
        }
    }
}

// The minimal flag parser reports bad flag values as plain strings;
// those are always usage mistakes.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_usage_from_failure() {
        assert_eq!(CliError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(
            CliError::Core(CoreError::InvalidInput("x".into())).exit_code(),
            1
        );
        assert_eq!(CliError::Failed("report".into()).exit_code(), 1);
    }

    #[test]
    fn engine_errors_keep_their_exit_codes() {
        let usage = CliError::from(EngineError::Config(
            "--resume requires --checkpoint FILE".into(),
        ));
        assert_eq!(usage.exit_code(), 2);
        let core = CliError::from(EngineError::Core(CoreError::InvalidInput("x".into())));
        assert_eq!(core.exit_code(), 1);
        let ingest = CliError::from(EngineError::Ingest("cannot read trace".into()));
        assert_eq!(ingest.exit_code(), 1);
    }

    #[test]
    fn display_and_source() {
        let e = CliError::from(CoreError::InvalidInput("bad".into()));
        assert_eq!(e.to_string(), "invalid input: bad");
        assert!(std::error::Error::source(&e).is_some());
        let u = CliError::from(String::from("flag --x: cannot parse"));
        assert!(matches!(u, CliError::Usage(_)));
        assert!(std::error::Error::source(&u).is_none());
    }
}
