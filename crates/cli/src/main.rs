//! `dcc` — the dyncontract command-line tool.

mod args;
mod commands;

use args::ParsedArgs;
use std::io::Write;

fn main() {
    let parsed = ParsedArgs::parse(std::env::args().skip(1));
    match commands::dispatch(&parsed) {
        Ok(report) => {
            // Tolerate a closed pipe (e.g. `dcc ... | head`).
            let _ = writeln!(std::io::stdout(), "{report}");
        }
        Err(message) => {
            let _ = writeln!(std::io::stderr(), "error: {message}");
            std::process::exit(1);
        }
    }
}
