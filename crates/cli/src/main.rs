//! `dcc` — the dyncontract command-line tool.

mod args;
mod commands;
mod error;

use args::ParsedArgs;
use std::io::Write;

fn main() {
    let parsed = ParsedArgs::parse(std::env::args().skip(1));
    match commands::dispatch(&parsed) {
        Ok(report) => {
            // Tolerate a closed pipe (e.g. `dcc ... | head`).
            let _ = writeln!(std::io::stdout(), "{report}");
        }
        Err(err) => {
            let _ = writeln!(std::io::stderr(), "error: {err}");
            // Usage mistakes exit 2, runtime failures exit 1 — and
            // nothing in the command path panics on user input.
            std::process::exit(err.exit_code());
        }
    }
}
