//! Integration tests: the staged engine must reproduce the hand-wired
//! `run_pipeline → design_contracts → Simulation` chain bit-exactly,
//! cache stage outputs with precise invalidation, accept swapped-in
//! custom stages, and thread the checkpoint/kill/resume protocol
//! through unchanged.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
#![allow(clippy::float_cmp)]

use dcc_core::{
    design_contracts, BaselineStrategy, DesignConfig, NoFaults, Simulation, SimulationConfig,
    StrategyKind,
};
use dcc_detect::{
    run_pipeline, CollusionReport, DetectionResult, FeedbackWeights, PipelineConfig, WeightParams,
};
use dcc_engine::{
    Engine, EngineConfig, EngineError, EngineSimOutcome, PoolSize, RoundContext, SimOptions,
    Stage, StageKind,
};
use dcc_trace::{SyntheticConfig, TraceDataset};
use std::collections::BTreeSet;

fn trace() -> TraceDataset {
    SyntheticConfig::small(2024).generate()
}

fn context(trace: TraceDataset) -> RoundContext {
    RoundContext::new(EngineConfig::for_trace(trace))
}

#[test]
fn engine_matches_hand_wired_chain_bit_exactly() {
    let trace = trace();

    // Hand-wired reference chain (the pre-engine consumer idiom).
    let detection = run_pipeline(&trace, PipelineConfig::default());
    let config = DesignConfig::default();
    let design = design_contracts(&trace, &detection, &config).unwrap();
    let suspected: BTreeSet<_> = detection.suspected.iter().copied().collect();
    let agents = BaselineStrategy::new(StrategyKind::DynamicContract)
        .assemble(&design, config.params.omega, &suspected, &trace)
        .unwrap();
    let reference = Simulation::new(config.params, SimulationConfig::default())
        .run_with_faults(&agents, &mut NoFaults)
        .unwrap();

    // Engine over the same trace and defaults.
    let mut ctx = context(trace);
    Engine::new().run(&mut ctx).unwrap();

    let engine_design = ctx.design().unwrap();
    assert_eq!(engine_design.agents.len(), design.agents.len());
    assert_eq!(
        engine_design.total_requester_utility.to_bits(),
        design.total_requester_utility.to_bits()
    );
    match ctx.sim_outcome().unwrap() {
        EngineSimOutcome::Completed { outcome, .. } => assert_eq!(*outcome, reference),
        other => panic!("expected a completed simulation, got {other:?}"),
    }
}

#[test]
fn stage_outputs_are_cached_and_mu_sweep_keeps_fits() {
    let mut ctx = context(trace());
    let engine = Engine::new();

    let first = engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(first.stages.iter().all(|s| !s.cached));

    // Second run: everything up to the requested stage is served from
    // cache.
    let second = engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(second.stages.iter().all(|s| s.cached));

    // A μ change re-solves but keeps ingest, detection, and the ψ-fits.
    let baseline_utility = ctx.design().unwrap().total_requester_utility;
    ctx.set_mu(6.0);
    let swept = engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(swept.was_cached(StageKind::Ingest));
    assert!(swept.was_cached(StageKind::Detect));
    assert!(swept.was_cached(StageKind::FitEffort));
    assert!(!swept.was_cached(StageKind::SolveSubproblems));
    assert!(!swept.was_cached(StageKind::ConstructContracts));
    assert_ne!(
        ctx.design().unwrap().total_requester_utility,
        baseline_utility,
        "a 4x μ change must alter the designed utility"
    );

    // A fit-relevant change (intervals) discards the fits too.
    let mut design = ctx.config().design;
    design.intervals += 5;
    ctx.set_design_config(design);
    let refit = engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(refit.was_cached(StageKind::Detect));
    assert!(!refit.was_cached(StageKind::FitEffort));
}

#[test]
fn pool_size_changes_never_invalidate_and_stay_bit_identical() {
    let mut ctx = context(trace());
    let engine = Engine::new();
    ctx.set_pool(PoolSize::Sequential);
    engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    let sequential = ctx.design().unwrap().clone();

    // Changing the pool must not discard the cache…
    ctx.set_pool(PoolSize::Fixed(8));
    let report = engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(report.was_cached(StageKind::SolveSubproblems));

    // …and a forced re-solve at pool 8 is bit-identical anyway.
    ctx.invalidate_from(StageKind::SolveSubproblems);
    engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    let pooled = ctx.design().unwrap();
    assert_eq!(pooled.solution, sequential.solution);
    assert_eq!(
        pooled.total_requester_utility.to_bits(),
        sequential.total_requester_utility.to_bits()
    );
}

/// A collusion-blind detect stage: keeps the default pipeline's suspect
/// set but dissolves every community into singletons (the
/// collusion-ablation experiment's counterfactual).
struct BlindDetect;

impl Stage for BlindDetect {
    fn kind(&self) -> StageKind {
        StageKind::Detect
    }

    fn name(&self) -> &'static str {
        "blind-detect"
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let aware = run_pipeline(ctx.trace()?, ctx.config().pipeline);
        let collusion = CollusionReport {
            communities: Vec::new(),
            singletons: aware.suspected.clone(),
        };
        let weights = FeedbackWeights::compute(
            ctx.trace()?,
            &aware.consensus,
            &aware.estimates,
            &collusion,
            WeightParams::default(),
        );
        ctx.set_detection(DetectionResult {
            consensus: aware.consensus,
            estimates: aware.estimates,
            suspected: aware.suspected,
            collusion,
            weights,
        });
        Ok(())
    }
}

#[test]
fn swapped_detect_stage_changes_the_design() {
    let trace = trace();

    let mut default_ctx = context(trace.clone());
    Engine::new()
        .run_to(&mut default_ctx, StageKind::ConstructContracts)
        .unwrap();

    let blind_engine = Engine::new().with_stage(Box::new(BlindDetect));
    assert!(blind_engine.stage_names().contains(&"blind-detect"));
    let mut blind_ctx = context(trace);
    let report = blind_engine
        .run_to(&mut blind_ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(report.stages.iter().any(|s| s.name == "blind-detect"));

    let aware = default_ctx.design().unwrap();
    let blind = blind_ctx.design().unwrap();
    assert!(
        blind_ctx.detection().unwrap().collusion.communities.is_empty(),
        "the blind detector must not see communities"
    );
    assert!(
        !aware.solution.solutions.is_empty() && !blind.solution.solutions.is_empty()
    );
    assert_ne!(
        aware.solution.solutions.len(),
        blind.solution.solutions.len(),
        "dissolving communities must change the decomposition"
    );
}

#[test]
fn kill_and_resume_through_engine_matches_uninterrupted_run() {
    let trace = trace();
    let dir = std::env::temp_dir().join(format!("dcc_engine_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("state.json");

    // Uninterrupted reference.
    let mut ctx = context(trace.clone());
    Engine::new().run(&mut ctx).unwrap();
    let reference = match ctx.sim_outcome().unwrap() {
        EngineSimOutcome::Completed { outcome, .. } => outcome.clone(),
        other => panic!("expected completion, got {other:?}"),
    };

    // Killed at round 4…
    let mut killed_ctx = context(trace.clone());
    killed_ctx.set_sim_options(SimOptions {
        checkpoint: Some(checkpoint.clone()),
        kill_at: Some(4),
        ..SimOptions::default()
    });
    Engine::new().run(&mut killed_ctx).unwrap();
    match killed_ctx.sim_outcome().unwrap() {
        EngineSimOutcome::Killed {
            at_round,
            total_rounds,
            checkpoint: cp,
        } => {
            assert_eq!(*at_round, 4);
            assert_eq!(*total_rounds, 20);
            assert_eq!(cp, &checkpoint);
        }
        other => panic!("expected a kill, got {other:?}"),
    }

    // …then resumed: the outcome must match the reference bit-exactly.
    let mut resumed_ctx = context(trace);
    resumed_ctx.set_sim_options(SimOptions {
        checkpoint: Some(checkpoint.clone()),
        resume: true,
        ..SimOptions::default()
    });
    Engine::new().run(&mut resumed_ctx).unwrap();
    match resumed_ctx.sim_outcome().unwrap() {
        EngineSimOutcome::Completed { outcome, .. } => assert_eq!(*outcome, reference),
        other => panic!("expected completion, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_flag_misuse_is_a_config_error() {
    for options in [
        SimOptions {
            resume: true,
            ..SimOptions::default()
        },
        SimOptions {
            kill_at: Some(3),
            ..SimOptions::default()
        },
    ] {
        let mut ctx = context(trace());
        ctx.set_sim_options(options);
        let err = Engine::new().run(&mut ctx).unwrap_err();
        assert!(
            matches!(err, EngineError::Config(ref msg) if msg.contains("--checkpoint")),
            "expected a config error naming --checkpoint, got {err:?}"
        );
    }
}

#[test]
fn missing_output_is_a_typed_error() {
    let ctx = context(trace());
    let err = ctx.design().unwrap_err();
    assert!(matches!(
        err,
        EngineError::MissingOutput {
            stage: StageKind::ConstructContracts
        }
    ));
    let msg = err.to_string();
    assert!(msg.contains("construct-contracts"), "got: {msg}");
}

#[test]
fn trace_delta_invalidates_downstream_and_tracks_dirty_workers() {
    let mut ctx = context(trace());
    let engine = Engine::new();
    engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();

    // Evolve the trace by one review and publish the delta.
    let mut evolved = ctx.trace().unwrap().clone();
    let rv = evolved.reviews()[0].clone();
    let worker = rv.reviewer;
    evolved.push_review(rv).unwrap();
    ctx.set_trace_incremental(evolved, [worker]);

    // Ingest keeps its (new) output; everything downstream is cleared
    // and attributed to the delta.
    assert!(ctx.has(StageKind::Ingest));
    assert!(!ctx.has(StageKind::Detect));
    assert!(!ctx.has(StageKind::ConstructContracts));
    assert_eq!(ctx.invalidation_cause(StageKind::Detect), Some("trace_delta"));
    assert_eq!(
        ctx.invalidation_cause(StageKind::ConstructContracts),
        Some("trace_delta")
    );

    // The dirty set accumulates until drained, then starts clean.
    assert!(ctx.dirty_workers().contains(&worker));
    ctx.mark_workers_dirty([worker]);
    assert_eq!(ctx.dirty_workers().len(), 1);
    let drained = ctx.take_dirty_workers();
    assert!(drained.contains(&worker));
    assert!(ctx.dirty_workers().is_empty());

    // Re-running reuses the ingest slot and recomputes the rest.
    let report = engine
        .run_to(&mut ctx, StageKind::ConstructContracts)
        .unwrap();
    assert!(report.was_cached(StageKind::Ingest));
    assert!(!report.was_cached(StageKind::Detect));
}
