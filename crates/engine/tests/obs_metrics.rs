//! Observability integration: the engine's metric stream must agree
//! with what the pipeline actually did — six stage spans with cache
//! flags and invalidation causes, per-subproblem solve spans, per-round
//! simulation events, and degraded-mode / fault-injection accounting
//! that matches the `DegradationReport` and the injector log exactly.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_core::{DegradationAction, FailurePolicy, Simulation};
use dcc_engine::{Engine, EngineConfig, EngineSimOutcome, PoolSize, RoundContext, SimOptions};
use dcc_faults::{FaultInjector, FaultPlanConfig};
use dcc_numerics::Quadratic;
use dcc_obs::{names, JsonRecorder, Metrics};
use dcc_trace::SyntheticConfig;
use std::sync::Arc;

fn small_config(seed: u64) -> EngineConfig {
    let mut synth = SyntheticConfig::small(seed);
    synth.n_honest = 14;
    synth.n_ncm = 5;
    synth.n_cm_target = 6;
    synth.n_rounds = 2;
    synth.n_products = 160;
    let mut config = EngineConfig::for_trace(synth.generate());
    config.design.intervals = 8;
    config.pool = PoolSize::Fixed(3);
    config.sim.rounds = 8;
    config
}

fn recording_ctx(config: EngineConfig) -> (Arc<JsonRecorder>, RoundContext) {
    let recorder = Arc::new(JsonRecorder::new());
    let mut ctx = RoundContext::new(config);
    ctx.set_metrics(Metrics::new(recorder.clone()));
    (recorder, ctx)
}

#[test]
fn all_six_stages_emit_spans_with_cache_flags_and_causes() {
    let (recorder, mut ctx) = recording_ctx(small_config(11));
    Engine::new().run(&mut ctx).unwrap();
    assert_eq!(recorder.span_count(names::SPAN_ENGINE_RUN), 1);
    assert_eq!(recorder.span_count(names::SPAN_STAGE), 6);
    let json = recorder.to_json();
    for stage in [
        "ingest",
        "detect",
        "fit-effort",
        "solve-subproblems",
        "construct-contracts",
        "simulate",
    ] {
        assert!(
            json.contains(&format!("\"stage\":\"{stage}\"")),
            "missing span for stage {stage}"
        );
    }
    // A cold run computes everything: no cache hits, cause "initial".
    assert!(json.contains("\"cached\":false"));
    assert!(!json.contains("\"cached\":true"));
    assert!(json.contains("\"cause\":\"initial\""));
    // Per-subproblem solve spans rode along, nested under the engine run.
    assert!(recorder.span_count(names::SPAN_SUBPROBLEM) > 0);
    assert!(json.contains("\"iterations\":"));

    // A second run over the warm context is all cache hits.
    Engine::new().run(&mut ctx).unwrap();
    assert_eq!(recorder.span_count(names::SPAN_STAGE), 12);
    let json = recorder.to_json();
    assert!(json.contains("\"cached\":true"));
    assert!(json.contains("\"cause\":\"cached\""));
}

#[test]
fn mu_sweep_spans_carry_the_invalidation_cause() {
    let (recorder, mut ctx) = recording_ctx(small_config(11));
    let engine = Engine::new();
    engine.run(&mut ctx).unwrap();
    ctx.set_mu(0.9);
    engine.run(&mut ctx).unwrap();
    let json = recorder.to_json();
    assert!(json.contains("\"cause\":\"set_mu\""), "re-solved stages name set_mu");
    assert!(json.contains("\"cause\":\"cached\""), "detection and fits stayed cached");
    assert_eq!(recorder.span_count(names::SPAN_STAGE), 12);
}

#[test]
fn degraded_mode_counters_match_the_degradation_report() {
    let mut config = small_config(52);
    config.design.failure_policy = FailurePolicy::FallbackBaseline { amount: 0.5 };
    let (recorder, mut ctx) = recording_ctx(config);
    let engine = Engine::new();

    // Fit, then corrupt one subproblem's psi so its solve must degrade.
    engine
        .run_to(&mut ctx, dcc_engine::StageKind::FitEffort)
        .unwrap();
    let mut prep = ctx.prep().unwrap().clone();
    prep.subproblems[1].psi = Quadratic::new(f64::NAN, 1.0, 0.0);
    ctx.set_prep(prep);
    engine.run(&mut ctx).unwrap();

    let report = &ctx.design().unwrap().degradation;
    assert_eq!(report.len(), 1, "exactly the corrupted subproblem degrades");
    assert!(matches!(
        report.degraded[0].action,
        DegradationAction::Fallback { .. }
    ));
    // The dcc-obs counters must agree with the report, one-for-one.
    assert_eq!(
        recorder.counter(names::COUNTER_SOLVE_DEGRADED),
        report.len() as u64
    );
    assert_eq!(recorder.counter(names::COUNTER_SOLVE_DEGRADED_FALLBACK), 1);
    assert_eq!(recorder.counter(names::COUNTER_SOLVE_DEGRADED_SKIPPED), 0);
    // The construct stage itemizes the same degradations as events.
    assert_eq!(
        recorder.event_count(names::EVENT_DESIGN_DEGRADED),
        report.len()
    );
    let json = recorder.to_json();
    assert!(json.contains("\"action\":\"fallback\""));
}

#[test]
fn fault_hit_counters_match_an_independent_injector_recount() {
    let mut config = small_config(97);
    let plan = FaultPlanConfig {
        agents: 25,
        rounds: 8,
        seed: 7,
        ..FaultPlanConfig::default()
    }
    .generate()
    .expect("default probabilities are valid");
    config.sim_options = SimOptions {
        fault_plan: plan.clone(),
        ..SimOptions::default()
    };
    let (recorder, mut ctx) = recording_ctx(config.clone());
    Engine::new().run(&mut ctx).unwrap();

    let EngineSimOutcome::Completed {
        faults_scheduled,
        faults_fired,
        ..
    } = ctx.sim_outcome().unwrap()
    else {
        panic!("no kill-at configured, the run completes");
    };
    assert_eq!(*faults_scheduled, plan.len());
    assert_eq!(
        recorder.gauge_value(names::GAUGE_FAULTS_SCHEDULED),
        Some(plan.len() as f64)
    );
    // Counter vs. the engine's own accounting.
    assert_eq!(
        recorder.counter(names::COUNTER_FAULTS_FIRED),
        *faults_fired as u64
    );

    // Independent recount: replay the same simulation outside the engine
    // with a fresh injector and compare per-kind totals.
    let design = ctx.design().unwrap();
    let suspected = ctx.detection().unwrap().suspected.iter().copied().collect();
    let agents = dcc_core::BaselineStrategy::new(config.strategy)
        .assemble(design, config.design.params.omega, &suspected, ctx.trace().unwrap())
        .unwrap();
    let sim = Simulation::new(config.design.params, config.sim);
    let mut injector = FaultInjector::new(&plan);
    sim.run_with_faults(&agents, &mut injector).unwrap();
    let counts = injector.hit_counts();
    assert_eq!(counts.total(), *faults_fired, "engine vs replay log length");
    assert_eq!(
        recorder.counter(names::COUNTER_FAULTS_DROPPED),
        counts.dropped as u64
    );
    assert_eq!(
        recorder.counter(names::COUNTER_FAULTS_LOST),
        counts.lost_feedback as u64
    );
    assert_eq!(
        recorder.counter(names::COUNTER_FAULTS_CORRUPTED),
        counts.corrupted_feedback as u64
    );
    assert_eq!(
        recorder.counter(names::COUNTER_FAULTS_DELAYED),
        counts.delayed_payments as u64
    );
}

#[test]
fn per_round_events_cover_the_whole_horizon() {
    let (recorder, mut ctx) = recording_ctx(small_config(11));
    Engine::new().run(&mut ctx).unwrap();
    let rounds = ctx.config().sim.rounds;
    assert_eq!(recorder.counter(names::COUNTER_SIM_ROUNDS), rounds as u64);
    assert_eq!(recorder.event_count(names::EVENT_SIM_ROUND), rounds);
    let json = recorder.to_json();
    assert!(json.contains("\"u_req\":"));
    assert!(json.contains("\"benefit\":"));
    assert!(json.contains("\"payment\":"));
}

#[test]
fn metrics_never_perturb_the_pipeline_output() {
    let plain = {
        let mut ctx = RoundContext::new(small_config(11));
        Engine::new().run(&mut ctx).unwrap();
        ctx.sim_outcome().unwrap().clone()
    };
    let (_, mut ctx) = recording_ctx(small_config(11));
    Engine::new().run(&mut ctx).unwrap();
    assert_eq!(ctx.sim_outcome().unwrap(), &plain);
}
