//! Determinism properties of the parallel solve stage: for any seed and
//! any worker-pool size — including under degraded subproblems with
//! `FailurePolicy::FallbackBaseline` and under an injected fault plan —
//! the pooled solve and the full engine run must be **bit-identical** to
//! the sequential path.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_core::{
    prepare_design, solve_subproblems_pooled, DesignConfig, DesignPrep, FailurePolicy,
};
use dcc_detect::{run_pipeline, DetectionResult, PipelineConfig};
use dcc_engine::{Engine, EngineConfig, EngineSimOutcome, PoolSize, RoundContext, SimOptions};
use dcc_faults::FaultPlanConfig;
use dcc_numerics::Quadratic;
use dcc_obs::{JsonRecorder, Metrics};
use dcc_trace::{SyntheticConfig, TraceDataset};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const SEEDS: [u64; 3] = [11, 52, 97];

/// Per-seed fixture, built once: a deliberately small trace (the chaos
/// run elevates the case count, so per-case work must stay cheap) with
/// its detection result, fitted decomposition, and sequential reference
/// outputs.
struct Fixture {
    trace: TraceDataset,
    detection: DetectionResult,
    config: DesignConfig,
    prep: DesignPrep,
    reference: EngineSimOutcome,
}

fn design_config() -> DesignConfig {
    DesignConfig {
        intervals: 8,
        failure_policy: FailurePolicy::FallbackBaseline { amount: 0.5 },
        ..DesignConfig::default()
    }
}

fn engine_config(fx: &Fixture, pool: PoolSize) -> EngineConfig {
    let mut config = EngineConfig::for_trace(fx.trace.clone());
    config.design = fx.config;
    config.pool = pool;
    config.sim.rounds = 10;
    config.sim_options = SimOptions {
        fault_plan: FaultPlanConfig {
            agents: fx.trace.reviewers().len(),
            rounds: 10,
            seed: fx.trace.reviewers().len() as u64,
            ..FaultPlanConfig::default()
        }
        .generate()
        .expect("default probabilities are valid"),
        ..SimOptions::default()
    };
    config
}

fn fixtures() -> &'static [Fixture] {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&seed| {
                let mut synth = SyntheticConfig::small(seed);
                synth.n_honest = 14;
                synth.n_ncm = 5;
                synth.n_cm_target = 6;
                synth.n_rounds = 2;
                synth.n_products = 160;
                let trace = synth.generate();
                let detection = run_pipeline(&trace, PipelineConfig::default());
                let config = design_config();
                let prep = prepare_design(&trace, &detection, &config).expect("fixture fits");
                let mut fx = Fixture {
                    trace,
                    detection,
                    config,
                    prep,
                    reference: EngineSimOutcome::Killed {
                        at_round: 0,
                        total_rounds: 0,
                        checkpoint: Default::default(),
                    },
                };
                let mut ctx =
                    RoundContext::new(engine_config(&fx, PoolSize::Sequential));
                Engine::new().run(&mut ctx).expect("reference engine run");
                fx.reference = ctx.sim_outcome().expect("simulated").clone();
                fx
            })
            .collect()
    })
}

/// `prep` with one subproblem's ψ made unsolvable, forcing the fallback
/// path through the degradation machinery.
fn corrupted(prep: &DesignPrep, victim: usize) -> Vec<dcc_core::Subproblem> {
    let mut subproblems = prep.subproblems.clone();
    let n = subproblems.len();
    subproblems[victim % n].psi = Quadratic::new(f64::NAN, 1.0, 0.0);
    subproblems
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §IV-B solve is bit-identical at every pool size.
    #[test]
    fn pooled_solve_is_bit_identical_to_sequential(
        seed_idx in 0..SEEDS.len(),
        pool in 2usize..=16,
    ) {
        let fx = &fixtures()[seed_idx];
        let (seq, seq_deg) = solve_subproblems_pooled(
            &fx.prep.subproblems, &fx.config.params, 1, FailurePolicy::Abort,
        ).unwrap();
        let (par, par_deg) = solve_subproblems_pooled(
            &fx.prep.subproblems, &fx.config.params, pool, FailurePolicy::Abort,
        ).unwrap();
        prop_assert_eq!(&par, &seq);
        prop_assert_eq!(
            par.total_requester_utility.to_bits(),
            seq.total_requester_utility.to_bits()
        );
        prop_assert_eq!(par_deg, seq_deg);
    }

    /// Bit-identity survives degraded subproblems under
    /// `FallbackBaseline`: the same subproblem degrades to the same
    /// fallback on every pool size, itemized identically.
    #[test]
    fn fallback_degradation_is_bit_identical_across_pools(
        seed_idx in 0..SEEDS.len(),
        pool in 2usize..=16,
        victim in 0usize..64,
        amount in 0.1f64..2.0,
    ) {
        let fx = &fixtures()[seed_idx];
        let subproblems = corrupted(&fx.prep, victim);
        let policy = FailurePolicy::FallbackBaseline { amount };
        let (seq, seq_deg) = solve_subproblems_pooled(
            &subproblems, &fx.config.params, 1, policy,
        ).unwrap();
        let (par, par_deg) = solve_subproblems_pooled(
            &subproblems, &fx.config.params, pool, policy,
        ).unwrap();
        prop_assert_eq!(seq_deg.len(), 1, "exactly the victim degrades");
        prop_assert_eq!(&par, &seq);
        prop_assert_eq!(par_deg, seq_deg);
    }

    /// The full engine — detection, fit, pooled solve, construction, and
    /// a simulation under an injected fault plan — reproduces the
    /// sequential run's outcome exactly at any pool size.
    #[test]
    fn engine_outcome_with_fault_plan_is_pool_invariant(
        seed_idx in 0..SEEDS.len(),
        pool in 2usize..=8,
    ) {
        let fx = &fixtures()[seed_idx];
        let mut ctx = RoundContext::new(engine_config(fx, PoolSize::Fixed(pool)));
        Engine::new().run(&mut ctx).unwrap();
        prop_assert_eq!(ctx.sim_outcome().unwrap(), &fx.reference);
        prop_assert_eq!(
            ctx.detection().unwrap().suspected.len(),
            fx.detection.suspected.len()
        );
    }

    /// The metrics stream is (seed, plan, pool)-deterministic: two
    /// identical engine runs — same trace seed, same fault plan, same
    /// pool — render **byte-identical** `JsonRecorder` documents once
    /// the timing redaction pass zeroes the wall-clock fields.
    #[test]
    fn json_recorder_metrics_are_run_deterministic(
        seed_idx in 0..SEEDS.len(),
        pool in 1usize..=8,
    ) {
        let fx = &fixtures()[seed_idx];
        let render = || {
            let recorder = Arc::new(JsonRecorder::new());
            let mut ctx = RoundContext::new(engine_config(fx, PoolSize::Fixed(pool)));
            ctx.set_metrics(Metrics::new(recorder.clone()));
            Engine::new().run(&mut ctx).unwrap();
            recorder.to_json_redacted()
        };
        let first = render();
        prop_assert!(!first.is_empty());
        prop_assert_eq!(first, render());
    }
}
