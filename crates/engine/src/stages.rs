//! The six default stage implementations — each a thin, swappable
//! wrapper over the corresponding `dcc-detect` / `dcc-core` entry point.

use crate::context::{EngineSimOutcome, RoundContext, TraceSource};
use crate::error::EngineError;
use crate::stage::{Stage, StageKind};
use dcc_core::{
    assemble_design, prepare_design, solve_subproblems_columns_recorded, BaselineStrategy,
    Simulation, SubproblemColumns,
};
use dcc_detect::run_pipeline;
use dcc_faults::{load_sim_state, save_sim_state, FaultInjector};
use dcc_obs::{names as obs, AttrValue};
use dcc_trace::{read_trace_columnar, read_trace_csv};
use std::collections::BTreeSet;
use std::path::Path;
// dcc-lint: allow(wall-clock, reason = "trace-load timing is measured here and routed into dcc-obs via span_at")
use std::time::Instant;

/// Materializes the trace from the configured [`TraceSource`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultIngest;

impl Stage for DefaultIngest {
    fn kind(&self) -> StageKind {
        StageKind::Ingest
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        // dcc-lint: allow(wall-clock, reason = "trace-load timing fed to metrics.span_at below")
        let started = ctx.config().metrics.enabled().then(Instant::now);
        let (trace, source_kind) = match &ctx.config().source {
            TraceSource::Provided(trace) => (trace.clone(), "provided"),
            TraceSource::CsvDir(dir) => (
                read_trace_csv(Path::new(dir)).map_err(|e| {
                    EngineError::Ingest(format!("cannot read trace {}: {e}", dir.display()))
                })?,
                "csv",
            ),
            TraceSource::Columnar(path) => (
                read_trace_columnar(path)
                    .and_then(|col| col.to_dataset())
                    .map_err(|e| {
                        EngineError::Ingest(format!("cannot read trace {}: {e}", path.display()))
                    })?,
                "columnar",
            ),
            TraceSource::Synthetic(config) => (config.generate(), "synthetic"),
        };
        let metrics = &ctx.config().metrics;
        if metrics.enabled() {
            if let Some(started) = started {
                metrics.span_at(
                    obs::SPAN_TRACE_LOAD,
                    &[("source", AttrValue::from(source_kind))],
                    started.elapsed(),
                );
            }
            metrics.add(obs::COUNTER_TRACE_REVIEWS, trace.reviews().len() as u64);
            metrics.add(obs::COUNTER_TRACE_REVIEWERS, trace.reviewers().len() as u64);
            metrics.gauge(obs::GAUGE_TRACE_WORKERS, trace.reviewers().len() as f64);
        }
        ctx.set_trace(trace);
        Ok(())
    }
}

/// Runs the two-pass §IV detection pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultDetect;

impl Stage for DefaultDetect {
    fn kind(&self) -> StageKind {
        StageKind::Detect
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let detection = run_pipeline(ctx.trace()?, ctx.config().pipeline);
        let metrics = &ctx.config().metrics;
        if metrics.enabled() {
            metrics.add(obs::COUNTER_DETECT_SUSPECTED, detection.suspected.len() as u64);
            metrics.add(
                obs::COUNTER_DETECT_COMMUNITIES,
                detection.collusion.communities.len() as u64,
            );
        }
        ctx.set_detection(detection);
        Ok(())
    }
}

/// Fits effort functions and decomposes into §IV-B subproblems.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultFitEffort;

impl Stage for DefaultFitEffort {
    fn kind(&self) -> StageKind {
        StageKind::FitEffort
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let prep = prepare_design(ctx.trace()?, ctx.detection()?, &ctx.config().design)?;
        let metrics = &ctx.config().metrics;
        if metrics.enabled() {
            metrics.add(obs::COUNTER_FIT_SUBPROBLEMS, prep.subproblems.len() as u64);
        }
        ctx.set_prep(prep);
        Ok(())
    }
}

/// Solves the decomposition across the configured worker pool.
///
/// Results are bit-identical for every pool size (deterministic chunked
/// fan-out, see [`solve_subproblems_pooled`]), so the engine treats the
/// pool as a pure throughput knob.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSolve;

impl Stage for DefaultSolve {
    fn kind(&self) -> StageKind {
        StageKind::SolveSubproblems
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let config = ctx.config();
        let columns = SubproblemColumns::from_subproblems(&ctx.prep()?.subproblems);
        let (solution, degradation) = solve_subproblems_columns_recorded(
            columns.view(),
            &config.design.params,
            config.pool.resolve(),
            config.design.failure_policy,
            &config.metrics,
        )?;
        ctx.set_solution(solution, degradation);
        Ok(())
    }
}

/// Assembles the solved decomposition into per-worker contracts.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultConstruct;

impl Stage for DefaultConstruct {
    fn kind(&self) -> StageKind {
        StageKind::ConstructContracts
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let (solution, degradation) = ctx.solved()?.clone();
        let design = assemble_design(ctx.detection()?, ctx.prep()?, solution, degradation);
        let metrics = &ctx.config().metrics;
        if metrics.enabled() {
            metrics.add(obs::COUNTER_DESIGN_AGENTS, design.agents.len() as u64);
            metrics.gauge(obs::GAUGE_DESIGN_UTILITY, design.total_requester_utility);
            for d in &design.degradation.degraded {
                metrics.event(
                    obs::EVENT_DESIGN_DEGRADED,
                    &[
                        ("subproblem", d.subproblem.into()),
                        (
                            "action",
                            AttrValue::from(match d.action {
                                dcc_core::DegradationAction::Fallback { .. } => "fallback",
                                dcc_core::DegradationAction::Skipped => "skipped",
                            }),
                        ),
                        (
                            "utility_delta",
                            d.utility_delta.map_or(AttrValue::from("unknown"), AttrValue::from),
                        ),
                    ],
                );
            }
        }
        ctx.set_design(design);
        Ok(())
    }
}

/// Plays the repeated game under the configured strategy, fault plan,
/// and checkpoint options — the same round loop as `dcc simulate`, so a
/// kill-at/resume pair through the engine reproduces the uninterrupted
/// outcome bit-exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSimulate;

impl Stage for DefaultSimulate {
    fn kind(&self) -> StageKind {
        StageKind::Simulate
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let config = ctx.config();
        let options = &config.sim_options;
        if options.resume && options.checkpoint.is_none() {
            return Err(EngineError::Config(
                "--resume requires --checkpoint FILE".into(),
            ));
        }
        if options.kill_at.is_some() && options.checkpoint.is_none() {
            return Err(EngineError::Config(
                "--kill-at requires --checkpoint FILE".into(),
            ));
        }

        let design = ctx.design()?;
        let suspected: BTreeSet<_> = ctx.detection()?.suspected.iter().copied().collect();
        let agents = BaselineStrategy::new(config.strategy).assemble(
            design,
            config.design.params.omega,
            &suspected,
            ctx.trace()?,
        )?;
        let sim = Simulation::new(config.design.params, config.sim);
        let mut injector = FaultInjector::new(&options.fault_plan);
        let checkpoint = options.checkpoint.clone();
        let kill_at = options.kill_at;
        let sim_config = config.sim;
        let faults_scheduled = options.fault_plan.len();
        let metrics = config.metrics.clone();

        let mut state = match (&checkpoint, options.resume) {
            (Some(cp), true) => load_sim_state(cp)?,
            _ => sim.start(&agents)?,
        };

        let outcome = loop {
            if !state.is_complete(&sim_config) {
                if let Some(k) = kill_at {
                    if state.next_round >= k {
                        // `kill_at` implies `checkpoint`, validated above.
                        if let Some(cp) = &checkpoint {
                            save_sim_state(cp, &state)?;
                            break EngineSimOutcome::Killed {
                                at_round: state.next_round,
                                total_rounds: sim_config.rounds,
                                checkpoint: cp.clone(),
                            };
                        }
                    }
                }
            }
            if !sim.step(&agents, &mut state, &mut injector) {
                break EngineSimOutcome::Completed {
                    outcome: sim.outcome_of(&state)?,
                    faults_scheduled,
                    faults_fired: injector.log().len(),
                };
            }
            if metrics.enabled() {
                metrics.add(obs::COUNTER_SIM_ROUNDS, 1);
                if let Some(rec) = state.rounds.last() {
                    metrics.event(
                        obs::EVENT_SIM_ROUND,
                        &[
                            ("round", rec.round.into()),
                            ("benefit", rec.benefit.into()),
                            ("payment", rec.payment.into()),
                            ("u_req", rec.requester_utility.into()),
                        ],
                    );
                }
            }
            if let Some(cp) = &checkpoint {
                save_sim_state(cp, &state)?;
            }
        };
        if metrics.enabled() {
            metrics.gauge(obs::GAUGE_FAULTS_SCHEDULED, faults_scheduled as f64);
            let counts = injector.hit_counts();
            metrics.add(obs::COUNTER_FAULTS_FIRED, counts.total() as u64);
            metrics.add(obs::COUNTER_FAULTS_DROPPED, counts.dropped as u64);
            metrics.add(obs::COUNTER_FAULTS_LOST, counts.lost_feedback as u64);
            metrics.add(obs::COUNTER_FAULTS_CORRUPTED, counts.corrupted_feedback as u64);
            metrics.add(obs::COUNTER_FAULTS_DELAYED, counts.delayed_payments as u64);
        }
        ctx.set_outcome(outcome);
        Ok(())
    }
}
