use crate::error::EngineError;
use crate::stage::StageKind;
use dcc_core::{
    BipSolution, ContractDesign, DegradationReport, DesignConfig, DesignPrep, SimulationConfig,
    SimulationOutcome, StrategyKind,
};
use dcc_detect::{DetectionResult, PipelineConfig};
use dcc_faults::FaultPlan;
use dcc_obs::Metrics;
use dcc_trace::{SyntheticConfig, TraceDataset};
use std::path::PathBuf;

/// Where the [`StageKind::Ingest`] stage gets its trace from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// A dataset already in memory (no I/O).
    Provided(TraceDataset),
    /// A CSV directory in the `dcc gen` layout.
    CsvDir(PathBuf),
    /// A `dcc-trace-col/1` binary columnar file (see `docs/trace.md`).
    Columnar(PathBuf),
    /// Generate a synthetic trace.
    Synthetic(SyntheticConfig),
}

/// Worker-pool sizing for [`StageKind::SolveSubproblems`].
///
/// Any choice produces **bit-identical** results — the pool only decides
/// how many scoped threads share the deterministic chunked fan-out — so
/// changing it never invalidates cached outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolSize {
    /// Solve on the calling thread.
    Sequential,
    /// Use [`std::thread::available_parallelism`] (falls back to 4).
    #[default]
    Auto,
    /// Exactly this many workers (clamped to the subproblem count).
    Fixed(usize),
}

impl PoolSize {
    /// The concrete worker count this policy resolves to.
    pub fn resolve(self) -> usize {
        match self {
            PoolSize::Sequential => 1,
            PoolSize::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            PoolSize::Fixed(n) => n.max(1),
        }
    }
}

/// Fault-injection and checkpointing options for the simulate stage,
/// mirroring the `dcc simulate` flags.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Deterministic fault schedule to inject each round.
    pub fault_plan: FaultPlan,
    /// Persist the complete [`dcc_core::SimState`] here after every round.
    pub checkpoint: Option<PathBuf>,
    /// Stop (simulating a crash) before this round; requires `checkpoint`.
    pub kill_at: Option<usize>,
    /// Start from the checkpoint instead of round 0; requires `checkpoint`.
    pub resume: bool,
}

/// Everything the six stages need, in one place.
///
/// `pool` supersedes [`DesignConfig::parallel`] inside the engine: the
/// solve stage always goes through the explicit pool size, so the
/// boolean is ignored.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Trace source for the ingest stage.
    pub source: TraceSource,
    /// Detection pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Contract-design configuration (fitting + solving).
    pub design: DesignConfig,
    /// Worker-pool sizing for the parallel solve.
    pub pool: PoolSize,
    /// Which strategy the simulate stage plays (§V baselines).
    pub strategy: StrategyKind,
    /// Repeated-game configuration.
    pub sim: SimulationConfig,
    /// Fault plan and checkpoint/kill/resume options.
    pub sim_options: SimOptions,
    /// Observability sink. Defaults to the inert noop recorder, so the
    /// hot path costs nothing unless a real recorder is installed (e.g.
    /// `Metrics::new(Arc::new(JsonRecorder::new()))` for `--metrics`).
    pub metrics: Metrics,
}

impl EngineConfig {
    /// A default configuration over an in-memory trace: ground-truth
    /// detection, default design, automatic pool, dynamic contracts.
    pub fn for_trace(trace: TraceDataset) -> Self {
        EngineConfig::for_source(TraceSource::Provided(trace))
    }

    /// A default configuration over an arbitrary trace source.
    pub fn for_source(source: TraceSource) -> Self {
        EngineConfig {
            source,
            pipeline: PipelineConfig::default(),
            design: DesignConfig::default(),
            pool: PoolSize::Auto,
            strategy: StrategyKind::DynamicContract,
            sim: SimulationConfig::default(),
            sim_options: SimOptions::default(),
            metrics: Metrics::noop(),
        }
    }
}

/// How the simulate stage ended.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSimOutcome {
    /// The horizon completed; the outcome plus fault accounting.
    Completed {
        /// The repeated-game outcome.
        outcome: SimulationOutcome,
        /// Events in the configured fault plan.
        faults_scheduled: usize,
        /// Events that actually fired during this invocation.
        faults_fired: usize,
    },
    /// The run was killed at `at_round` (per [`SimOptions::kill_at`])
    /// with the state checkpointed for a later resume.
    Killed {
        /// The round the simulated crash happened before.
        at_round: usize,
        /// The configured horizon.
        total_rounds: usize,
        /// Where the state was saved.
        checkpoint: PathBuf,
    },
}

/// The shared blackboard the stages read from and write to.
///
/// The context owns the configuration and one cached output slot per
/// stage. Getters return [`EngineError::MissingOutput`] until the
/// corresponding stage has run; setters store an output and discard
/// every later stage's cache. Config mutators invalidate only the
/// stages that actually depend on the touched field, so e.g. a μ-sweep
/// re-solves the subproblems each step but reuses the detection result
/// and the quadratic ψ-fits across the whole sweep.
#[derive(Debug, Clone)]
pub struct RoundContext {
    config: EngineConfig,
    trace: Option<TraceDataset>,
    detection: Option<DetectionResult>,
    prep: Option<DesignPrep>,
    solved: Option<(BipSolution, DegradationReport)>,
    design: Option<ContractDesign>,
    sim_outcome: Option<EngineSimOutcome>,
    /// Why each stage's cache slot was last invalidated (the mutator
    /// name). `None` for a slot that has never held data ("initial") or
    /// whose output is currently cached. Surfaced as the `cause`
    /// attribute on stage spans.
    causes: [Option<&'static str>; 6],
    /// Workers whose inputs changed since the dirty set was last drained
    /// — the fine-grained counterpart of the per-stage invalidation,
    /// maintained by [`RoundContext::set_trace_incremental`] /
    /// [`RoundContext::mark_workers_dirty`] for incremental consumers
    /// (the streaming service) that re-run detection/fit/solve work only
    /// for affected workers.
    dirty_workers: std::collections::BTreeSet<dcc_trace::ReviewerId>,
}

/// The inputs of the fit stage that, when changed, force a refit.
fn fit_key(design: &DesignConfig) -> (u64, usize, u64, Option<usize>) {
    (
        design.params.omega.to_bits(),
        design.intervals,
        design.effort_quantile.to_bits(),
        design.per_worker_fit_min_reviews,
    )
}

impl RoundContext {
    /// An empty context over `config`; nothing is cached yet.
    pub fn new(config: EngineConfig) -> Self {
        RoundContext {
            config,
            trace: None,
            detection: None,
            prep: None,
            solved: None,
            design: None,
            sim_outcome: None,
            causes: [None; 6],
            dirty_workers: std::collections::BTreeSet::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Whether the output slot of `kind` is populated.
    pub fn has(&self, kind: StageKind) -> bool {
        match kind {
            StageKind::Ingest => self.trace.is_some(),
            StageKind::Detect => self.detection.is_some(),
            StageKind::FitEffort => self.prep.is_some(),
            StageKind::SolveSubproblems => self.solved.is_some(),
            StageKind::ConstructContracts => self.design.is_some(),
            StageKind::Simulate => self.sim_outcome.is_some(),
        }
    }

    /// Discards the cached outputs of `kind` and every later stage.
    pub fn invalidate_from(&mut self, kind: StageKind) {
        self.invalidate_from_cause(kind, "invalidate_from");
    }

    /// Why `kind`'s cache slot was last invalidated (the responsible
    /// mutator's name), or `None` when the slot has never held data or
    /// currently holds its output.
    pub fn invalidation_cause(&self, kind: StageKind) -> Option<&'static str> {
        self.causes[kind.index()]
    }

    fn invalidate_from_cause(&mut self, kind: StageKind, cause: &'static str) {
        for k in StageKind::ALL {
            if k.index() >= kind.index() {
                self.clear_with(k, cause);
            }
        }
    }

    fn clear(&mut self, kind: StageKind) {
        match kind {
            StageKind::Ingest => self.trace = None,
            StageKind::Detect => self.detection = None,
            StageKind::FitEffort => self.prep = None,
            StageKind::SolveSubproblems => self.solved = None,
            StageKind::ConstructContracts => self.design = None,
            StageKind::Simulate => self.sim_outcome = None,
        }
    }

    /// Clears `kind`'s slot, attributing the invalidation to `cause` —
    /// but only when the slot actually held data, so a still-pending
    /// cause (e.g. `set_mu` on a stage that has not re-run yet) is not
    /// overwritten by a later no-op invalidation.
    fn clear_with(&mut self, kind: StageKind, cause: &'static str) {
        if self.has(kind) {
            self.causes[kind.index()] = Some(cause);
            self.clear(kind);
        }
    }

    fn invalidate_after(&mut self, kind: StageKind) {
        for k in StageKind::ALL {
            if k.index() > kind.index() {
                self.clear_with(k, "upstream_output");
            }
        }
    }

    // --- Stage outputs -------------------------------------------------

    /// The ingested trace.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingOutput`] until the ingest stage has run.
    pub fn trace(&self) -> Result<&TraceDataset, EngineError> {
        self.trace.as_ref().ok_or(EngineError::MissingOutput {
            stage: StageKind::Ingest,
        })
    }

    /// The detection result.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingOutput`] until the detect stage has run.
    pub fn detection(&self) -> Result<&DetectionResult, EngineError> {
        self.detection.as_ref().ok_or(EngineError::MissingOutput {
            stage: StageKind::Detect,
        })
    }

    /// The fitted decomposition (subproblems + class ψ-fits).
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingOutput`] until the fit stage has run.
    pub fn prep(&self) -> Result<&DesignPrep, EngineError> {
        self.prep.as_ref().ok_or(EngineError::MissingOutput {
            stage: StageKind::FitEffort,
        })
    }

    /// The solved decomposition and its degradation report.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingOutput`] until the solve stage has run.
    pub fn solved(&self) -> Result<&(BipSolution, DegradationReport), EngineError> {
        self.solved.as_ref().ok_or(EngineError::MissingOutput {
            stage: StageKind::SolveSubproblems,
        })
    }

    /// The assembled per-worker contract design.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingOutput`] until the construct stage has run.
    pub fn design(&self) -> Result<&ContractDesign, EngineError> {
        self.design.as_ref().ok_or(EngineError::MissingOutput {
            stage: StageKind::ConstructContracts,
        })
    }

    /// The simulation outcome.
    ///
    /// # Errors
    ///
    /// [`EngineError::MissingOutput`] until the simulate stage has run.
    pub fn sim_outcome(&self) -> Result<&EngineSimOutcome, EngineError> {
        self.sim_outcome.as_ref().ok_or(EngineError::MissingOutput {
            stage: StageKind::Simulate,
        })
    }

    /// Publishes the ingest output, invalidating later stages.
    pub fn set_trace(&mut self, trace: TraceDataset) {
        self.trace = Some(trace);
        self.causes[StageKind::Ingest.index()] = None;
        self.invalidate_after(StageKind::Ingest);
    }

    /// Publishes an incrementally-evolved trace: like
    /// [`RoundContext::set_trace`], but attributes the downstream
    /// invalidation to `trace_delta` and records exactly which workers'
    /// inputs changed, so an incremental consumer can re-run
    /// detection/fit/solve work only for the affected subproblems
    /// (drained via [`RoundContext::take_dirty_workers`]).
    pub fn set_trace_incremental(
        &mut self,
        trace: TraceDataset,
        dirty: impl IntoIterator<Item = dcc_trace::ReviewerId>,
    ) {
        self.trace = Some(trace);
        self.causes[StageKind::Ingest.index()] = None;
        for k in StageKind::ALL {
            if k.index() > StageKind::Ingest.index() {
                self.clear_with(k, "trace_delta");
            }
        }
        self.mark_workers_dirty(dirty);
    }

    /// Adds workers to the dirty set without touching any cache slot —
    /// for callers accumulating deltas across several mutations before
    /// one recompute.
    pub fn mark_workers_dirty(&mut self, workers: impl IntoIterator<Item = dcc_trace::ReviewerId>) {
        self.dirty_workers.extend(workers);
    }

    /// The workers currently marked dirty, in id order.
    pub fn dirty_workers(&self) -> &std::collections::BTreeSet<dcc_trace::ReviewerId> {
        &self.dirty_workers
    }

    /// Drains and returns the dirty-worker set — called once per
    /// incremental recompute so the next round starts clean.
    pub fn take_dirty_workers(&mut self) -> std::collections::BTreeSet<dcc_trace::ReviewerId> {
        std::mem::take(&mut self.dirty_workers)
    }

    /// Publishes the detect output, invalidating later stages.
    pub fn set_detection(&mut self, detection: DetectionResult) {
        self.detection = Some(detection);
        self.causes[StageKind::Detect.index()] = None;
        self.invalidate_after(StageKind::Detect);
    }

    /// Publishes the fit output, invalidating later stages.
    pub fn set_prep(&mut self, prep: DesignPrep) {
        self.prep = Some(prep);
        self.causes[StageKind::FitEffort.index()] = None;
        self.invalidate_after(StageKind::FitEffort);
    }

    /// Publishes the solve output, invalidating later stages.
    pub fn set_solution(&mut self, solution: BipSolution, degradation: DegradationReport) {
        self.solved = Some((solution, degradation));
        self.causes[StageKind::SolveSubproblems.index()] = None;
        self.invalidate_after(StageKind::SolveSubproblems);
    }

    /// Publishes the construct output, invalidating the simulate stage.
    pub fn set_design(&mut self, design: ContractDesign) {
        self.design = Some(design);
        self.causes[StageKind::ConstructContracts.index()] = None;
        self.invalidate_after(StageKind::ConstructContracts);
    }

    /// Publishes the simulate output.
    pub fn set_outcome(&mut self, outcome: EngineSimOutcome) {
        self.sim_outcome = Some(outcome);
        self.causes[StageKind::Simulate.index()] = None;
    }

    // --- Config mutators with precise invalidation ---------------------

    /// Replaces the trace source and invalidates everything.
    pub fn set_source(&mut self, source: TraceSource) {
        self.config.source = source;
        self.invalidate_from_cause(StageKind::Ingest, "set_source");
    }

    /// Replaces the detection configuration and invalidates from the
    /// detect stage on.
    pub fn set_pipeline_config(&mut self, pipeline: PipelineConfig) {
        if self.config.pipeline != pipeline {
            self.config.pipeline = pipeline;
            self.invalidate_from_cause(StageKind::Detect, "set_pipeline_config");
        }
    }

    /// Replaces the design configuration.
    ///
    /// Invalidation is precise: only when a *fit-relevant* field changes
    /// (`params.omega`, `intervals`, `effort_quantile`,
    /// `per_worker_fit_min_reviews`) are the cached ψ-fits discarded;
    /// any other change (μ, β, failure policy, …) re-solves from
    /// [`StageKind::SolveSubproblems`] and reuses the fits.
    pub fn set_design_config(&mut self, design: DesignConfig) {
        self.set_design_config_cause(design, "set_design_config");
    }

    fn set_design_config_cause(&mut self, design: DesignConfig, cause: &'static str) {
        if fit_key(&self.config.design) != fit_key(&design) {
            self.config.design = design;
            self.invalidate_from_cause(StageKind::FitEffort, cause);
        } else if self.config.design != design {
            self.config.design = design;
            self.invalidate_from_cause(StageKind::SolveSubproblems, cause);
        }
    }

    /// Sets the compensation weight μ (Eq. 7), re-solving from
    /// [`StageKind::SolveSubproblems`] while keeping detection and fits
    /// cached — the cheap path for a μ-sweep.
    pub fn set_mu(&mut self, mu: f64) {
        let mut design = self.config.design;
        design.params.mu = mu;
        self.set_design_config_cause(design, "set_mu");
    }

    /// Changes the worker-pool size. Never invalidates: the solve is
    /// bit-identical across pool sizes.
    pub fn set_pool(&mut self, pool: PoolSize) {
        self.config.pool = pool;
    }

    /// Changes the simulated strategy, invalidating only the simulate
    /// stage.
    pub fn set_strategy(&mut self, strategy: StrategyKind) {
        if self.config.strategy != strategy {
            self.config.strategy = strategy;
            self.invalidate_from_cause(StageKind::Simulate, "set_strategy");
        }
    }

    /// Changes the repeated-game configuration, invalidating only the
    /// simulate stage.
    pub fn set_sim_config(&mut self, sim: SimulationConfig) {
        if self.config.sim != sim {
            self.config.sim = sim;
            self.invalidate_from_cause(StageKind::Simulate, "set_sim_config");
        }
    }

    /// Changes fault/checkpoint options, invalidating only the simulate
    /// stage.
    pub fn set_sim_options(&mut self, options: SimOptions) {
        self.config.sim_options = options;
        self.invalidate_from_cause(StageKind::Simulate, "set_sim_options");
    }

    /// Installs an observability sink. Never invalidates: recording is
    /// output-neutral (the metric stream is a pure side channel).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.config.metrics = metrics;
    }
}
