use crate::context::RoundContext;
use crate::error::EngineError;
use std::fmt;

/// The six fixed slots of the engine pipeline, in execution order.
///
/// Every [`Stage`] implementation declares which slot it fills via
/// [`Stage::kind`]; [`crate::Engine::with_stage`] swaps the stage in
/// that slot. The ordering (`Ingest < Detect < … < Simulate`) drives
/// cache invalidation: mutating an input of stage `k` discards the
/// outputs of `k` and everything after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Materialize the [`dcc_trace::TraceDataset`] from the configured
    /// source (provided in memory, CSV directory, or synthetic).
    Ingest,
    /// Run the §IV detection pipeline (consensus, suspects, communities,
    /// Eq. 5 weights).
    Detect,
    /// Fit per-class (and optionally per-worker) quadratic effort
    /// functions and decompose into §IV-B subproblems.
    FitEffort,
    /// Solve the independent subproblems with the §IV-C candidate
    /// algorithm, fanned across a deterministic worker pool.
    SolveSubproblems,
    /// Assemble the solved decomposition into per-worker contracts.
    ConstructContracts,
    /// Play the repeated Stackelberg game (with optional fault plan and
    /// checkpointing).
    Simulate,
}

impl StageKind {
    /// All stages in execution order.
    pub const ALL: [StageKind; 6] = [
        StageKind::Ingest,
        StageKind::Detect,
        StageKind::FitEffort,
        StageKind::SolveSubproblems,
        StageKind::ConstructContracts,
        StageKind::Simulate,
    ];

    /// The stage's kebab-case name (used in reports and error messages).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Ingest => "ingest",
            StageKind::Detect => "detect",
            StageKind::FitEffort => "fit-effort",
            StageKind::SolveSubproblems => "solve-subproblems",
            StageKind::ConstructContracts => "construct-contracts",
            StageKind::Simulate => "simulate",
        }
    }

    /// Position in the execution order (0 = `Ingest`, 5 = `Simulate`).
    pub fn index(self) -> usize {
        match self {
            StageKind::Ingest => 0,
            StageKind::Detect => 1,
            StageKind::FitEffort => 2,
            StageKind::SolveSubproblems => 3,
            StageKind::ConstructContracts => 4,
            StageKind::Simulate => 5,
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage of the pipeline.
///
/// A stage reads its inputs from the [`RoundContext`] (via the typed
/// getters, which fail with [`EngineError::MissingOutput`] when an
/// earlier stage has not run) and publishes its result with the matching
/// setter (`set_detection`, `set_prep`, …). The engine only calls
/// [`Stage::run`] when the context has no cached output for the stage's
/// slot, so a stage never needs to check the cache itself.
///
/// Stages are `Send + Sync` so an [`crate::Engine`] can be shared across
/// threads; all mutability lives in the per-run context.
pub trait Stage: Send + Sync {
    /// Which pipeline slot this stage fills.
    fn kind(&self) -> StageKind;

    /// Display name; defaults to the slot name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Computes the stage's output from the context and stores it back.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when an input is missing or the underlying
    /// computation fails.
    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError>;
}
