use crate::stage::StageKind;
use dcc_core::CoreError;
use std::fmt;

/// Errors produced by the engine or its stages.
#[derive(Debug)]
pub enum EngineError {
    /// A stage propagated a core solver/simulation error.
    Core(CoreError),
    /// A stage asked the [`crate::RoundContext`] for an output that an
    /// earlier stage has not produced yet — the engine was not run far
    /// enough, or a custom stage forgot to call the matching setter.
    MissingOutput {
        /// The stage whose output is missing.
        stage: StageKind,
    },
    /// The [`crate::EngineConfig`] is inconsistent (e.g. `--resume`
    /// without a checkpoint path). Maps to a usage error in the CLI.
    Config(String),
    /// The trace source could not be materialized (unreadable CSV
    /// directory, …).
    Ingest(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::MissingOutput { stage } => write!(
                f,
                "stage {stage} has produced no output yet; run the engine through it first"
            ),
            EngineError::Config(msg) => write!(f, "{msg}"),
            EngineError::Ingest(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}
