//! # dcc-engine
//!
//! A staged pipeline engine unifying the paper's end-to-end flow —
//! `Ingest → Detect → FitEffort → SolveSubproblems → ConstructContracts
//! → Simulate` — behind typed, swappable [`Stage`]s over a shared
//! [`RoundContext`].
//!
//! Before the engine, every consumer (CLI commands, the figure/table
//! experiments, the benches) hand-wired the same
//! `run_pipeline → design_contracts → Simulation` chain and recomputed
//! detection results and quadratic ψ-fits on every call. The engine
//! fixes both problems:
//!
//! - **Caching** — each stage's output lives in the context; re-running
//!   the engine after a config change recomputes only the stages that
//!   depend on it. A μ-sweep ([`RoundContext::set_mu`]) re-solves the
//!   §IV-B subproblems but reuses detection and fits across the sweep.
//! - **Determinism** — the solve stage fans the independent subproblems
//!   across a `std::thread::scope` worker pool with a deterministic
//!   chunked merge, so results are **bit-identical** to the sequential
//!   path at every pool size ([`PoolSize`] is a pure throughput knob).
//! - **Pluggability** — experiments swap individual stages
//!   ([`Engine::with_stage`]) instead of copying the chain; e.g. the
//!   collusion ablation installs a collusion-blind detect stage and
//!   keeps everything else.
//!
//! ## Example
//!
//! ```
//! use dcc_engine::{Engine, EngineConfig, RoundContext, StageKind};
//! use dcc_trace::SyntheticConfig;
//!
//! # fn main() -> Result<(), dcc_engine::EngineError> {
//! let trace = SyntheticConfig::small(7).generate();
//! let mut ctx = RoundContext::new(EngineConfig::for_trace(trace));
//! let engine = Engine::new();
//!
//! // Design contracts (stop before the simulation)…
//! engine.run_to(&mut ctx, StageKind::ConstructContracts)?;
//! let designed = ctx.design()?.agents.len();
//! assert!(designed > 0);
//!
//! // …then sweep μ: detection and ψ-fits stay cached.
//! ctx.set_mu(3.0);
//! let report = engine.run_to(&mut ctx, StageKind::ConstructContracts)?;
//! assert!(report.was_cached(StageKind::Detect));
//! assert!(report.was_cached(StageKind::FitEffort));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod engine;
mod error;
mod stage;
mod stages;

pub use context::{
    EngineConfig, EngineSimOutcome, PoolSize, RoundContext, SimOptions, TraceSource,
};
pub use engine::{Engine, EngineReport, StageRun};
pub use error::EngineError;
pub use stage::{Stage, StageKind};
pub use stages::{
    DefaultConstruct, DefaultDetect, DefaultFitEffort, DefaultIngest, DefaultSimulate,
    DefaultSolve,
};
