use crate::context::RoundContext;
use crate::error::EngineError;
use crate::stage::{Stage, StageKind};
use crate::stages::{
    DefaultConstruct, DefaultDetect, DefaultFitEffort, DefaultIngest, DefaultSimulate,
    DefaultSolve,
};
use dcc_obs::{names as obs_names, AttrValue};
use std::fmt;
// dcc-lint: allow(wall-clock, reason = "stage durations are measured here and published through dcc-obs spans")
use std::time::{Duration, Instant};

/// What happened to one stage during [`Engine::run_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRun {
    /// The stage's slot.
    pub kind: StageKind,
    /// The stage's display name (differs from the slot name for custom
    /// stages).
    pub name: &'static str,
    /// `true` when the context already held the stage's output and the
    /// stage was skipped.
    pub cached: bool,
    /// Wall-clock time spent (≈ 0 for cached stages).
    pub elapsed: Duration,
}

/// Per-stage execution report of one [`Engine::run_to`] call.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// One entry per stage visited, in execution order.
    pub stages: Vec<StageRun>,
}

impl EngineReport {
    /// Whether `kind` was served from cache in this run.
    pub fn was_cached(&self, kind: StageKind) -> bool {
        self.stages
            .iter()
            .any(|run| run.kind == kind && run.cached)
    }

    /// Total wall-clock time across the non-cached stages.
    pub fn total_elapsed(&self) -> Duration {
        self.stages
            .iter()
            .filter(|run| !run.cached)
            .map(|run| run.elapsed)
            .sum()
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for run in &self.stages {
            if run.cached {
                writeln!(f, "  {:<20} cached", run.name)?;
            } else {
                writeln!(f, "  {:<20} {:>9.3?}", run.name, run.elapsed)?;
            }
        }
        Ok(())
    }
}

/// The staged pipeline driver: six [`Stage`] slots executed in order
/// over a [`RoundContext`], skipping any stage whose output is already
/// cached.
///
/// Custom stages plug into a slot with [`Engine::with_stage`] — e.g. a
/// collusion-blind detector replacing the default detect stage:
///
/// ```
/// use dcc_engine::{DefaultDetect, Engine, Stage};
///
/// let engine = Engine::new().with_stage(Box::new(DefaultDetect));
/// assert_eq!(engine.stage_names().len(), 6);
/// ```
pub struct Engine {
    stages: Vec<Box<dyn Stage>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the six default stages.
    pub fn new() -> Self {
        Engine {
            stages: vec![
                Box::new(DefaultIngest),
                Box::new(DefaultDetect),
                Box::new(DefaultFitEffort),
                Box::new(DefaultSolve),
                Box::new(DefaultConstruct),
                Box::new(DefaultSimulate),
            ],
        }
    }

    /// Replaces the slot matching `stage.kind()` with `stage`.
    #[must_use]
    pub fn with_stage(mut self, stage: Box<dyn Stage>) -> Self {
        let slot = stage.kind().index();
        self.stages[slot] = stage;
        self
    }

    /// The display names of the installed stages, in order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs every stage through `Simulate`.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure.
    pub fn run(&self, ctx: &mut RoundContext) -> Result<EngineReport, EngineError> {
        self.run_to(ctx, StageKind::Simulate)
    }

    /// Runs the stages in order up to and including `last`, skipping any
    /// stage whose output the context already caches.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure; earlier stages' outputs stay
    /// cached in the context.
    pub fn run_to(
        &self,
        ctx: &mut RoundContext,
        last: StageKind,
    ) -> Result<EngineReport, EngineError> {
        let metrics = ctx.config().metrics.clone();
        let run_span = if metrics.enabled() {
            Some(metrics.span(
                obs_names::SPAN_ENGINE_RUN,
                &[("last", AttrValue::from(last.name()))],
            ))
        } else {
            None
        };
        let mut report = EngineReport::default();
        for stage in &self.stages {
            let kind = stage.kind();
            if kind.index() > last.index() {
                break;
            }
            let cached = ctx.has(kind);
            let span = if metrics.enabled() {
                let cause = if cached {
                    "cached"
                } else {
                    ctx.invalidation_cause(kind).unwrap_or("initial")
                };
                Some(metrics.span(
                    obs_names::SPAN_STAGE,
                    &[
                        ("stage", AttrValue::from(kind.name())),
                        ("name", AttrValue::from(stage.name())),
                        ("cached", AttrValue::from(cached)),
                        ("cause", AttrValue::from(cause)),
                    ],
                ))
            } else {
                None
            };
            // dcc-lint: allow(wall-clock, reason = "stage timing fed to the obs span/report below")
            let start = Instant::now();
            if !cached {
                stage.run(ctx)?;
            }
            drop(span);
            report.stages.push(StageRun {
                kind,
                name: stage.name(),
                cached,
                elapsed: start.elapsed(),
            });
        }
        drop(run_span);
        Ok(report)
    }
}
