//! Retry-with-backoff for transient numeric failures.
//!
//! The contract-design pipeline solves small linear systems (effort-
//! function fits, candidate construction); near-degenerate observation
//! windows can make those systems singular. Such failures are *transient*
//! in the sense that a slightly regularized system solves fine, so
//! instead of aborting a long simulation the caller can wrap the solve in
//! [`retry_with_backoff`]: each attempt gets a growing, deterministically
//! jittered regularization strength, and only
//! [`NumericsError::SingularSystem`] triggers another attempt — every
//! other error is a genuine bug and propagates immediately.

use dcc_core::CoreError;
use dcc_numerics::NumericsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (>= 1); the first attempt uses
    /// [`RetryPolicy::base_regularization`].
    pub max_attempts: usize,
    /// Regularization strength passed to the first attempt.
    pub base_regularization: f64,
    /// Multiplier applied to the regularization after each failure.
    pub growth: f64,
    /// Relative jitter on each retry's regularization, drawn
    /// deterministically from `seed` in `[1 - jitter, 1 + jitter]`.
    /// Breaks the exact-resonance case where a grid of regularization
    /// values keeps landing on singular configurations.
    pub jitter: f64,
    /// Seed of the jitter stream (the retry loop is fully deterministic).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_regularization: 1e-10,
            growth: 100.0,
            jitter: 0.2,
            seed: 1,
        }
    }
}

/// Runs `op` with growing jittered regularization until it succeeds, a
/// non-retryable error occurs, or the attempt budget is exhausted.
///
/// `op` receives the regularization strength for the current attempt. The
/// first attempt uses exactly `policy.base_regularization` (no jitter),
/// so a healthy fast path is untouched by the retry machinery.
///
/// # Errors
///
/// - Non-retryable errors (anything but
///   [`NumericsError::SingularSystem`]) propagate unchanged from the
///   failing attempt.
/// - Exhausting `max_attempts` yields
///   [`CoreError::Degraded`] wrapping the last singular-system error,
///   with `attempts` set to the number of tries made.
pub fn retry_with_backoff<T>(
    context: &str,
    policy: RetryPolicy,
    mut op: impl FnMut(f64) -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    let attempts = policy.max_attempts.max(1);
    let mut rng = StdRng::seed_from_u64(policy.seed);
    let mut regularization = policy.base_regularization;
    let mut last = None;
    for attempt in 0..attempts {
        let strength = if attempt == 0 || policy.jitter <= 0.0 {
            regularization
        } else {
            regularization * rng.gen_range(1.0 - policy.jitter..1.0 + policy.jitter)
        };
        match op(strength) {
            Ok(value) => return Ok(value),
            Err(CoreError::Numerics(NumericsError::SingularSystem)) => {
                last = Some(CoreError::Numerics(NumericsError::SingularSystem));
                regularization *= policy.growth;
            }
            Err(other) => return Err(other),
        }
    }
    Err(CoreError::degraded(
        context,
        attempts,
        last.unwrap_or(CoreError::Numerics(NumericsError::SingularSystem)),
    ))
}

#[cfg(test)]
// Tests assert pass-through values exactly; not covered by clippy.toml's
// in-tests switches (those exist only for unwrap/expect/panic).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn first_success_short_circuits() {
        let mut calls = 0;
        let out = retry_with_backoff("fit", RetryPolicy::default(), |reg| {
            calls += 1;
            assert_eq!(reg, RetryPolicy::default().base_regularization);
            Ok::<_, CoreError>(reg)
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(out, RetryPolicy::default().base_regularization);
    }

    #[test]
    fn singular_failures_retry_with_growing_regularization() {
        let mut strengths = Vec::new();
        let policy = RetryPolicy {
            max_attempts: 5,
            base_regularization: 1e-8,
            growth: 10.0,
            jitter: 0.2,
            seed: 3,
        };
        let out = retry_with_backoff("fit", policy, |reg| {
            strengths.push(reg);
            if strengths.len() < 4 {
                Err(CoreError::Numerics(NumericsError::SingularSystem))
            } else {
                Ok(reg)
            }
        })
        .unwrap();
        assert_eq!(strengths.len(), 4);
        // Strictly growing despite jitter (growth 10 beats jitter 1.2x).
        for pair in strengths.windows(2) {
            assert!(pair[1] > pair[0], "regularization must grow: {strengths:?}");
        }
        assert_eq!(out, strengths[3]);
    }

    #[test]
    fn retry_sequence_is_deterministic() {
        let run = || {
            let mut strengths = Vec::new();
            let _ = retry_with_backoff("fit", RetryPolicy::default(), |reg| {
                strengths.push(reg);
                Err::<(), _>(CoreError::Numerics(NumericsError::SingularSystem))
            });
            strengths
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exhaustion_reports_degraded_with_attempt_count() {
        let err = retry_with_backoff("candidate solve", RetryPolicy::default(), |_| {
            Err::<(), _>(CoreError::Numerics(NumericsError::SingularSystem))
        })
        .unwrap_err();
        match &err {
            CoreError::Degraded {
                context, attempts, source,
            } => {
                assert_eq!(context, "candidate solve");
                assert_eq!(*attempts, RetryPolicy::default().max_attempts);
                assert!(matches!(
                    **source,
                    CoreError::Numerics(NumericsError::SingularSystem)
                ));
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The chain is walkable down to the numerics root cause.
        let root = std::error::Error::source(&err).unwrap();
        assert!(root.to_string().contains("singular"), "{root}");
    }

    #[test]
    fn other_errors_are_not_retried() {
        let mut calls = 0;
        let err = retry_with_backoff("fit", RetryPolicy::default(), |_| {
            calls += 1;
            Err::<(), _>(CoreError::InvalidInput("broken input".into()))
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(matches!(err, CoreError::InvalidInput(_)));
    }

    #[test]
    fn zero_attempt_policy_still_tries_once() {
        let mut calls = 0;
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let _ = retry_with_backoff("fit", policy, |_| {
            calls += 1;
            Ok::<_, CoreError>(())
        });
        assert_eq!(calls, 1);
    }
}
