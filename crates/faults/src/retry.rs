//! Retry-with-backoff for transient failures.
//!
//! The contract-design pipeline solves small linear systems (effort-
//! function fits, candidate construction); near-degenerate observation
//! windows can make those systems singular. Such failures are *transient*
//! in the sense that a slightly regularized system solves fine, so
//! instead of aborting a long simulation the caller can wrap the solve in
//! [`retry_with_backoff`]: each attempt gets a growing, deterministically
//! jittered regularization strength, and only
//! [`NumericsError::SingularSystem`] triggers another attempt — every
//! other error is a genuine bug and propagates immediately.
//!
//! The batch supervisor (`dcc-batch`) reuses the same deterministic
//! schedule through the generic [`retry_with_backoff_on`], which lets the
//! caller decide *which* errors are transient (e.g. a scenario panic
//! under supervision) and reports the attempt count either way.

use dcc_core::CoreError;
use dcc_numerics::NumericsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (>= 1); the first attempt uses
    /// [`RetryPolicy::base_regularization`].
    pub max_attempts: usize,
    /// Regularization strength passed to the first attempt.
    pub base_regularization: f64,
    /// Multiplier applied to the regularization after each failure.
    pub growth: f64,
    /// Relative jitter on each retry's regularization, drawn
    /// deterministically from `seed` in `[1 - jitter, 1 + jitter]`.
    /// Breaks the exact-resonance case where a grid of regularization
    /// values keeps landing on singular configurations.
    pub jitter: f64,
    /// Seed of the jitter stream (the retry loop is fully deterministic).
    pub seed: u64,
    /// Hard cap on the (jittered) regularization strength: a runaway
    /// geometric schedule must not hand the solver a regularizer so
    /// large it dominates the system it was meant to nudge. The default
    /// cap (1.0) never binds under the default four-attempt schedule.
    pub max_regularization: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_regularization: 1e-10,
            growth: 100.0,
            jitter: 0.2,
            seed: 1,
            max_regularization: 1.0,
        }
    }
}

/// A successful retried operation: the value plus how many attempts it
/// took (1 = first-try success).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryOutcome<T> {
    /// What the operation returned.
    pub value: T,
    /// Attempts performed, including the successful one.
    pub attempts: usize,
}

/// Why a retried operation gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryError<E> {
    /// Every attempt failed with a retryable error.
    Exhausted {
        /// Attempts performed (= the policy's effective `max_attempts`).
        attempts: usize,
        /// The last attempt's error.
        last: E,
    },
    /// An attempt failed with a non-retryable error; the loop stopped
    /// immediately.
    Fatal {
        /// Attempts performed, including the fatal one.
        attempts: usize,
        /// The non-retryable error.
        error: E,
    },
}

/// The deterministic regularization schedule a policy produces: one
/// strength per attempt, first attempt jitter-free, later attempts
/// jittered and capped at `max_regularization`.
pub fn backoff_schedule(policy: &RetryPolicy) -> Vec<f64> {
    let attempts = policy.max_attempts.max(1);
    let mut rng = StdRng::seed_from_u64(policy.seed);
    let mut regularization = policy.base_regularization;
    let mut out = Vec::with_capacity(attempts);
    for attempt in 0..attempts {
        let strength = if attempt == 0 || policy.jitter <= 0.0 {
            regularization
        } else {
            regularization * rng.gen_range(1.0 - policy.jitter..1.0 + policy.jitter)
        };
        out.push(strength.min(policy.max_regularization));
        regularization *= policy.growth;
    }
    out
}

/// Runs `op` along the policy's deterministic backoff schedule until it
/// succeeds, fails non-retryably, or exhausts the attempt budget.
/// `retryable` classifies errors; `op` receives the attempt's
/// regularization strength (callers that retry for reasons other than
/// ill-conditioning — e.g. the batch supervisor isolating panics — may
/// ignore it).
///
/// # Errors
///
/// [`RetryError::Fatal`] on the first non-retryable error,
/// [`RetryError::Exhausted`] when `max_attempts` retryable failures
/// occurred; both carry the attempt count.
pub fn retry_with_backoff_on<T, E>(
    policy: RetryPolicy,
    mut retryable: impl FnMut(&E) -> bool,
    mut op: impl FnMut(f64) -> Result<T, E>,
) -> Result<RetryOutcome<T>, RetryError<E>> {
    let schedule = backoff_schedule(&policy);
    let attempts = schedule.len();
    for (attempt, &strength) in schedule.iter().enumerate() {
        match op(strength) {
            Ok(value) => return Ok(RetryOutcome { value, attempts: attempt + 1 }),
            Err(e) if retryable(&e) => {
                if attempt + 1 == attempts {
                    return Err(RetryError::Exhausted { attempts, last: e });
                }
            }
            Err(e) => return Err(RetryError::Fatal { attempts: attempt + 1, error: e }),
        }
    }
    // The schedule has max(1) entries and every last-iteration branch
    // above returns, so this is reached only for an (impossible) empty
    // schedule; one un-jittered attempt keeps the contract total.
    match op(policy.base_regularization.min(policy.max_regularization)) {
        Ok(value) => Ok(RetryOutcome { value, attempts: 1 }),
        Err(e) if retryable(&e) => Err(RetryError::Exhausted { attempts: 1, last: e }),
        Err(e) => Err(RetryError::Fatal { attempts: 1, error: e }),
    }
}

/// Runs `op` with growing jittered regularization until it succeeds, a
/// non-retryable error occurs, or the attempt budget is exhausted.
///
/// `op` receives the regularization strength for the current attempt. The
/// first attempt uses exactly `policy.base_regularization` (no jitter),
/// so a healthy fast path is untouched by the retry machinery. Built on
/// [`retry_with_backoff_on`] with [`NumericsError::SingularSystem`] as
/// the only retryable error.
///
/// # Errors
///
/// - Non-retryable errors (anything but
///   [`NumericsError::SingularSystem`]) propagate unchanged from the
///   failing attempt.
/// - Exhausting `max_attempts` yields
///   [`CoreError::Degraded`] wrapping the last singular-system error,
///   with `attempts` set to the number of tries made.
pub fn retry_with_backoff<T>(
    context: &str,
    policy: RetryPolicy,
    op: impl FnMut(f64) -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    let singular = |e: &CoreError| matches!(e, CoreError::Numerics(NumericsError::SingularSystem));
    match retry_with_backoff_on(policy, singular, op) {
        Ok(outcome) => Ok(outcome.value),
        Err(RetryError::Fatal { error, .. }) => Err(error),
        Err(RetryError::Exhausted { attempts, last }) => {
            Err(CoreError::degraded(context, attempts, last))
        }
    }
}

#[cfg(test)]
// Tests assert pass-through values exactly; not covered by clippy.toml's
// in-tests switches (those exist only for unwrap/expect/panic).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn first_success_short_circuits() {
        let mut calls = 0;
        let out = retry_with_backoff("fit", RetryPolicy::default(), |reg| {
            calls += 1;
            assert_eq!(reg, RetryPolicy::default().base_regularization);
            Ok::<_, CoreError>(reg)
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(out, RetryPolicy::default().base_regularization);
    }

    #[test]
    fn generic_retry_reports_first_try_success() {
        let out = retry_with_backoff_on(
            RetryPolicy::default(),
            |_: &String| true,
            |_| Ok::<_, String>(42),
        )
        .unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn generic_retry_counts_attempts_to_recovery() {
        let mut failures = 2;
        let out = retry_with_backoff_on(
            RetryPolicy::default(),
            |_: &String| true,
            |_| {
                if failures > 0 {
                    failures -= 1;
                    Err("transient".to_string())
                } else {
                    Ok(7)
                }
            },
        )
        .unwrap();
        assert_eq!(out.value, 7);
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn generic_retry_exhaustion_carries_last_error_and_count() {
        let err = retry_with_backoff_on(
            RetryPolicy::default(),
            |_: &String| true,
            |_| Err::<(), _>("still broken".to_string()),
        )
        .unwrap_err();
        match err {
            RetryError::Exhausted { attempts, last } => {
                assert_eq!(attempts, RetryPolicy::default().max_attempts);
                assert_eq!(last, "still broken");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn generic_retry_stops_on_fatal_error() {
        let mut calls = 0;
        let err = retry_with_backoff_on(
            RetryPolicy::default(),
            |e: &String| e == "transient",
            |_| {
                calls += 1;
                Err::<(), _>(if calls == 1 { "transient" } else { "fatal" }.to_string())
            },
        )
        .unwrap_err();
        assert_eq!(calls, 2);
        match err {
            RetryError::Fatal { attempts, error } => {
                assert_eq!(attempts, 2);
                assert_eq!(error, "fatal");
            }
            other => panic!("expected Fatal, got {other:?}"),
        }
    }

    #[test]
    fn singular_failures_retry_with_growing_regularization() {
        let mut strengths = Vec::new();
        let policy = RetryPolicy {
            max_attempts: 5,
            base_regularization: 1e-8,
            growth: 10.0,
            jitter: 0.2,
            seed: 3,
            max_regularization: 1.0,
        };
        let out = retry_with_backoff("fit", policy, |reg| {
            strengths.push(reg);
            if strengths.len() < 4 {
                Err(CoreError::Numerics(NumericsError::SingularSystem))
            } else {
                Ok(reg)
            }
        })
        .unwrap();
        assert_eq!(strengths.len(), 4);
        // Strictly growing despite jitter (growth 10 beats jitter 1.2x).
        for pair in strengths.windows(2) {
            assert!(pair[1] > pair[0], "regularization must grow: {strengths:?}");
        }
        assert_eq!(out, strengths[3]);
    }

    #[test]
    fn backoff_schedule_is_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_regularization: 1e-6,
            growth: 100.0,
            jitter: 0.2,
            seed: 5,
            max_regularization: 1e-2,
        };
        let schedule = backoff_schedule(&policy);
        assert_eq!(schedule.len(), 8);
        assert_eq!(schedule[0], 1e-6, "first attempt is the unjittered base");
        assert!(schedule.iter().all(|&s| s <= 1e-2), "{schedule:?}");
        // The geometric schedule reaches the cap well before attempt 8.
        assert_eq!(*schedule.last().unwrap(), 1e-2);
    }

    #[test]
    fn retry_sequence_is_deterministic() {
        let run = || {
            let mut strengths = Vec::new();
            let _ = retry_with_backoff("fit", RetryPolicy::default(), |reg| {
                strengths.push(reg);
                Err::<(), _>(CoreError::Numerics(NumericsError::SingularSystem))
            });
            strengths
        };
        assert_eq!(run(), run());
        assert_eq!(run(), backoff_schedule(&RetryPolicy::default()));
    }

    #[test]
    fn exhaustion_reports_degraded_with_attempt_count() {
        let err = retry_with_backoff("candidate solve", RetryPolicy::default(), |_| {
            Err::<(), _>(CoreError::Numerics(NumericsError::SingularSystem))
        })
        .unwrap_err();
        match &err {
            CoreError::Degraded {
                context, attempts, source,
            } => {
                assert_eq!(context, "candidate solve");
                assert_eq!(*attempts, RetryPolicy::default().max_attempts);
                assert!(matches!(
                    **source,
                    CoreError::Numerics(NumericsError::SingularSystem)
                ));
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The chain is walkable down to the numerics root cause.
        let root = std::error::Error::source(&err).unwrap();
        assert!(root.to_string().contains("singular"), "{root}");
    }

    #[test]
    fn other_errors_are_not_retried() {
        let mut calls = 0;
        let err = retry_with_backoff("fit", RetryPolicy::default(), |_| {
            calls += 1;
            Err::<(), _>(CoreError::InvalidInput("broken input".into()))
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(matches!(err, CoreError::InvalidInput(_)));
    }

    #[test]
    fn zero_attempt_policy_still_tries_once() {
        let mut calls = 0;
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let _ = retry_with_backoff("fit", policy, |_| {
            calls += 1;
            Ok::<_, CoreError>(())
        });
        assert_eq!(calls, 1);
    }
}
