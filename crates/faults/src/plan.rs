//! Deterministic fault plans: a fully materialized schedule of which
//! fault hits which agent in which round.
//!
//! A plan can be written by hand, or sampled from a [`FaultPlanConfig`]
//! with a seeded RNG. Either way, *all* randomness lives in the plan —
//! replaying the same plan against the same simulation seed reproduces
//! the identical run, which is what makes fault scenarios debuggable and
//! checkpoint-resumable.

use dcc_numerics::Json;
use dcc_core::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A contiguous absence: `agent` is out of the system for rounds
/// `from..until` (half-open) and rejoins at `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropoutWindow {
    /// The affected agent index.
    pub agent: usize,
    /// First round of the absence.
    pub from: usize,
    /// First round back (exclusive end of the absence).
    pub until: usize,
}

/// A single lost feedback report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingFeedback {
    /// The affected agent index.
    pub agent: usize,
    /// The round whose report is lost.
    pub round: usize,
}

/// How a corrupted feedback value is mangled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Multiply the true value by a factor (sensor miscalibration).
    Scale(f64),
    /// Add an offset (bias).
    Offset(f64),
    /// Replace the value outright (an outlier injection).
    Replace(f64),
    /// Replace with NaN (the hostile numeric case; the simulation core
    /// degrades it to a missing report rather than propagating NaN).
    NaN,
}

/// A single corrupted feedback report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptFeedback {
    /// The affected agent index.
    pub agent: usize,
    /// The round whose report is corrupted.
    pub round: usize,
    /// The corruption applied.
    pub corruption: Corruption,
}

/// A delayed payment: the amount owed to `agent` in `round` is paid
/// `delay` rounds late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaymentDelay {
    /// The affected agent index.
    pub agent: usize,
    /// The round whose payment is deferred.
    pub round: usize,
    /// How many rounds late it lands (>= 1).
    pub delay: usize,
}

/// A complete, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Dropout/rejoin windows.
    pub dropouts: Vec<DropoutWindow>,
    /// Lost reports.
    pub missing: Vec<MissingFeedback>,
    /// Corrupted reports.
    pub corrupt: Vec<CorruptFeedback>,
    /// Late payments.
    pub delays: Vec<PaymentDelay>,
}

impl FaultPlan {
    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.dropouts.is_empty()
            && self.missing.is_empty()
            && self.corrupt.is_empty()
            && self.delays.is_empty()
    }

    /// Total number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.dropouts.len() + self.missing.len() + self.corrupt.len() + self.delays.len()
    }

    /// Serializes the plan to JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "dropouts".into(),
                Json::Arr(
                    self.dropouts
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("agent".into(), Json::idx(d.agent)),
                                ("from".into(), Json::idx(d.from)),
                                ("until".into(), Json::idx(d.until)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "missing".into(),
                Json::Arr(
                    self.missing
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("agent".into(), Json::idx(m.agent)),
                                ("round".into(), Json::idx(m.round)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "corrupt".into(),
                Json::Arr(
                    self.corrupt
                        .iter()
                        .map(|c| {
                            let (kind, value) = match c.corruption {
                                Corruption::Scale(x) => ("scale", Json::num(x)),
                                Corruption::Offset(x) => ("offset", Json::num(x)),
                                Corruption::Replace(x) => ("replace", Json::num(x)),
                                Corruption::NaN => ("nan", Json::Null),
                            };
                            Json::Obj(vec![
                                ("agent".into(), Json::idx(c.agent)),
                                ("round".into(), Json::idx(c.round)),
                                ("kind".into(), Json::Str(kind.into())),
                                ("value".into(), value),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "delays".into(),
                Json::Arr(
                    self.delays
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("agent".into(), Json::idx(d.agent)),
                                ("round".into(), Json::idx(d.round)),
                                ("delay".into(), Json::idx(d.delay)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the plan to a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserializes a plan from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed or incomplete
    /// documents.
    pub fn from_json(doc: &Json) -> Result<FaultPlan, CoreError> {
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| miss(name))
        };
        let dropouts = field("dropouts")?
            .iter()
            .map(|d| {
                Ok(DropoutWindow {
                    agent: idx_of(d, "agent")?,
                    from: idx_of(d, "from")?,
                    until: idx_of(d, "until")?,
                })
            })
            .collect::<Result<_, CoreError>>()?;
        let missing = field("missing")?
            .iter()
            .map(|m| {
                Ok(MissingFeedback {
                    agent: idx_of(m, "agent")?,
                    round: idx_of(m, "round")?,
                })
            })
            .collect::<Result<_, CoreError>>()?;
        let corrupt = field("corrupt")?
            .iter()
            .map(|c| {
                let kind = c
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| miss("corrupt.kind"))?;
                let value = || {
                    c.get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| miss("corrupt.value"))
                };
                let corruption = match kind {
                    "scale" => Corruption::Scale(value()?),
                    "offset" => Corruption::Offset(value()?),
                    "replace" => Corruption::Replace(value()?),
                    "nan" => Corruption::NaN,
                    other => {
                        return Err(CoreError::InvalidInput(format!(
                            "unknown corruption kind {other:?}"
                        )))
                    }
                };
                Ok(CorruptFeedback {
                    agent: idx_of(c, "agent")?,
                    round: idx_of(c, "round")?,
                    corruption,
                })
            })
            .collect::<Result<_, CoreError>>()?;
        let delays = field("delays")?
            .iter()
            .map(|d| {
                Ok(PaymentDelay {
                    agent: idx_of(d, "agent")?,
                    round: idx_of(d, "round")?,
                    delay: idx_of(d, "delay")?,
                })
            })
            .collect::<Result<_, CoreError>>()?;
        Ok(FaultPlan {
            dropouts,
            missing,
            corrupt,
            delays,
        })
    }

    /// Deserializes a plan from a JSON string.
    ///
    /// # Errors
    ///
    /// Same as [`FaultPlan::from_json`].
    pub fn from_json_str(text: &str) -> Result<FaultPlan, CoreError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Writes the plan to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CoreError> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| CoreError::io(format!("write fault plan {}", path.display()), e))
    }

    /// Reads a plan from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failure and
    /// [`CoreError::InvalidInput`] on malformed content.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, CoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CoreError::io(format!("read fault plan {}", path.display()), e))?;
        Self::from_json_str(&text)
    }
}

fn miss(name: &str) -> CoreError {
    CoreError::InvalidInput(format!("fault plan is missing field {name:?}"))
}

fn idx_of(doc: &Json, name: &str) -> Result<usize, CoreError> {
    doc.get(name).and_then(Json::as_idx).ok_or_else(|| miss(name))
}

/// Parameters of the seeded fault-plan sampler. All probabilities are
/// per agent-round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Number of agents in the simulated population.
    pub agents: usize,
    /// Number of simulated rounds.
    pub rounds: usize,
    /// Chance a dropout window *starts* at a given agent-round.
    pub dropout_prob: f64,
    /// Dropout length is drawn uniformly from `1..=max_dropout_len`.
    pub max_dropout_len: usize,
    /// Chance a report is lost.
    pub missing_prob: f64,
    /// Chance a report is corrupted (scale/offset/replace, uniformly).
    pub corrupt_prob: f64,
    /// Chance a report is replaced by NaN.
    pub nan_prob: f64,
    /// Chance a payment is delayed.
    pub delay_prob: f64,
    /// Payment delays are drawn uniformly from `1..=max_delay`.
    pub max_delay: usize,
    /// Magnitude used by the corruption sampler: scales are drawn from
    /// `[1/outlier_scale, outlier_scale]`, offsets and replacements from
    /// `[-outlier_scale, outlier_scale]`.
    pub outlier_scale: f64,
    /// RNG seed; the same seed and config always yield the same plan.
    pub seed: u64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            agents: 10,
            rounds: 20,
            dropout_prob: 0.02,
            max_dropout_len: 3,
            missing_prob: 0.03,
            corrupt_prob: 0.03,
            nan_prob: 0.01,
            delay_prob: 0.03,
            max_delay: 3,
            outlier_scale: 10.0,
            seed: 42,
        }
    }
}

impl FaultPlanConfig {
    /// Samples a concrete [`FaultPlan`] — deterministically in `(self,
    /// seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] when a probability is outside
    /// `[0, 1]` or a length/delay maximum is zero while its probability
    /// is positive.
    pub fn generate(&self) -> Result<FaultPlan, CoreError> {
        for (name, p) in [
            ("dropout_prob", self.dropout_prob),
            ("missing_prob", self.missing_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("nan_prob", self.nan_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(CoreError::InvalidParams(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if self.dropout_prob > 0.0 && self.max_dropout_len == 0 {
            return Err(CoreError::InvalidParams(
                "max_dropout_len must be >= 1 when dropout_prob > 0".into(),
            ));
        }
        if self.delay_prob > 0.0 && self.max_delay == 0 {
            return Err(CoreError::InvalidParams(
                "max_delay must be >= 1 when delay_prob > 0".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut plan = FaultPlan::default();
        for agent in 0..self.agents {
            let mut dropped_until = 0usize;
            for round in 0..self.rounds {
                // Dropout windows are sampled first and suppress the
                // other fault channels while active (an absent agent has
                // no report to lose or corrupt, no payment due).
                if round >= dropped_until
                    && self.dropout_prob > 0.0
                    && rng.gen_bool(self.dropout_prob)
                {
                    let len = rng.gen_range(1..=self.max_dropout_len);
                    plan.dropouts.push(DropoutWindow {
                        agent,
                        from: round,
                        until: round + len,
                    });
                    dropped_until = round + len;
                }
                if round < dropped_until {
                    continue;
                }
                if self.missing_prob > 0.0 && rng.gen_bool(self.missing_prob) {
                    plan.missing.push(MissingFeedback { agent, round });
                } else if self.nan_prob > 0.0 && rng.gen_bool(self.nan_prob) {
                    plan.corrupt.push(CorruptFeedback {
                        agent,
                        round,
                        corruption: Corruption::NaN,
                    });
                } else if self.corrupt_prob > 0.0 && rng.gen_bool(self.corrupt_prob) {
                    let corruption = match rng.gen_range(0..3u32) {
                        0 => Corruption::Scale(
                            rng.gen_range(1.0 / self.outlier_scale..self.outlier_scale),
                        ),
                        1 => Corruption::Offset(
                            rng.gen_range(-self.outlier_scale..self.outlier_scale),
                        ),
                        _ => Corruption::Replace(
                            rng.gen_range(-self.outlier_scale..self.outlier_scale),
                        ),
                    };
                    plan.corrupt.push(CorruptFeedback {
                        agent,
                        round,
                        corruption,
                    });
                }
                if self.delay_prob > 0.0 && rng.gen_bool(self.delay_prob) {
                    plan.delays.push(PaymentDelay {
                        agent,
                        round,
                        delay: rng.gen_range(1..=self.max_delay),
                    });
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_config(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig {
            agents: 20,
            rounds: 50,
            dropout_prob: 0.05,
            missing_prob: 0.1,
            corrupt_prob: 0.1,
            nan_prob: 0.05,
            delay_prob: 0.1,
            seed,
            ..FaultPlanConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = busy_config(7).generate().unwrap();
        let b = busy_config(7).generate().unwrap();
        let c = busy_config(8).generate().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ for a busy config");
        assert!(!a.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_the_plan() {
        let plan = busy_config(21).generate().unwrap();
        let text = plan.to_json_string();
        let back = FaultPlan::from_json_str(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn hand_written_plans_round_trip_including_nan() {
        let plan = FaultPlan {
            dropouts: vec![DropoutWindow {
                agent: 1,
                from: 2,
                until: 5,
            }],
            missing: vec![MissingFeedback { agent: 0, round: 3 }],
            corrupt: vec![
                CorruptFeedback {
                    agent: 2,
                    round: 4,
                    corruption: Corruption::NaN,
                },
                CorruptFeedback {
                    agent: 2,
                    round: 6,
                    corruption: Corruption::Replace(-7.125),
                },
            ],
            delays: vec![PaymentDelay {
                agent: 0,
                round: 1,
                delay: 2,
            }],
        };
        let back = FaultPlan::from_json_str(&plan.to_json_string()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn dropouts_suppress_other_faults_in_window() {
        let plan = busy_config(33).generate().unwrap();
        for d in &plan.dropouts {
            for m in &plan.missing {
                assert!(
                    m.agent != d.agent || m.round < d.from || m.round >= d.until,
                    "missing inside dropout window"
                );
            }
            for c in &plan.corrupt {
                assert!(
                    c.agent != d.agent || c.round < d.from || c.round >= d.until,
                    "corruption inside dropout window"
                );
            }
            for p in &plan.delays {
                assert!(
                    p.agent != d.agent || p.round < d.from || p.round >= d.until,
                    "delay inside dropout window"
                );
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad_prob = FaultPlanConfig {
            missing_prob: 1.5,
            ..FaultPlanConfig::default()
        };
        assert!(bad_prob.generate().is_err());
        let bad_len = FaultPlanConfig {
            dropout_prob: 0.1,
            max_dropout_len: 0,
            ..FaultPlanConfig::default()
        };
        assert!(bad_len.generate().is_err());
        let bad_delay = FaultPlanConfig {
            delay_prob: 0.1,
            max_delay: 0,
            ..FaultPlanConfig::default()
        };
        assert!(bad_delay.generate().is_err());
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let plan = busy_config(5).generate().unwrap();
        let dir = std::env::temp_dir().join("dcc-faults-plan-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        plan.save(&path).unwrap();
        assert_eq!(FaultPlan::load(&path).unwrap(), plan);

        let missing = dir.join("does-not-exist.json");
        let err = FaultPlan::load(&missing).unwrap_err();
        assert!(matches!(err, CoreError::Io { .. }), "{err}");
    }
}
