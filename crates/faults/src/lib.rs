//! # dcc-faults
//!
//! Fault injection, graceful degradation, and checkpoint/resume for the
//! dyncontract simulation pipeline.
//!
//! Crowdsourcing platforms are distributed systems: workers drop out and
//! rejoin, feedback reports get lost or corrupted in flight, payments
//! land late, and numeric pipelines occasionally hit singular systems.
//! This crate makes all of that *reproducible*:
//!
//! - [`FaultPlan`] / [`FaultPlanConfig`] — a fully materialized,
//!   JSON-serializable schedule of faults. All randomness is spent at
//!   plan-generation time, so a `(simulation seed, plan)` pair pins down
//!   the entire faulty run.
//! - [`FaultInjector`] — implements [`dcc_core::RoundFaults`] from a
//!   plan; pure in `(agent, round)` apart from a log of fired faults.
//! - [`checkpoint`] — serializes the complete mid-run state of
//!   [`dcc_core::Simulation`] and [`dcc_core::AdaptiveSimulation`] to
//!   JSON and restores it bit-exactly (shortest-round-trip floats,
//!   string-encoded non-finite values and RNG words).
//! - [`retry_with_backoff`] — bounded, deterministically jittered
//!   retries for transient [`dcc_numerics::NumericsError::SingularSystem`]
//!   failures, degrading to [`dcc_core::CoreError::Degraded`] on
//!   exhaustion.
//!
//! ## Example: a reproducible faulty run with mid-run checkpoints
//!
//! ```
//! use dcc_faults::{checkpoint, FaultInjector, FaultPlanConfig};
//! use dcc_core::{ModelParams, Simulation, SimulationConfig};
//!
//! # fn main() -> Result<(), dcc_core::CoreError> {
//! let plan = FaultPlanConfig { agents: 0, rounds: 8, seed: 5, ..Default::default() }
//!     .generate()?;
//! let sim = Simulation::new(ModelParams::default(), SimulationConfig {
//!     rounds: 8, feedback_noise_sd: 0.0, seed: 1,
//! });
//! let mut injector = FaultInjector::new(&plan);
//! let mut state = sim.start(&[])?;
//! while sim.step(&[], &mut state, &mut injector) {
//!     // A real caller would persist this each round:
//!     let snapshot = checkpoint::sim_state_to_json(&state).to_string();
//!     assert_eq!(checkpoint::sim_state_from_json(
//!         &dcc_faults::Json::parse(&snapshot)?)?, state);
//! }
//! assert_eq!(sim.outcome_of(&state)?.rounds.len(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod injector;
mod plan;
mod retry;

pub use checkpoint::{
    adaptive_state_from_json, adaptive_state_to_json, load_adaptive_state, load_sim_state,
    save_adaptive_state, save_json_atomic, save_sim_state, sim_state_from_json, sim_state_to_json,
    CHECKPOINT_VERSION,
};
pub use injector::{FaultHitCounts, FaultInjector, FiredFault};
// The JSON value moved to the bottom of the workspace (`dcc-numerics`)
// so `dcc-trace` can serialize adversary plans; the re-export keeps
// every existing `dcc_faults::Json` call site working.
pub use dcc_numerics::{Json, JsonError};
pub use plan::{
    Corruption, CorruptFeedback, DropoutWindow, FaultPlan, FaultPlanConfig, MissingFeedback,
    PaymentDelay,
};
pub use retry::{
    backoff_schedule, retry_with_backoff, retry_with_backoff_on, RetryError, RetryOutcome,
    RetryPolicy,
};
