//! The bridge from a [`FaultPlan`] to a running simulation: an
//! implementation of [`dcc_core::RoundFaults`] that answers the
//! simulation's per-round queries from precomputed lookup maps.
//!
//! The injector is *pure* in `(agent, round)` — all randomness was spent
//! when the plan was generated — so re-creating it from the same plan
//! after a checkpoint restore reproduces the remaining run bit-exactly.

use crate::plan::{Corruption, FaultPlan};
use dcc_core::RoundFaults;
use std::collections::{BTreeMap, BTreeSet};

/// One fault that actually fired during a run, for post-hoc reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FiredFault {
    /// The agent was absent this round.
    Dropped {
        /// Affected agent.
        agent: usize,
        /// Round of the absence.
        round: usize,
    },
    /// The agent's report was lost.
    LostFeedback {
        /// Affected agent.
        agent: usize,
        /// Round of the loss.
        round: usize,
    },
    /// The agent's report was corrupted.
    CorruptedFeedback {
        /// Affected agent.
        agent: usize,
        /// Round of the corruption.
        round: usize,
        /// The value before corruption.
        original: f64,
        /// The value after corruption (possibly non-finite).
        corrupted: f64,
    },
    /// The agent's payment was deferred.
    DelayedPayment {
        /// Affected agent.
        agent: usize,
        /// Round whose payment was deferred.
        round: usize,
        /// Number of rounds the payment slips.
        delay: usize,
    },
}

/// A stateless (apart from its log) [`RoundFaults`] implementation backed
/// by a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    dropouts: BTreeMap<usize, Vec<(usize, usize)>>,
    missing: BTreeSet<(usize, usize)>,
    corrupt: BTreeMap<(usize, usize), Corruption>,
    delays: BTreeMap<(usize, usize), usize>,
    log: Vec<FiredFault>,
}

impl FaultInjector {
    /// Builds the lookup structures from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut dropouts: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for d in &plan.dropouts {
            dropouts.entry(d.agent).or_default().push((d.from, d.until));
        }
        FaultInjector {
            dropouts,
            missing: plan.missing.iter().map(|m| (m.agent, m.round)).collect(),
            corrupt: plan
                .corrupt
                .iter()
                .map(|c| ((c.agent, c.round), c.corruption))
                .collect(),
            delays: plan
                .delays
                .iter()
                .map(|d| ((d.agent, d.round), d.delay))
                .collect(),
            log: Vec::new(),
        }
    }

    /// The faults that have fired so far, in simulation order.
    pub fn log(&self) -> &[FiredFault] {
        &self.log
    }

    /// Drops the accumulated log (e.g. after persisting it).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Per-kind totals of the faults fired so far — the numbers the
    /// engine's simulate stage publishes as `sim.faults.*` counters.
    pub fn hit_counts(&self) -> FaultHitCounts {
        let mut counts = FaultHitCounts::default();
        for fired in &self.log {
            match fired {
                FiredFault::Dropped { .. } => counts.dropped += 1,
                FiredFault::LostFeedback { .. } => counts.lost_feedback += 1,
                FiredFault::CorruptedFeedback { .. } => counts.corrupted_feedback += 1,
                FiredFault::DelayedPayment { .. } => counts.delayed_payments += 1,
            }
        }
        counts
    }
}

/// Per-kind totals from a [`FaultInjector`] log.
///
/// One log entry is one *hit*: a dropout window contributes one hit per
/// round it covers, not one per scheduled window — so `total()` can
/// exceed the plan's event count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultHitCounts {
    /// Agent-absence rounds.
    pub dropped: usize,
    /// Lost feedback reports.
    pub lost_feedback: usize,
    /// Corrupted feedback reports.
    pub corrupted_feedback: usize,
    /// Deferred payments.
    pub delayed_payments: usize,
}

impl FaultHitCounts {
    /// Sum over every kind — always equal to the log length.
    pub fn total(&self) -> usize {
        self.dropped + self.lost_feedback + self.corrupted_feedback + self.delayed_payments
    }
}

impl RoundFaults for FaultInjector {
    fn dropped(&mut self, agent: usize, round: usize) -> bool {
        let out = self
            .dropouts
            .get(&agent)
            .is_some_and(|ws| ws.iter().any(|&(from, until)| round >= from && round < until));
        if out {
            self.log.push(FiredFault::Dropped { agent, round });
        }
        out
    }

    fn perturb_feedback(&mut self, agent: usize, round: usize, feedback: f64) -> Option<f64> {
        if self.missing.contains(&(agent, round)) {
            self.log.push(FiredFault::LostFeedback { agent, round });
            return None;
        }
        if let Some(corruption) = self.corrupt.get(&(agent, round)) {
            let corrupted = match *corruption {
                Corruption::Scale(x) => feedback * x,
                Corruption::Offset(x) => feedback + x,
                Corruption::Replace(x) => x,
                Corruption::NaN => f64::NAN,
            };
            self.log.push(FiredFault::CorruptedFeedback {
                agent,
                round,
                original: feedback,
                corrupted,
            });
            return Some(corrupted);
        }
        Some(feedback)
    }

    fn payment_delay(&mut self, agent: usize, round: usize) -> usize {
        let delay = self.delays.get(&(agent, round)).copied().unwrap_or(0);
        if delay > 0 {
            self.log.push(FiredFault::DelayedPayment { agent, round, delay });
        }
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CorruptFeedback, DropoutWindow, MissingFeedback, PaymentDelay};

    fn tiny_plan() -> FaultPlan {
        FaultPlan {
            dropouts: vec![DropoutWindow {
                agent: 0,
                from: 2,
                until: 4,
            }],
            missing: vec![MissingFeedback { agent: 1, round: 0 }],
            corrupt: vec![
                CorruptFeedback {
                    agent: 1,
                    round: 1,
                    corruption: Corruption::Scale(2.0),
                },
                CorruptFeedback {
                    agent: 1,
                    round: 2,
                    corruption: Corruption::Offset(-1.0),
                },
                CorruptFeedback {
                    agent: 1,
                    round: 3,
                    corruption: Corruption::Replace(9.0),
                },
                CorruptFeedback {
                    agent: 1,
                    round: 4,
                    corruption: Corruption::NaN,
                },
            ],
            delays: vec![PaymentDelay {
                agent: 0,
                round: 0,
                delay: 2,
            }],
        }
    }

    #[test]
    fn lookups_match_the_plan() {
        let mut inj = FaultInjector::new(&tiny_plan());
        assert!(!inj.dropped(0, 1));
        assert!(inj.dropped(0, 2));
        assert!(inj.dropped(0, 3));
        assert!(!inj.dropped(0, 4), "rejoins at `until`");
        assert!(!inj.dropped(1, 2), "other agents unaffected");

        assert_eq!(inj.perturb_feedback(1, 0, 3.0), None);
        assert_eq!(inj.perturb_feedback(1, 1, 3.0), Some(6.0));
        assert_eq!(inj.perturb_feedback(1, 2, 3.0), Some(2.0));
        assert_eq!(inj.perturb_feedback(1, 3, 3.0), Some(9.0));
        assert!(inj.perturb_feedback(1, 4, 3.0).unwrap().is_nan());
        assert_eq!(inj.perturb_feedback(1, 5, 3.0), Some(3.0));

        assert_eq!(inj.payment_delay(0, 0), 2);
        assert_eq!(inj.payment_delay(0, 1), 0);
    }

    #[test]
    fn log_records_only_fired_faults() {
        let mut inj = FaultInjector::new(&tiny_plan());
        inj.dropped(0, 0); // miss
        inj.dropped(0, 2); // hit
        inj.perturb_feedback(1, 0, 3.0); // lost
        inj.perturb_feedback(1, 5, 3.0); // clean
        inj.payment_delay(0, 0); // delayed
        assert_eq!(
            inj.log(),
            &[
                FiredFault::Dropped { agent: 0, round: 2 },
                FiredFault::LostFeedback { agent: 1, round: 0 },
                FiredFault::DelayedPayment {
                    agent: 0,
                    round: 0,
                    delay: 2
                },
            ]
        );
        inj.clear_log();
        assert!(inj.log().is_empty());
    }

    #[test]
    fn hit_counts_tally_the_log_per_kind() {
        let mut inj = FaultInjector::new(&tiny_plan());
        assert_eq!(inj.hit_counts(), FaultHitCounts::default());
        inj.dropped(0, 2);
        inj.perturb_feedback(1, 0, 0.5);
        inj.payment_delay(0, 0);
        let counts = inj.hit_counts();
        assert_eq!(counts.dropped, 1);
        assert_eq!(counts.lost_feedback, 1);
        assert_eq!(counts.delayed_payments, 1);
        assert_eq!(counts.total(), inj.log().len());
    }

    #[test]
    fn empty_plan_is_the_identity() {
        let mut inj = FaultInjector::new(&FaultPlan::default());
        for agent in 0..3 {
            for round in 0..5 {
                assert!(!inj.dropped(agent, round));
                assert_eq!(inj.perturb_feedback(agent, round, 1.25), Some(1.25));
                assert_eq!(inj.payment_delay(agent, round), 0);
            }
        }
        assert!(inj.log().is_empty());
    }
}
