//! Checkpoint/resume for the simulation loops: serializes the complete
//! mid-run state of a [`dcc_core::Simulation`] ([`SimState`]) or an
//! [`dcc_core::AdaptiveSimulation`] ([`AdaptiveState`]) to JSON and
//! restores it bit-exactly.
//!
//! Bit-exactness rests on three encoding choices (see [`crate::json`]):
//! finite `f64`s use Rust's shortest-round-trip formatting, non-finite
//! values are string-encoded, and the RNG's four `u64` words are written
//! as decimal strings (plain JSON numbers lose bits above `2^53`).

use dcc_numerics::Json;
use dcc_core::{AdaptiveState, Contract, CoreError, RoundRecord, SimState};
use dcc_numerics::Quadratic;
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::path::Path;

/// Format version written into every checkpoint document.
pub const CHECKPOINT_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Shared encoding helpers
// ---------------------------------------------------------------------

fn f64_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::num(x)).collect())
}

fn f64_vec(doc: &Json, name: &str) -> Result<Vec<f64>, CoreError> {
    arr_of(doc, name)?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| malformed(name)))
        .collect()
}

fn rng_to_json(rng: &StdRng) -> Json {
    Json::Arr(rng.state().iter().map(|&w| Json::u64(w)).collect())
}

fn rng_from_json(doc: &Json, name: &str) -> Result<StdRng, CoreError> {
    let words = arr_of(doc, name)?;
    if words.len() != 4 {
        return Err(malformed(name));
    }
    let mut s = [0u64; 4];
    for (slot, w) in s.iter_mut().zip(words) {
        *slot = w.as_u64().ok_or_else(|| malformed(name))?;
    }
    Ok(StdRng::from_state(s))
}

fn rounds_to_json(rounds: &[RoundRecord]) -> Json {
    Json::Arr(
        rounds
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("round".into(), Json::idx(r.round)),
                    ("benefit".into(), Json::num(r.benefit)),
                    ("payment".into(), Json::num(r.payment)),
                    ("requester_utility".into(), Json::num(r.requester_utility)),
                ])
            })
            .collect(),
    )
}

fn rounds_from_json(doc: &Json, name: &str) -> Result<Vec<RoundRecord>, CoreError> {
    arr_of(doc, name)?
        .iter()
        .map(|r| {
            Ok(RoundRecord {
                round: r.get("round").and_then(Json::as_idx).ok_or_else(|| malformed(name))?,
                benefit: r
                    .get("benefit")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed(name))?,
                payment: r
                    .get("payment")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed(name))?,
                requester_utility: r
                    .get("requester_utility")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| malformed(name))?,
            })
        })
        .collect()
}

fn contract_to_json(contract: &Contract) -> Json {
    Json::Obj(vec![
        ("knots".into(), f64_arr(contract.feedback_knots())),
        ("payments".into(), f64_arr(contract.payments())),
    ])
}

fn contract_from_json(doc: &Json) -> Result<Contract, CoreError> {
    let knots = f64_vec(doc, "knots")?;
    let payments = f64_vec(doc, "payments")?;
    Contract::new(knots, payments)
}

fn quadratic_to_json(psi: &Quadratic) -> Json {
    Json::Arr(vec![
        Json::num(psi.r2()),
        Json::num(psi.r1()),
        Json::num(psi.r0()),
    ])
}

fn quadratic_from_json(doc: &Json, name: &str) -> Result<Quadratic, CoreError> {
    let coeffs = doc.as_arr().ok_or_else(|| malformed(name))?;
    if coeffs.len() != 3 {
        return Err(malformed(name));
    }
    let mut c = [0.0f64; 3];
    for (slot, x) in c.iter_mut().zip(coeffs) {
        *slot = x.as_f64().ok_or_else(|| malformed(name))?;
    }
    Ok(Quadratic::new(c[0], c[1], c[2]))
}

fn malformed(name: &str) -> CoreError {
    CoreError::InvalidInput(format!("checkpoint field {name:?} is missing or malformed"))
}

fn arr_of<'a>(doc: &'a Json, name: &str) -> Result<&'a [Json], CoreError> {
    doc.get(name).and_then(Json::as_arr).ok_or_else(|| malformed(name))
}

fn check_header(doc: &Json, kind: &str) -> Result<(), CoreError> {
    let version = doc.get("version").and_then(Json::as_u64);
    if version != Some(CHECKPOINT_VERSION) {
        return Err(CoreError::InvalidInput(format!(
            "unsupported checkpoint version {version:?} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let found = doc.get("kind").and_then(Json::as_str);
    if found != Some(kind) {
        return Err(CoreError::InvalidInput(format!(
            "checkpoint kind {found:?} does not match expected {kind:?}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// SimState
// ---------------------------------------------------------------------

/// Serializes a [`SimState`] to a JSON document.
pub fn sim_state_to_json(state: &SimState) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::u64(CHECKPOINT_VERSION)),
        ("kind".into(), Json::Str("sim".into())),
        ("next_round".into(), Json::idx(state.next_round)),
        ("rng".into(), rng_to_json(&state.rng)),
        ("efforts".into(), f64_arr(&state.efforts)),
        ("pending_payment".into(), f64_arr(&state.pending_payment)),
        (
            "delayed_payments".into(),
            Json::Arr(
                state
                    .delayed_payments
                    .iter()
                    .map(|per_agent| {
                        Json::Arr(
                            per_agent
                                .iter()
                                .map(|&(due, amount)| {
                                    Json::Arr(vec![Json::idx(due), Json::num(amount)])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        ("agent_compensation".into(), f64_arr(&state.agent_compensation)),
        ("rounds".into(), rounds_to_json(&state.rounds)),
    ])
}

/// Restores a [`SimState`] from a JSON document.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] on a malformed document, a wrong
/// `kind`, or an unsupported `version`.
pub fn sim_state_from_json(doc: &Json) -> Result<SimState, CoreError> {
    check_header(doc, "sim")?;
    let delayed_payments = arr_of(doc, "delayed_payments")?
        .iter()
        .map(|per_agent| {
            per_agent
                .as_arr()
                .ok_or_else(|| malformed("delayed_payments"))?
                .iter()
                .map(|entry| {
                    let pair = entry.as_arr().ok_or_else(|| malformed("delayed_payments"))?;
                    match pair {
                        [due, amount] => Ok((
                            due.as_idx().ok_or_else(|| malformed("delayed_payments"))?,
                            amount.as_f64().ok_or_else(|| malformed("delayed_payments"))?,
                        )),
                        _ => Err(malformed("delayed_payments")),
                    }
                })
                .collect::<Result<Vec<_>, CoreError>>()
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(SimState {
        next_round: doc
            .get("next_round")
            .and_then(Json::as_idx)
            .ok_or_else(|| malformed("next_round"))?,
        rng: rng_from_json(doc, "rng")?,
        efforts: f64_vec(doc, "efforts")?,
        pending_payment: f64_vec(doc, "pending_payment")?,
        delayed_payments,
        agent_compensation: f64_vec(doc, "agent_compensation")?,
        rounds: rounds_from_json(doc, "rounds")?,
    })
}

/// Writes a JSON document to `path` atomically: the bytes go to a
/// sibling `.tmp` file first and are renamed into place, so a crash
/// mid-write can never leave a truncated checkpoint where a valid one
/// used to be. The shared persistence primitive of every crash-safe
/// checkpoint writer (batch scheduler, streaming service).
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure; the temp file is
/// removed on a failed rename.
pub fn save_json_atomic(path: &Path, doc: &Json) -> Result<(), CoreError> {
    let tmp = path.with_extension("tmp");
    let result = std::fs::write(&tmp, doc.to_string())
        .and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| CoreError::io(format!("write checkpoint {}", path.display()), e))
}

/// Writes a [`SimState`] checkpoint file.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure.
pub fn save_sim_state(path: &Path, state: &SimState) -> Result<(), CoreError> {
    save_json_atomic(path, &sim_state_to_json(state))
}

/// Reads a [`SimState`] checkpoint file.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure and
/// [`CoreError::InvalidInput`] on malformed content.
pub fn load_sim_state(path: &Path) -> Result<SimState, CoreError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CoreError::io(format!("read checkpoint {}", path.display()), e))?;
    sim_state_from_json(&Json::parse(&text)?)
}

// ---------------------------------------------------------------------
// AdaptiveState
// ---------------------------------------------------------------------

/// Serializes an [`AdaptiveState`] to a JSON document.
///
/// HashMap-backed fields are written with sorted keys, so serializing the
/// same state twice produces identical bytes.
pub fn adaptive_state_to_json(state: &AdaptiveState) -> Json {
    let mut psi_keys: Vec<usize> = state.group_psis.keys().copied().collect();
    psi_keys.sort_unstable();
    let group_psis = Json::Obj(
        psi_keys
            .iter()
            .map(|k| (k.to_string(), quadratic_to_json(&state.group_psis[k])))
            .collect(),
    );
    let mut obs_keys: Vec<usize> = state.group_obs.keys().copied().collect();
    obs_keys.sort_unstable();
    let group_obs = Json::Obj(
        obs_keys
            .iter()
            .map(|k| {
                let entries = Json::Arr(
                    state.group_obs[k]
                        .iter()
                        .map(|&(t, effort, feedback)| {
                            Json::Arr(vec![
                                Json::idx(t),
                                Json::num(effort),
                                Json::num(feedback),
                            ])
                        })
                        .collect(),
                );
                (k.to_string(), entries)
            })
            .collect(),
    );
    Json::Obj(vec![
        ("version".into(), Json::u64(CHECKPOINT_VERSION)),
        ("kind".into(), Json::Str("adaptive".into())),
        ("next_round".into(), Json::idx(state.next_round)),
        ("rng".into(), rng_to_json(&state.rng)),
        ("group_psis".into(), group_psis),
        ("est_weights".into(), f64_arr(&state.est_weights)),
        ("group_obs".into(), group_obs),
        (
            "audit_obs".into(),
            Json::Arr(
                state
                    .audit_obs
                    .iter()
                    .map(|per_agent| {
                        Json::Arr(
                            per_agent
                                .iter()
                                .map(|&(t, w)| Json::Arr(vec![Json::idx(t), Json::num(w)]))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "contracts".into(),
            Json::Arr(state.contracts.iter().map(contract_to_json).collect()),
        ),
        (
            "recontract_rounds".into(),
            Json::Arr(state.recontract_rounds.iter().map(|&r| Json::idx(r)).collect()),
        ),
        ("pending_payment".into(), f64_arr(&state.pending_payment)),
        ("agent_compensation".into(), f64_arr(&state.agent_compensation)),
        ("rounds".into(), rounds_to_json(&state.rounds)),
    ])
}

/// Restores an [`AdaptiveState`] from a JSON document.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] on a malformed document, a wrong
/// `kind`, an unsupported `version`, or an invalid embedded contract.
pub fn adaptive_state_from_json(doc: &Json) -> Result<AdaptiveState, CoreError> {
    check_header(doc, "adaptive")?;
    let parse_key = |key: &str| -> Result<usize, CoreError> {
        key.parse::<usize>()
            .map_err(|_| CoreError::InvalidInput(format!("bad group key {key:?} in checkpoint")))
    };

    let psis_doc = match doc.get("group_psis") {
        Some(Json::Obj(entries)) => entries,
        _ => return Err(malformed("group_psis")),
    };
    let mut group_psis = BTreeMap::new();
    for (key, value) in psis_doc {
        group_psis.insert(parse_key(key)?, quadratic_from_json(value, "group_psis")?);
    }

    let obs_doc = match doc.get("group_obs") {
        Some(Json::Obj(entries)) => entries,
        _ => return Err(malformed("group_obs")),
    };
    let mut group_obs = BTreeMap::new();
    for (key, value) in obs_doc {
        let entries = value
            .as_arr()
            .ok_or_else(|| malformed("group_obs"))?
            .iter()
            .map(|entry| {
                let triple = entry.as_arr().ok_or_else(|| malformed("group_obs"))?;
                match triple {
                    [t, effort, feedback] => Ok((
                        t.as_idx().ok_or_else(|| malformed("group_obs"))?,
                        effort.as_f64().ok_or_else(|| malformed("group_obs"))?,
                        feedback.as_f64().ok_or_else(|| malformed("group_obs"))?,
                    )),
                    _ => Err(malformed("group_obs")),
                }
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        group_obs.insert(parse_key(key)?, entries);
    }

    let audit_obs = arr_of(doc, "audit_obs")?
        .iter()
        .map(|per_agent| {
            per_agent
                .as_arr()
                .ok_or_else(|| malformed("audit_obs"))?
                .iter()
                .map(|entry| {
                    let pair = entry.as_arr().ok_or_else(|| malformed("audit_obs"))?;
                    match pair {
                        [t, w] => Ok((
                            t.as_idx().ok_or_else(|| malformed("audit_obs"))?,
                            w.as_f64().ok_or_else(|| malformed("audit_obs"))?,
                        )),
                        _ => Err(malformed("audit_obs")),
                    }
                })
                .collect::<Result<Vec<_>, CoreError>>()
        })
        .collect::<Result<Vec<_>, CoreError>>()?;

    let contracts = arr_of(doc, "contracts")?
        .iter()
        .map(contract_from_json)
        .collect::<Result<Vec<_>, CoreError>>()?;

    let recontract_rounds = arr_of(doc, "recontract_rounds")?
        .iter()
        .map(|r| r.as_idx().ok_or_else(|| malformed("recontract_rounds")))
        .collect::<Result<Vec<_>, CoreError>>()?;

    Ok(AdaptiveState {
        next_round: doc
            .get("next_round")
            .and_then(Json::as_idx)
            .ok_or_else(|| malformed("next_round"))?,
        rng: rng_from_json(doc, "rng")?,
        group_psis,
        est_weights: f64_vec(doc, "est_weights")?,
        group_obs,
        audit_obs,
        contracts,
        recontract_rounds,
        pending_payment: f64_vec(doc, "pending_payment")?,
        agent_compensation: f64_vec(doc, "agent_compensation")?,
        rounds: rounds_from_json(doc, "rounds")?,
    })
}

/// Writes an [`AdaptiveState`] checkpoint file.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure.
pub fn save_adaptive_state(path: &Path, state: &AdaptiveState) -> Result<(), CoreError> {
    std::fs::write(path, adaptive_state_to_json(state).to_string())
        .map_err(|e| CoreError::io(format!("write checkpoint {}", path.display()), e))
}

/// Reads an [`AdaptiveState`] checkpoint file.
///
/// # Errors
///
/// Returns [`CoreError::Io`] on filesystem failure and
/// [`CoreError::InvalidInput`] on malformed content.
pub fn load_adaptive_state(path: &Path) -> Result<AdaptiveState, CoreError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CoreError::io(format!("read checkpoint {}", path.display()), e))?;
    adaptive_state_from_json(&Json::parse(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::FaultInjector;
    use crate::plan::FaultPlanConfig;
    use dcc_core::{
        AdaptiveAgent, AdaptiveConfig, AdaptiveSimulation, AgentSpec, ConductModel,
        ContractBuilder, Discretization, ModelParams, Simulation, SimulationConfig,
    };

    fn params() -> ModelParams {
        ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        }
    }

    fn agent(id: usize, omega: f64, weight: f64) -> AgentSpec {
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        let disc = Discretization::new(16, 0.625).unwrap();
        let built = ContractBuilder::new(params(), disc, psi)
            .malicious(omega)
            .weight(weight)
            .build()
            .unwrap();
        AgentSpec {
            id,
            members: 1,
            omega,
            weight,
            psi,
            contract: built.contract().clone(),
            in_system: true,
        }
    }

    #[test]
    fn sim_state_round_trip_is_exact_mid_run_with_faults() {
        let agents =
            vec![agent(0, 0.0, 1.0), agent(1, 0.5, 0.6), agent(2, 0.3, 0.8)];
        let plan = FaultPlanConfig {
            agents: 3,
            rounds: 30,
            dropout_prob: 0.05,
            missing_prob: 0.1,
            corrupt_prob: 0.1,
            nan_prob: 0.05,
            delay_prob: 0.1,
            seed: 91,
            ..FaultPlanConfig::default()
        }
        .generate()
        .unwrap();
        let sim = Simulation::new(
            params(),
            SimulationConfig {
                rounds: 30,
                feedback_noise_sd: 0.5,
                seed: 23,
            },
        );

        // Uninterrupted run under the plan.
        let mut injector = FaultInjector::new(&plan);
        let direct = sim.run_with_faults(&agents, &mut injector).unwrap();

        // Interrupted run: stop at round 11, serialize, restore, resume
        // with a *fresh* injector built from the same plan.
        let mut injector = FaultInjector::new(&plan);
        let mut state = sim.start(&agents).unwrap();
        for _ in 0..11 {
            assert!(sim.step(&agents, &mut state, &mut injector));
        }
        let text = sim_state_to_json(&state).to_string();
        let mut restored = sim_state_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(state, restored);

        let mut fresh_injector = FaultInjector::new(&plan);
        while sim.step(&agents, &mut restored, &mut fresh_injector) {}
        assert_eq!(direct, sim.outcome_of(&restored).unwrap());
    }

    #[test]
    fn adaptive_state_round_trip_is_exact_mid_run() {
        let agents: Vec<AdaptiveAgent> = (0..6)
            .map(|i| AdaptiveAgent {
                id: i,
                group: i % 2,
                base_omega: 0.0,
                base_weight: 1.0 + 0.1 * (i % 3) as f64,
                true_psi: Quadratic::new(-0.15, 2.5, 1.0),
                conduct: ConductModel::Stationary,
            })
            .collect();
        let sim = AdaptiveSimulation::new(
            ModelParams {
                mu: 1.0,
                ..ModelParams::default()
            },
            AdaptiveConfig {
                rounds: 30,
                recontract_every: 5,
                seed: 19,
                ..AdaptiveConfig::default()
            },
        );
        let direct = sim.run(&agents).unwrap();

        let mut state = sim.start(&agents).unwrap();
        for _ in 0..13 {
            assert!(sim.step(&agents, &mut state).unwrap());
        }
        let text = adaptive_state_to_json(&state).to_string();
        let mut restored = adaptive_state_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(state, restored);

        while sim.step(&agents, &mut restored).unwrap() {}
        assert_eq!(direct, sim.outcome_of(&restored).unwrap());
    }

    #[test]
    fn serialization_is_deterministic() {
        let agents = vec![agent(0, 0.0, 1.0), agent(1, 0.4, 0.7)];
        let sim = Simulation::new(
            params(),
            SimulationConfig {
                rounds: 10,
                feedback_noise_sd: 0.5,
                seed: 5,
            },
        );
        let mut state = sim.start(&agents).unwrap();
        let mut faults = dcc_core::NoFaults;
        for _ in 0..4 {
            sim.step(&agents, &mut state, &mut faults);
        }
        assert_eq!(
            sim_state_to_json(&state).to_string(),
            sim_state_to_json(&state).to_string()
        );
    }

    #[test]
    fn file_round_trip_and_error_paths() {
        let agents = vec![agent(0, 0.0, 1.0)];
        let sim = Simulation::new(
            params(),
            SimulationConfig {
                rounds: 6,
                feedback_noise_sd: 0.3,
                seed: 2,
            },
        );
        let mut state = sim.start(&agents).unwrap();
        let mut faults = dcc_core::NoFaults;
        for _ in 0..3 {
            sim.step(&agents, &mut state, &mut faults);
        }
        let dir = std::env::temp_dir().join("dcc-faults-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.json");
        save_sim_state(&path, &state).unwrap();
        assert_eq!(load_sim_state(&path).unwrap(), state);

        // Kind mismatch: a sim checkpoint is not an adaptive one.
        let err = load_adaptive_state(&path).unwrap_err();
        assert!(matches!(err, CoreError::InvalidInput(_)), "{err}");

        // Missing file surfaces as an io error.
        let err = load_sim_state(&dir.join("nope.json")).unwrap_err();
        assert!(matches!(err, CoreError::Io { .. }), "{err}");

        // Version gate.
        std::fs::write(dir.join("bad.json"), "{\"version\":\"9\",\"kind\":\"sim\"}").unwrap();
        let err = load_sim_state(&dir.join("bad.json")).unwrap_err();
        assert!(format!("{err}").contains("version"), "{err}");
    }
}
