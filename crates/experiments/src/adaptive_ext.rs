//! E8 (extension, §VII future work) — **adaptive re-contracting vs a
//! static one-shot design** against sophisticated worker populations:
//! deceptive workers that attack after a reputation-farming phase, and
//! drifting workers whose productivity decays.
//!
//! Not a paper artifact: the paper designs contracts once per (round,
//! worker) under stationary behaviour and names richer malicious
//! behaviour as future work; this experiment quantifies what the
//! adaptive loop buys.

use crate::render::fmt_f;
use crate::TextTable;
use dcc_core::{
    AdaptiveAgent, AdaptiveConfig, AdaptiveSimulation, ConductModel, CoreError, ModelParams,
};
use dcc_numerics::Quadratic;

/// One scenario row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRow {
    /// Scenario label.
    pub scenario: String,
    /// Mean per-round requester utility with re-contracting every 5
    /// rounds.
    pub adaptive: f64,
    /// Mean per-round requester utility of the static (design-once)
    /// requester.
    pub static_: f64,
    /// Post-adaptation (last-quarter) mean utilities.
    pub adaptive_late: f64,
    /// Static counterpart of `adaptive_late`.
    pub static_late: f64,
}

/// The full extension-experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// One row per scenario.
    pub rows: Vec<AdaptiveRow>,
}

impl AdaptiveResult {
    /// Renders the comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "scenario".into(),
            "adaptive".into(),
            "static".into(),
            "adaptive (late)".into(),
            "static (late)".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scenario.clone(),
                fmt_f(r.adaptive),
                fmt_f(r.static_),
                fmt_f(r.adaptive_late),
                fmt_f(r.static_late),
            ]);
        }
        t
    }
}

fn population(scenario: &str) -> Result<Vec<AdaptiveAgent>, CoreError> {
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    // Weights vary across agents so induced efforts spread out — which
    // both matches reality (Eq. 5 weights differ per worker) and gives
    // the refitting window identifiable effort variation.
    let honest = |id: usize| AdaptiveAgent {
        id,
        group: 0,
        base_omega: 0.0,
        base_weight: 1.0 + 0.1 * (id % 10) as f64,
        true_psi: psi,
        conduct: ConductModel::Stationary,
    };
    Ok(match scenario {
        "stationary" => (0..40).map(honest).collect(),
        "deceptive" => {
            let mut agents: Vec<AdaptiveAgent> = (0..20).map(honest).collect();
            agents.extend((20..40).map(|id| AdaptiveAgent {
                conduct: ConductModel::Deceptive {
                    honest_rounds: 15,
                    attack_omega: 0.5,
                    attack_weight: -0.5,
                },
                ..honest(id)
            }));
            agents
        }
        "drifting" => (0..40)
            .map(|id| AdaptiveAgent {
                conduct: ConductModel::Drifting {
                    decay_per_round: 0.985,
                },
                ..honest(id)
            })
            .collect(),
        other => return Err(CoreError::InvalidInput(format!("unknown scenario {other}"))),
    })
}

/// Runs the three scenarios.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run(seed: u64) -> Result<AdaptiveResult, CoreError> {
    let params = ModelParams {
        mu: 1.0,
        ..ModelParams::default()
    };
    let base = AdaptiveConfig {
        rounds: 60,
        window: 10,
        feedback_noise_sd: 0.3,
        audit_noise_sd: 0.15,
        intervals: 20,
        margin: 0.1,
        seed,
        recontract_every: 5,
    };
    let mut rows = Vec::new();
    for scenario in ["stationary", "deceptive", "drifting"] {
        let agents = population(scenario)?;
        let adaptive = AdaptiveSimulation::new(params, base).run(&agents)?;
        let static_cfg = AdaptiveConfig {
            recontract_every: 0,
            ..base
        };
        let static_run = AdaptiveSimulation::new(params, static_cfg).run(&agents)?;
        rows.push(AdaptiveRow {
            scenario: scenario.into(),
            adaptive: adaptive.mean_round_utility,
            static_: static_run.mean_round_utility,
            adaptive_late: adaptive.late_mean_utility,
            static_late: static_run.late_mean_utility,
        });
    }
    Ok(AdaptiveResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_wins_where_behaviour_changes() {
        let result = run(21).unwrap();
        assert_eq!(result.rows.len(), 3);
        let by_name = |n: &str| result.rows.iter().find(|r| r.scenario == n).unwrap();
        // Stationary: near-equal.
        let s = by_name("stationary");
        let rel = (s.adaptive - s.static_).abs() / s.static_.abs().max(1.0);
        assert!(rel < 0.1, "stationary should be a wash: {s:?}");
        // Deceptive: adaptive must dominate after the attack starts.
        let d = by_name("deceptive");
        assert!(
            d.adaptive_late > d.static_late,
            "deceptive scenario: {d:?}"
        );
        // Drifting: adaptive wins overall and stays within audit-noise
        // jitter of static late in the run (once productivity has decayed
        // far, both requesters earn little).
        let dr = by_name("drifting");
        assert!(dr.adaptive >= dr.static_, "drifting: {dr:?}");
        assert!(dr.adaptive_late >= 0.95 * dr.static_late, "drifting late: {dr:?}");
    }

    #[test]
    fn table_renders_three_scenarios() {
        let result = run(5).unwrap();
        assert_eq!(result.table().len(), 3);
    }
}
