//! E6 — **Fig. 8(b)**: average, 5th- and 95th-percentile compensation
//! paid to each worker class, for `μ ∈ {1.0, 0.9, 0.8}`.
//!
//! The paper's two observations: compensation rises as μ falls (a more
//! generous requester), and the class ordering is
//! honest > non-collusive malicious > collusive malicious (the Eq. 5
//! penalties devalue malicious feedback).

use crate::render::fmt_f;
use crate::{batch_error, batch_runner, ExperimentScale, TextTable};
use dcc_batch::ScenarioGrid;
use dcc_core::CoreError;
use dcc_numerics::Summary;
use dcc_trace::{TraceDataset, WorkerClass};

/// One bar group: a class's compensation distribution at one μ.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassComp {
    /// Worker class.
    pub class: WorkerClass,
    /// μ used for the design.
    pub mu: f64,
    /// Compensation distribution summary (mean, p5, p95, …).
    pub summary: Summary,
}

/// The full Fig. 8(b) result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8bResult {
    /// One entry per (μ, class) pair, μ-major order.
    pub groups: Vec<ClassComp>,
}

impl Fig8bResult {
    /// Renders the bar groups as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "mu".into(),
            "class".into(),
            "mean".into(),
            "p5".into(),
            "p95".into(),
        ]);
        for g in &self.groups {
            t.row(vec![
                format!("{:.1}", g.mu),
                g.class.to_string(),
                fmt_f(g.summary.mean),
                fmt_f(g.summary.p5),
                fmt_f(g.summary.p95),
            ]);
        }
        t
    }

    /// The mean compensation of `(mu, class)`.
    pub fn mean_of(&self, mu: f64, class: WorkerClass) -> Option<f64> {
        self.groups
            .iter()
            .find(|g| (g.mu - mu).abs() < 1e-9 && g.class == class)
            .map(|g| g.summary.mean)
    }
}

/// Runs E6 on an existing trace.
///
/// # Errors
///
/// Propagates design failures and empty-class summaries.
pub fn run_on(trace: &TraceDataset, mus: &[f64]) -> Result<Fig8bResult, CoreError> {
    // The μ-sweep is a batch grid: detection and the ψ-fits run once
    // and are shared across every μ through the stage memo.
    let grid = ScenarioGrid::for_trace(trace.clone(), mus);
    let report = batch_runner().run(&grid).map_err(batch_error)?;
    let mut groups = Vec::with_capacity(mus.len() * 3);
    for record in &report.records {
        let outcome = record.require_outcome()?;
        for class in WorkerClass::ALL {
            let comps = outcome.design.compensations_of(&trace.workers_of_class(class));
            let summary = Summary::of(&comps).map_err(dcc_core::CoreError::from)?;
            groups.push(ClassComp { class, mu: record.scenario.mu, summary });
        }
    }
    Ok(Fig8bResult { groups })
}

/// Runs E6 at the given scale and seed with the paper's μ values.
///
/// # Errors
///
/// Propagates design failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig8bResult, CoreError> {
    run_on(&scale.generate(seed), &DEFAULT_MUS)
}

/// The figure's μ values.
pub const DEFAULT_MUS: [f64; 3] = [1.0, 0.9, 0.8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_and_mu_effect() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.groups.len(), 9);
        for &mu in &DEFAULT_MUS {
            let honest = result.mean_of(mu, WorkerClass::Honest).unwrap();
            let ncm = result
                .mean_of(mu, WorkerClass::NonCollusiveMalicious)
                .unwrap();
            let cm = result.mean_of(mu, WorkerClass::CollusiveMalicious).unwrap();
            assert!(honest > ncm, "mu={mu}: honest {honest} <= ncm {ncm}");
            assert!(ncm >= cm, "mu={mu}: ncm {ncm} < cm {cm}");
        }
        // Generosity effect: mu = 0.8 pays honest workers at least as much
        // as mu = 1.0.
        let tight = result.mean_of(1.0, WorkerClass::Honest).unwrap();
        let generous = result.mean_of(0.8, WorkerClass::Honest).unwrap();
        assert!(generous >= tight - 1e-9, "generous {generous} < tight {tight}");
    }

    #[test]
    fn percentile_order_and_nonnegativity() {
        // Note p5 <= mean need not hold: a small mass of zero-contract
        // workers under a large mass of identical payments puts the mean
        // below the 5th percentile.
        let result = run(ExperimentScale::Small, 13).unwrap();
        for g in &result.groups {
            assert!(g.summary.p5 <= g.summary.median + 1e-9);
            assert!(g.summary.median <= g.summary.p95 + 1e-9);
            assert!(g.summary.min >= 0.0, "payments are nonnegative");
        }
    }
}
