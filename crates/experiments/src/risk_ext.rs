//! E14 (extension) — **risk-attitude premium**: the paper's workers are
//! risk-neutral in money; this experiment measures how much induced
//! effort a contract loses as workers' money-utility turns concave
//! (`u(c) = c^ρ`), and how much steeper a contract must be to restore it.

use crate::render::fmt_f;
use crate::TextTable;
use dcc_core::{
    best_response_risk_averse, Contract, ContractBuilder, CoreError, Discretization,
    ModelParams, RiskProfile,
};
use dcc_numerics::Quadratic;

/// One risk-exponent row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskRow {
    /// Money-utility exponent ρ.
    pub exponent: f64,
    /// Induced effort under the baseline (risk-neutral-designed)
    /// contract.
    pub effort: f64,
    /// Effort retained relative to the risk-neutral worker.
    pub effort_fraction: f64,
    /// The payment multiplier needed to restore ≥95% of the risk-neutral
    /// effort (scanned over scale factors).
    pub restoring_multiplier: f64,
}

/// The E14 result.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskResult {
    /// One row per exponent.
    pub rows: Vec<RiskRow>,
    /// The risk-neutral induced effort (the 100% reference).
    pub neutral_effort: f64,
}

impl RiskResult {
    /// Renders the premium table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "rho".into(),
            "effort".into(),
            "retained %".into(),
            "pay multiplier to restore".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.2}", r.exponent),
                fmt_f(r.effort),
                format!("{:.1}", 100.0 * r.effort_fraction),
                format!("{:.2}", r.restoring_multiplier),
            ]);
        }
        t
    }
}

/// Runs E14 on the standard single-worker configuration.
///
/// # Errors
///
/// Propagates design/response failures.
pub fn run(exponents: &[f64]) -> Result<RiskResult, CoreError> {
    let params = ModelParams {
        mu: 1.0,
        omega: 0.0,
        ..ModelParams::default()
    };
    let psi = Quadratic::new(-0.15, 2.5, 1.0);
    let disc = Discretization::covering(20, 7.0)?;
    let built = ContractBuilder::new(params, disc, psi)
        .honest()
        .weight(1.5)
        .build()?;
    let contract = built.contract().clone();
    let neutral_effort =
        best_response_risk_averse(&params, &psi, &contract, &RiskProfile::neutral())?.effort;

    let scaled = |factor: f64| -> Result<Contract, CoreError> {
        Contract::new(
            contract.feedback_knots().to_vec(),
            contract.payments().iter().map(|x| factor * x).collect(),
        )
    };

    let mut rows = Vec::with_capacity(exponents.len());
    for &exponent in exponents {
        let risk = RiskProfile::new(exponent)?;
        let effort = best_response_risk_averse(&params, &psi, &contract, &risk)?.effort;

        // Scan multipliers (geometrically — concave money-utility makes
        // the needed premium grow like pay^(1/ρ)) for the one restoring
        // >= 95% of neutral effort.
        let mut restoring = f64::NAN;
        let mut factor = 1.0;
        while factor <= 4096.0 {
            let boosted =
                best_response_risk_averse(&params, &psi, &scaled(factor)?, &risk)?.effort;
            if boosted >= 0.95 * neutral_effort {
                restoring = factor;
                break;
            }
            factor *= 1.15;
        }
        rows.push(RiskRow {
            exponent,
            effort,
            effort_fraction: if neutral_effort > 0.0 {
                effort / neutral_effort
            } else {
                0.0
            },
            restoring_multiplier: restoring,
        });
    }
    Ok(RiskResult {
        rows,
        neutral_effort,
    })
}

/// Default exponents.
pub const DEFAULT_EXPONENTS: [f64; 5] = [1.0, 0.9, 0.75, 0.6, 0.45];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premium_grows_as_risk_aversion_deepens() {
        let result = run(&DEFAULT_EXPONENTS).unwrap();
        assert_eq!(result.rows.len(), 5);
        assert!(result.neutral_effort > 1.0);
        // Effort falls monotonically with rho; the restoring multiplier
        // rises.
        for w in result.rows.windows(2) {
            assert!(w[1].effort <= w[0].effort + 1e-6);
            if w[0].restoring_multiplier.is_finite() && w[1].restoring_multiplier.is_finite() {
                assert!(w[1].restoring_multiplier >= w[0].restoring_multiplier - 1e-9);
            }
        }
        // The neutral row is the no-premium reference.
        assert!((result.rows[0].effort_fraction - 1.0).abs() < 1e-6);
        assert!((result.rows[0].restoring_multiplier - 1.0).abs() < 1e-9);
        // Deep aversion needs a real premium.
        let deep = result.rows.last().unwrap();
        assert!(
            deep.restoring_multiplier > 1.5,
            "rho=0.45 should need a >1.5x premium, got {}",
            deep.restoring_multiplier
        );
    }

    #[test]
    fn table_renders() {
        let result = run(&[1.0, 0.5]).unwrap();
        assert!(result.table().to_string().contains("pay multiplier"));
    }
}
