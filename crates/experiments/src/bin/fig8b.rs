//! Regenerates Fig. 8(b): compensation by class and mu.

use dcc_experiments::{fig8b, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match fig8b::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: fig8b runner: {e}");
            std::process::exit(1);
        }
    };
    println!("Fig. 8(b) — compensation distribution by class and mu ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: honest > non-collusive malicious > collusive; pay rises as mu falls.");
}
