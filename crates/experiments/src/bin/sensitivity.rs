//! Extension experiment (E9): Eq. 5 penalty-coefficient sensitivity.

use dcc_experiments::{scale_from_args, sensitivity, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match sensitivity::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: sensitivity runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E9 (extension) — kappa/gamma penalty sensitivity ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: honest > malicious pay at every cell; harsher penalties cut malicious pay.");
}
