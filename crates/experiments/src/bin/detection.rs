//! Extension experiment (E10): heuristic detector quality vs ground truth.

use dcc_experiments::{detection_quality, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = detection_quality::run(scale, DEFAULT_SEED);
    println!("E10 (extension) — malicious-probability estimator quality ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nbest F1 across thresholds: {:.3}", result.best_f1());
}
