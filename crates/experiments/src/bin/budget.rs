//! Extension experiment (E13): budget-feasible contracting.

use dcc_experiments::{budget_ext, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match budget_ext::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: budget runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E13 (extension) — requester utility under a hard payment budget ({scale:?} scale)");
    println!(
        "unconstrained: spend {:.2}, utility {:.2}\n",
        result.full_spend, result.full_utility
    );
    print!("{}", result.table());
    println!("\nshape check: utility is concave in the budget (best-ratio workers funded first).");
}
