//! Regenerates Fig. 8(a): compensation vs Lemma 4.3 lower bound.

use dcc_experiments::{fig8a, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match fig8a::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: fig8a runner: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Fig. 8(a) — compensation of prolific honest workers vs Lemma 4.3 bound ({scale:?} scale)\n"
    );
    print!("{}", result.table());
    println!("\nshape check: the mean gap to the lower bound shrinks as m grows.");
}
