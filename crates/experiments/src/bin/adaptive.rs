//! Extension experiment (E8): adaptive re-contracting vs static design
//! against deceptive and drifting worker populations.

use dcc_experiments::DEFAULT_SEED;

fn main() {
    let result = match dcc_experiments::adaptive_ext::run(DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: adaptive runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E8 (extension) — adaptive re-contracting vs static one-shot design\n");
    print!("{}", result.table());
    println!(
        "\nshape check: adaptive ≈ static when behaviour is stationary; adaptive wins\n\
         (especially late in the run) against deceptive and drifting workers."
    );
}
