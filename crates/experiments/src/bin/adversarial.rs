//! Extension experiment (E15): the adversarial collusion head-to-head.

use dcc_experiments::{adversarial, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match adversarial::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: adversarial runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E15 (extension) — BiP dynamic contract vs collusion-proof baseline under adversarial churn ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: both columns finite on every plan; the collusion-proof column prices bias, not upvotes.");
}
