//! Regenerates Table II: collusive community size distribution.

use dcc_experiments::{scale_from_args, table2, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = table2::run(scale, DEFAULT_SEED);
    println!(
        "Table II — collusive community sizes ({scale:?} scale): {} communities, {} workers\n",
        result.communities, result.collusive_workers
    );
    print!("{}", result.table());
    println!("\nshape check: the size-2 bucket dominates, matching the paper's 51.2%.");
}
