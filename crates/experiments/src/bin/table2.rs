//! Regenerates Table II: collusive community size distribution.

use dcc_experiments::{scale_from_args, table2, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match table2::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: table2 runner: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Table II — collusive community sizes ({scale:?} scale): {} communities, {} workers\n",
        result.communities, result.collusive_workers
    );
    print!("{}", result.table());
    println!("\nshape check: the size-2 bucket dominates, matching the paper's 51.2%.");
}
