//! Extension experiment (E12): the baseline ladder.

use dcc_experiments::{baselines_ext, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match baselines_ext::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: baselines runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E12 (extension) — dynamic contract vs the pricing-baseline ladder ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: dynamic > learned linear > fixed; exclusion forfeits malicious value.");
}
