//! Extension experiment (E12): the baseline ladder.

use dcc_experiments::{baselines_ext, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = baselines_ext::run(scale, DEFAULT_SEED).expect("baselines runner");
    println!("E12 (extension) — dynamic contract vs the pricing-baseline ladder ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: dynamic > learned linear > fixed; exclusion forfeits malicious value.");
}
