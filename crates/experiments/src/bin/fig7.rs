//! Regenerates Fig. 7: class-level effort and feedback comparison.

use dcc_experiments::{fig7, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = fig7::run(scale, DEFAULT_SEED);
    println!("Fig. 7 — average effort and feedback by worker class ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: collusive feedback far exceeds the other classes; efforts similar.");
}
