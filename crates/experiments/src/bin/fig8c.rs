//! Regenerates Fig. 8(c): requester utility, ours vs baselines.

use dcc_experiments::{fig8c, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match fig8c::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: fig8c runner: {e}");
            std::process::exit(1);
        }
    };
    println!("Fig. 8(c) — requester utility: dynamic contract vs baselines ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: the dynamic contract dominates exclusion at every mu.");
}
