//! Regenerates Table III: norm of residuals of polynomial fits.

use dcc_experiments::{scale_from_args, table3, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match table3::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: table3 runner: {e}");
            std::process::exit(1);
        }
    };
    println!("Table III — norm of residuals by fit order ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: NoR is flat from the quadratic onward (quadratic suffices).");
}
