//! Regenerates every table and figure in sequence.
//!
//! Flags: `--scale small|paper`, `--extensions` (also run E8–E15),
//! `--csv DIR` (additionally write each artifact as CSV into DIR, plus
//! the suite's engine metrics as `metrics.json` next to them).

use dcc_experiments::{scale_from_args, TextTable, DEFAULT_SEED};
use dcc_obs::{JsonRecorder, Metrics};
use std::path::PathBuf;
use std::sync::Arc;

fn csv_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--csv")
        .map(|w| PathBuf::from(&w[1]))
}

fn emit(dir: &Option<PathBuf>, name: &str, table: &TextTable) {
    println!("{table}");
    if let Some(dir) = dir {
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, table.to_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    }
}

fn main() {
    let scale = scale_from_args();
    let csv = csv_dir();
    // With a CSV directory the suite also records its engine runs and
    // drops the dcc-obs document next to the figures.
    let recorder = csv.as_ref().map(|_| {
        let recorder = Arc::new(JsonRecorder::new());
        dcc_experiments::install_metrics(Metrics::new(recorder.clone()));
        recorder
    });
    if let Err(e) = run_suite(scale, &csv) {
        eprintln!("error: experiment suite: {e}");
        std::process::exit(1);
    }
    if let (Some(recorder), Some(dir)) = (recorder, &csv) {
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("metrics.json");
            match std::fs::write(&path, recorder.to_json()) {
                Ok(()) => println!("wrote engine metrics to {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }
}

fn run_suite(
    scale: dcc_experiments::ExperimentScale,
    csv: &Option<PathBuf>,
) -> Result<(), Box<dyn std::error::Error>> {
    let trace = scale.generate(DEFAULT_SEED);
    println!("=== dyncontract experiment suite ({scale:?} scale, seed {DEFAULT_SEED}) ===\n");
    println!(
        "trace: {} reviews, {} reviewers, {} products\n",
        trace.reviews().len(),
        trace.reviewers().len(),
        trace.products().len()
    );

    println!("--- E1 / Fig. 6 ---");
    let fig6 = dcc_experiments::fig6::run(&dcc_experiments::fig6::DEFAULT_MS)?;
    emit(csv, "fig6", &fig6.table());

    println!("--- E2 / Table II ---");
    let t2 = dcc_experiments::table2::run_on(&trace)?;
    emit(csv, "table2", &t2.table());

    println!("--- E3 / Fig. 7 ---");
    emit(csv, "fig7", &dcc_experiments::fig7::run_on(&trace).table());

    println!("--- E4 / Table III ---");
    let t3 = dcc_experiments::table3::run_on(&trace)?;
    emit(csv, "table3", &t3.table());

    println!("--- E5 / Fig. 8(a) ---");
    let f8a = dcc_experiments::fig8a::run_on(&trace, &dcc_experiments::fig8a::DEFAULT_MS)
        ?;
    emit(csv, "fig8a", &f8a.table());

    println!("--- E6 / Fig. 8(b) ---");
    let f8b = dcc_experiments::fig8b::run_on(&trace, &dcc_experiments::fig8b::DEFAULT_MUS)
        ?;
    emit(csv, "fig8b", &f8b.table());

    println!("--- E7 / Fig. 8(c) ---");
    let f8c = dcc_experiments::fig8c::run_on(&trace, &dcc_experiments::fig8b::DEFAULT_MUS)
        ?;
    emit(csv, "fig8c", &f8c.table());

    if !std::env::args().any(|a| a == "--extensions") {
        println!("(pass --extensions to also run E8-E15)");
        return Ok(());
    }

    println!("--- E8 / adaptive re-contracting (extension) ---");
    let e8 = dcc_experiments::adaptive_ext::run(dcc_experiments::DEFAULT_SEED)?;
    emit(csv, "e8_adaptive", &e8.table());

    println!("--- E9 / penalty sensitivity (extension) ---");
    let e9 = dcc_experiments::sensitivity::run_on(
        &trace,
        &dcc_experiments::sensitivity::DEFAULT_KAPPAS,
        &dcc_experiments::sensitivity::DEFAULT_GAMMAS,
    )
    ?;
    emit(csv, "e9_sensitivity", &e9.table());

    println!("--- E10 / detector quality (extension) ---");
    let e10 = dcc_experiments::detection_quality::run_on(
        &trace,
        &dcc_experiments::detection_quality::DEFAULT_THRESHOLDS,
    );
    emit(csv, "e10_detection", &e10.table());

    println!("--- E11 / collusion-modeling ablation (extension) ---");
    let e11 =
        dcc_experiments::collusion_ablation::run_on(&trace, &dcc_experiments::fig8b::DEFAULT_MUS)
            ?;
    emit(csv, "e11_collusion", &e11.table());

    println!("--- E12 / baseline ladder (extension) ---");
    let e12 = dcc_experiments::baselines_ext::run_on(&trace, &dcc_experiments::fig8b::DEFAULT_MUS)
        ?;
    emit(csv, "e12_baselines", &e12.table());

    println!("--- E13 / budget-feasible contracting (extension) ---");
    let e13 = dcc_experiments::budget_ext::run_on(
        &trace,
        &dcc_experiments::budget_ext::DEFAULT_FRACTIONS,
    )
    ?;
    emit(csv, "e13_budget", &e13.table());

    println!("--- E14 / risk-attitude premium (extension) ---");
    let e14 =
        dcc_experiments::risk_ext::run(&dcc_experiments::risk_ext::DEFAULT_EXPONENTS)?;
    emit(csv, "e14_risk", &e14.table());

    println!("--- E15 / adversarial collusion head-to-head (extension) ---");
    let e15 = dcc_experiments::adversarial::run(scale, DEFAULT_SEED)?;
    emit(csv, "e15_adversarial", &e15.table());
    Ok(())
}
