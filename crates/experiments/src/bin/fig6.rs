//! Regenerates Fig. 6: requester utility vs Theorem 4.1 bounds over m.

fn main() {
    let result = match dcc_experiments::fig6::run(&dcc_experiments::fig6::DEFAULT_MS) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: fig6 runner: {e}");
            std::process::exit(1);
        }
    };
    println!("Fig. 6 — requester utility vs Theorem 4.1 bounds (single honest worker)");
    println!(
        "psi = {}, mu = {}, beta = {}\n",
        result.psi, result.params.mu, result.params.beta
    );
    print!("{}", result.table());
    println!("\nshape check: achieved utility approaches the upper bound as m grows.");
}
