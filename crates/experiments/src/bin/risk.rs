//! Extension experiment (E14): risk-attitude premium.

use dcc_experiments::risk_ext;

fn main() {
    let result = match risk_ext::run(&risk_ext::DEFAULT_EXPONENTS) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: risk runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E14 (extension) — effort lost to risk aversion and the pay premium to restore it");
    println!("risk-neutral induced effort: {:.3}\n", result.neutral_effort);
    print!("{}", result.table());
    println!("\nshape check: retained effort falls with rho; the restoring premium rises.");
}
