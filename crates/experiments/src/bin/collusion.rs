//! Extension experiment (E11): the value of collusion modeling.

use dcc_experiments::{collusion_ablation, scale_from_args, DEFAULT_SEED};

fn main() {
    let scale = scale_from_args();
    let result = match collusion_ablation::run(scale, DEFAULT_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: collusion runner: {e}");
            std::process::exit(1);
        }
    };
    println!("E11 (extension) — collusion-aware vs collusion-blind contract design ({scale:?} scale)\n");
    print!("{}", result.table());
    println!("\nshape check: awareness never hurts; blindness overpays collusive workers.");
}
