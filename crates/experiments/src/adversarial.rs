//! E15 (extension) — **adversarial collusion head-to-head**: the paper's
//! BiP dynamic contract against the misreport/collusion-proof baseline
//! (see `dcc_core::proofness`) on traces attacked by dynamic
//! adversaries — sybil influxes, communities splitting and merging
//! mid-trace, and strategically under-reporting campaigns.
//!
//! Three standard `AdversaryPlan`s are derived deterministically from
//! the base trace's shape:
//!
//! - `sybil-influx` — three campaigns absorb sybil waves at staggered
//!   rounds,
//! - `split-merge` — two campaigns fracture and a disjoint pair fuses,
//!   exercising detection under community churn,
//! - `stealth` — two campaigns damp their feedback inflation to evade
//!   the detector while a small sybil wave lands late.
//!
//! Every (plan × strategy) cell runs through the supervised batch
//! runner, so the head-to-head shares detection/fit/solve memoization
//! exactly like the other sweeps, and the applied plans are reported on
//! the `adversary.*` counters (see `docs/observability.md`).

use crate::render::fmt_f;
use crate::{batch_error, batch_runner, current_metrics, ExperimentScale, TextTable};
use dcc_batch::{ScenarioGrid, ScenarioRecord};
use dcc_core::{CollusionProofParams, CoreError, SimulationConfig, StrategyKind};
use dcc_obs::names;
use dcc_trace::{
    AdversarialConfig, AdversaryPlan, CommunityMerge, CommunitySplit, SybilInflux, SyntheticConfig,
    UnderReport,
};

/// One (plan, strategy-pair) row of the head-to-head.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialRow {
    /// Standard plan label.
    pub plan: String,
    /// Scheduled adversarial events in the plan.
    pub events: usize,
    /// Mean per-round requester utility under the BiP dynamic contract.
    pub dynamic: f64,
    /// … under the collusion-proof baseline.
    pub collusion_proof: f64,
}

/// The full E15 result.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialResult {
    /// One row per standard adversary plan.
    pub rows: Vec<AdversarialRow>,
}

impl AdversarialResult {
    /// Renders the comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "adversary plan".into(),
            "events".into(),
            "dynamic (BiP)".into(),
            "collusion-proof".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.plan.clone(),
                r.events.to_string(),
                fmt_f(r.dynamic),
                fmt_f(r.collusion_proof),
            ]);
        }
        t
    }
}

/// The three standard adversary plans, deterministic in the base
/// trace's shape (`n_campaigns`, `n_rounds`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] when the base trace has fewer
/// than 4 campaigns or 6 rounds (the standard schedules need room).
pub fn standard_plans(
    n_campaigns: usize,
    n_rounds: usize,
) -> Result<Vec<(&'static str, AdversaryPlan)>, CoreError> {
    if n_campaigns < 4 || n_rounds < 6 {
        return Err(CoreError::InvalidInput(format!(
            "standard adversary plans need >= 4 campaigns and >= 6 rounds, \
             got {n_campaigns} campaigns / {n_rounds} rounds"
        )));
    }
    let sybil_influx = AdversaryPlan {
        seed: 101,
        sybils: vec![
            SybilInflux { campaign: 0, round: 2, count: 3 },
            SybilInflux { campaign: 1, round: 3, count: 2 },
            SybilInflux { campaign: 2, round: 4, count: 4 },
        ],
        ..AdversaryPlan::default()
    };
    let split_merge = AdversaryPlan {
        seed: 102,
        splits: vec![
            CommunitySplit { campaign: 0, round: 2 },
            CommunitySplit { campaign: 1, round: 4 },
        ],
        merges: vec![CommunityMerge { first: 2, second: 3, round: 3 }],
        ..AdversaryPlan::default()
    };
    let stealth = AdversaryPlan {
        seed: 103,
        sybils: vec![SybilInflux { campaign: 2, round: 5, count: 2 }],
        underreports: vec![
            UnderReport { campaign: 0, from_round: 2, factor: 0.35 },
            UnderReport { campaign: 1, from_round: 1, factor: 0.6 },
        ],
        ..AdversaryPlan::default()
    };
    Ok(vec![
        ("sybil-influx", sybil_influx),
        ("split-merge", split_merge),
        ("stealth", stealth),
    ])
}

/// Runs E15 on a base generator configuration.
///
/// # Errors
///
/// Propagates adversarial generation, design and simulation failures.
pub fn run_on(base: &SyntheticConfig) -> Result<AdversarialResult, CoreError> {
    let base_trace = base.generate();
    let plans = standard_plans(base_trace.campaigns().len(), base.n_rounds)?;
    let metrics = current_metrics();
    let runner = batch_runner();
    let mu = dcc_core::DesignConfig::default().params.mu;

    let mut rows = Vec::with_capacity(plans.len());
    for (label, plan) in plans {
        let trace = AdversarialConfig {
            base: base.clone(),
            plan: plan.clone(),
        }
        .generate()
        .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
        if metrics.enabled() {
            metrics.add(names::COUNTER_ADVERSARY_PLANS, 1);
            metrics.add(
                names::COUNTER_ADVERSARY_SYBILS,
                plan.sybils.iter().map(|s| s.count).sum::<usize>() as u64,
            );
            metrics.add(names::COUNTER_ADVERSARY_SPLITS, plan.splits.len() as u64);
            metrics.add(names::COUNTER_ADVERSARY_MERGES, plan.merges.len() as u64);
            metrics.add(
                names::COUNTER_ADVERSARY_UNDERREPORTS,
                plan.underreports.len() as u64,
            );
        }

        let mut grid = ScenarioGrid::for_trace(trace, &[mu]);
        grid.strategies = vec![
            StrategyKind::DynamicContract,
            StrategyKind::CollusionProof {
                params: CollusionProofParams::default(),
            },
        ];
        grid.sim = Some(SimulationConfig::default());
        let report = runner.run(&grid).map_err(batch_error)?;
        let [dynamic_rec, cp_rec] = report.records.as_slice() else {
            return Err(CoreError::InvalidInput(
                "adversarial head-to-head lost a scenario".into(),
            ));
        };
        rows.push(AdversarialRow {
            plan: label.to_string(),
            events: plan.len(),
            dynamic: sim_mean_utility(dynamic_rec)?,
            collusion_proof: sim_mean_utility(cp_rec)?,
        });
    }
    Ok(AdversarialResult { rows })
}

/// The mean per-round requester utility of one simulated scenario.
fn sim_mean_utility(record: &ScenarioRecord) -> Result<f64, CoreError> {
    record
        .require_outcome()?
        .sim
        .as_ref()
        .map(|sim| sim.mean_round_utility)
        .ok_or_else(|| CoreError::InvalidInput("adversarial scenario ran design-only".into()))
}

/// Runs E15 at the given scale and seed.
///
/// # Errors
///
/// Propagates adversarial generation, design and simulation failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<AdversarialResult, CoreError> {
    run_on(&scale.trace_config(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_to_head_runs_on_all_standard_plans() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert!(r.events > 0);
            assert!(r.dynamic.is_finite());
            assert!(r.collusion_proof.is_finite());
        }
        let s = result.table().to_string();
        assert!(s.contains("collusion-proof"));
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(ExperimentScale::Small, 7).unwrap();
        let b = run(ExperimentScale::Small, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_bases_are_rejected() {
        assert!(standard_plans(2, 8).is_err());
        assert!(standard_plans(8, 3).is_err());
    }
}
