//! E11 (extension) — **the value of collusion modeling**: the paper's
//! contribution 1 claims that accounting for worker *interactions*
//! (collusive communities as meta-workers with partner-penalized
//! weights, §III/Eq. 5) matters. This ablation designs contracts twice —
//! collusion-aware vs collusion-blind (every suspect treated as an
//! independent malicious worker, γ-penalty never applied) — and
//! evaluates both under the *same* reference weights.

use crate::render::fmt_f;
use crate::{core_error, engine_context, ExperimentScale, TextTable};
use dcc_core::{
    BaselineStrategy, CoreError, ModelParams, Simulation, SimulationConfig, StrategyKind,
};
use dcc_detect::{
    run_pipeline, CollusionReport, DetectionResult, FeedbackWeights, WeightParams,
};
use dcc_engine::{Engine, EngineError, RoundContext, Stage, StageKind};
use dcc_trace::{ReviewerId, TraceDataset};
use std::collections::BTreeSet;

/// One μ row of the ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollusionAblationRow {
    /// μ used for both designs.
    pub mu: f64,
    /// Mean per-round utility of the collusion-aware design, under the
    /// reference weights.
    pub aware: f64,
    /// Mean per-round utility of the collusion-blind design, under the
    /// same reference weights.
    pub blind: f64,
    /// Total pay to collusive workers under each design (aware, blind).
    pub cm_pay_aware: f64,
    /// See [`CollusionAblationRow::cm_pay_aware`].
    pub cm_pay_blind: f64,
}

/// The ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionAblationResult {
    /// One row per μ.
    pub rows: Vec<CollusionAblationRow>,
}

impl CollusionAblationResult {
    /// Renders the comparison.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "mu".into(),
            "collusion-aware".into(),
            "collusion-blind".into(),
            "cm pay (aware)".into(),
            "cm pay (blind)".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.1}", r.mu),
                fmt_f(r.aware),
                fmt_f(r.blind),
                fmt_f(r.cm_pay_aware),
                fmt_f(r.cm_pay_blind),
            ]);
        }
        t
    }
}

/// A collusion-blind variant of a detection result: same estimates and
/// consensus, but every suspect is a singleton (no communities, so no
/// γ-penalty and no meta-worker aggregation).
/// The collusion-blind detector as a swappable engine [`Stage`]: it
/// fills the [`StageKind::Detect`] slot, runs the regular pipeline, and
/// then dissolves every community — so
/// `Engine::new().with_stage(Box::new(BlindDetectStage))` is the whole
/// ablation counterfactual while every other stage (fitting, solving,
/// construction, simulation) stays the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlindDetectStage;

impl Stage for BlindDetectStage {
    fn kind(&self) -> StageKind {
        StageKind::Detect
    }

    fn name(&self) -> &'static str {
        "blind-detect"
    }

    fn run(&self, ctx: &mut RoundContext) -> Result<(), EngineError> {
        let aware = run_pipeline(ctx.trace()?, ctx.config().pipeline);
        let blind = blind_detection(ctx.trace()?, &aware);
        ctx.set_detection(blind);
        Ok(())
    }
}

fn blind_detection(trace: &TraceDataset, aware: &DetectionResult) -> DetectionResult {
    let blind_collusion = CollusionReport {
        communities: Vec::new(),
        singletons: aware.suspected.clone(),
    };
    let weights = FeedbackWeights::compute(
        trace,
        &aware.consensus,
        &aware.estimates,
        &blind_collusion,
        WeightParams::default(),
    );
    DetectionResult {
        consensus: aware.consensus.clone(),
        estimates: aware.estimates.clone(),
        suspected: aware.suspected.clone(),
        collusion: blind_collusion,
        weights,
    }
}

/// Evaluates a design under the reference (collusion-aware) weights: the
/// simulation agents keep their contracts but their *benefit* weights are
/// replaced by the reference per-worker weights, so both designs are
/// judged against the same estimate of what the feedback is truly worth.
fn evaluate(
    design: &dcc_core::ContractDesign,
    reference: &DetectionResult,
    params: &ModelParams,
    suspected: &BTreeSet<ReviewerId>,
    trace: &TraceDataset,
) -> Result<(f64, f64), CoreError> {
    let mut agents = BaselineStrategy::new(StrategyKind::DynamicContract).assemble(
        design,
        params.omega,
        suspected,
        trace,
    )?;
    // Override each agent's weight with the mean reference weight of its
    // members (solutions and agents share ordering).
    for (agent, sol) in agents.iter_mut().zip(&design.solution.solutions) {
        let weights: Vec<f64> = sol
            .members
            .iter()
            .filter_map(|&m| reference.weights.weight(ReviewerId(m)))
            .collect();
        if !weights.is_empty() {
            agent.weight = weights.iter().sum::<f64>() / weights.len() as f64;
        }
    }
    let outcome = Simulation::new(*params, SimulationConfig::default()).run(&agents)?;

    // Pay flowing to ground-truth collusive workers.
    let cm: BTreeSet<ReviewerId> = design
        .agents
        .iter()
        .filter(|a| a.partners > 0)
        .map(|a| a.worker)
        .collect();
    let cm_pay: f64 = design
        .agents
        .iter()
        .filter(|a| cm.contains(&a.worker))
        .map(|a| a.compensation)
        .sum::<f64>()
        + 0.0; // normalize -0.0 from zero-contract shares
    Ok((outcome.mean_round_utility, cm_pay))
}

/// Runs E11 on an existing trace.
///
/// # Errors
///
/// Propagates design and simulation failures.
pub fn run_on(trace: &TraceDataset, mus: &[f64]) -> Result<CollusionAblationResult, CoreError> {
    // Two engines over the same trace: the default stage set, and one
    // with the detect slot swapped for the blind counterfactual. Both
    // contexts keep their detection and ψ-fits cached across the sweep.
    let aware_engine = Engine::new();
    let blind_engine = Engine::new().with_stage(Box::new(BlindDetectStage));
    let mut aware_ctx = engine_context(trace);
    let mut blind_ctx = engine_context(trace);

    aware_engine
        .run_to(&mut aware_ctx, StageKind::Detect)
        .map_err(core_error)?;
    let suspected: BTreeSet<ReviewerId> = aware_ctx
        .detection()
        .map_err(core_error)?
        .suspected
        .iter()
        .copied()
        .collect();

    let mut rows = Vec::with_capacity(mus.len());
    for &mu in mus {
        aware_ctx.set_mu(mu);
        blind_ctx.set_mu(mu);
        aware_engine
            .run_to(&mut aware_ctx, StageKind::ConstructContracts)
            .map_err(core_error)?;
        blind_engine
            .run_to(&mut blind_ctx, StageKind::ConstructContracts)
            .map_err(core_error)?;
        let params = aware_ctx.config().design.params;
        let reference = aware_ctx.detection().map_err(core_error)?;
        let (aware_u, cm_pay_aware) = evaluate(
            aware_ctx.design().map_err(core_error)?,
            reference,
            &params,
            &suspected,
            trace,
        )?;
        let (blind_u, cm_pay_blind) = evaluate(
            blind_ctx.design().map_err(core_error)?,
            reference,
            &params,
            &suspected,
            trace,
        )?;
        rows.push(CollusionAblationRow {
            mu,
            aware: aware_u,
            blind: blind_u,
            cm_pay_aware,
            cm_pay_blind,
        });
    }
    Ok(CollusionAblationResult { rows })
}

/// Runs E11 at the given scale and seed with the Fig. 8 μ values.
///
/// # Errors
///
/// Propagates design and simulation failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<CollusionAblationResult, CoreError> {
    run_on(&scale.generate(seed), &crate::fig8b::DEFAULT_MUS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collusion_awareness_never_hurts() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert!(
                r.aware >= r.blind - 1e-6,
                "mu={}: aware {} below blind {}",
                r.mu,
                r.aware,
                r.blind
            );
            // Ignoring collusion overpays collusive workers.
            assert!(
                r.cm_pay_blind >= r.cm_pay_aware,
                "mu={}: blind cm pay {} below aware {}",
                r.mu,
                r.cm_pay_blind,
                r.cm_pay_aware
            );
        }
    }

    #[test]
    fn table_renders() {
        let result = run(ExperimentScale::Small, 3).unwrap();
        assert!(result.table().to_string().contains("collusion-blind"));
    }
}
