//! E9 (extension) — **penalty-coefficient sensitivity**: how the Eq. 5
//! penalties κ (malicious probability) and γ (partner count) shape the
//! per-class compensation and the requester's utility.
//!
//! The paper fixes κ = γ = 0.1; this sweep shows the ordering
//! honest > NCM > CM is not an artifact of that choice, and quantifies
//! the cost of over-penalizing (useful malicious feedback discarded).

use crate::render::fmt_f;
use crate::{ExperimentScale, TextTable};
use dcc_core::{design_contracts, CoreError, DesignConfig};
use dcc_detect::{run_pipeline, PipelineConfig, WeightParams};
use dcc_trace::{TraceDataset, WorkerClass};

/// One (κ, γ) cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityRow {
    /// Malicious-probability penalty κ.
    pub kappa: f64,
    /// Partner-count penalty γ.
    pub gamma: f64,
    /// Mean compensation of honest workers.
    pub honest_pay: f64,
    /// Mean compensation of non-collusive malicious workers.
    pub ncm_pay: f64,
    /// Mean compensation of collusive malicious workers.
    pub cm_pay: f64,
    /// The requester's designed per-round utility.
    pub utility: f64,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityResult {
    /// One row per (κ, γ) pair.
    pub rows: Vec<SensitivityRow>,
}

impl SensitivityResult {
    /// Renders the sweep as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "kappa".into(),
            "gamma".into(),
            "honest pay".into(),
            "ncm pay".into(),
            "cm pay".into(),
            "requester utility".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.2}", r.kappa),
                format!("{:.2}", r.gamma),
                fmt_f(r.honest_pay),
                fmt_f(r.ncm_pay),
                fmt_f(r.cm_pay),
                fmt_f(r.utility),
            ]);
        }
        t
    }

    /// The row for a (κ, γ) pair.
    pub fn at(&self, kappa: f64, gamma: f64) -> Option<&SensitivityRow> {
        self.rows
            .iter()
            .find(|r| (r.kappa - kappa).abs() < 1e-9 && (r.gamma - gamma).abs() < 1e-9)
    }
}

/// Runs E9 on an existing trace over a (κ, γ) grid.
///
/// # Errors
///
/// Propagates design failures.
pub fn run_on(
    trace: &TraceDataset,
    kappas: &[f64],
    gammas: &[f64],
) -> Result<SensitivityResult, CoreError> {
    let mut rows = Vec::with_capacity(kappas.len() * gammas.len());
    for &kappa in kappas {
        for &gamma in gammas {
            let detection = run_pipeline(
                trace,
                PipelineConfig {
                    weights: WeightParams {
                        kappa,
                        gamma,
                        ..WeightParams::default()
                    },
                    ..PipelineConfig::default()
                },
            );
            let config = DesignConfig::default();
            let design = design_contracts(trace, &detection, &config)?;
            let mean_pay = |class: WorkerClass| {
                let comps = design.compensations_of(&trace.workers_of_class(class));
                comps.iter().sum::<f64>() / comps.len().max(1) as f64
            };
            rows.push(SensitivityRow {
                kappa,
                gamma,
                honest_pay: mean_pay(WorkerClass::Honest),
                ncm_pay: mean_pay(WorkerClass::NonCollusiveMalicious),
                cm_pay: mean_pay(WorkerClass::CollusiveMalicious),
                utility: design.total_requester_utility,
            });
        }
    }
    Ok(SensitivityResult { rows })
}

/// The default grid.
pub const DEFAULT_KAPPAS: [f64; 3] = [0.0, 0.1, 0.4];
/// The default γ grid.
pub const DEFAULT_GAMMAS: [f64; 3] = [0.0, 0.1, 0.4];

/// Runs E9 at the given scale and seed with the default grid.
///
/// # Errors
///
/// Propagates design failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<SensitivityResult, CoreError> {
    run_on(&scale.generate(seed), &DEFAULT_KAPPAS, &DEFAULT_GAMMAS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_robust_across_grid_and_penalties_monotone() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 9);
        for r in &result.rows {
            assert!(
                r.honest_pay > r.ncm_pay || r.ncm_pay < 1e-9,
                "({}, {}): honest {} vs ncm {}",
                r.kappa,
                r.gamma,
                r.honest_pay,
                r.ncm_pay
            );
            assert!(r.honest_pay > r.cm_pay, "honest must out-earn collusive");
        }
        // Harsher gamma never raises collusive pay.
        let soft = result.at(0.1, 0.0).unwrap();
        let hard = result.at(0.1, 0.4).unwrap();
        assert!(hard.cm_pay <= soft.cm_pay + 1e-9);
        // Honest pay is unaffected by gamma (no partners).
        assert!((hard.honest_pay - soft.honest_pay).abs() < 1e-6);
    }

    #[test]
    fn table_has_grid_rows() {
        let result = run(ExperimentScale::Small, 3).unwrap();
        assert_eq!(result.table().len(), 9);
    }
}
