//! E5 — **Fig. 8(a)**: the compensation paid to 200 prolific honest
//! workers (≥ 20 reviews) under the designed contracts, against the
//! Lemma 4.3 lower bound `β(k_opt−1)δ`, for `m ∈ {10, 20, 40}`.
//!
//! The paper's observation: the gap between the paid compensation and its
//! lower bound shrinks as the partition refines — the compensation
//! converges to optimal.

use crate::render::fmt_f;
use crate::{ExperimentScale, TextTable};
use dcc_core::{design_contracts, CoreError, DesignConfig, ModelParams};
use dcc_detect::{run_pipeline, PipelineConfig};
use dcc_trace::{TraceDataset, WorkerClass};

/// Per-worker sample of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerComp {
    /// Compensation paid under the designed contract.
    pub compensation: f64,
    /// The Lemma 4.3 lower bound `β(k_opt−1)δ` for this worker's
    /// contract.
    pub lower_bound: f64,
}

/// One panel of the figure (one value of `m`).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8aPanel {
    /// Number of effort intervals.
    pub m: usize,
    /// Per-worker samples (up to 200 workers, as in the paper).
    pub workers: Vec<WorkerComp>,
    /// Mean compensation across the sample.
    pub mean_compensation: f64,
    /// Mean lower bound across the sample.
    pub mean_lower_bound: f64,
    /// Mean gap (compensation − lower bound).
    pub mean_gap: f64,
}

/// The full Fig. 8(a) result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8aResult {
    /// One panel per `m`.
    pub panels: Vec<Fig8aPanel>,
}

impl Fig8aResult {
    /// Renders the per-panel summary table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "m".into(),
            "workers".into(),
            "mean comp".into(),
            "mean bound".into(),
            "mean gap".into(),
        ]);
        for p in &self.panels {
            t.row(vec![
                p.m.to_string(),
                p.workers.len().to_string(),
                fmt_f(p.mean_compensation),
                fmt_f(p.mean_lower_bound),
                fmt_f(p.mean_gap),
            ]);
        }
        t
    }
}

/// Runs E5 on an existing trace.
///
/// # Errors
///
/// Propagates design failures.
pub fn run_on(trace: &TraceDataset, ms: &[usize]) -> Result<Fig8aResult, CoreError> {
    let detection = run_pipeline(trace, PipelineConfig::default());
    // Prolific honest workers, capped at 200 as in the paper. Falls back
    // to the most prolific available if fewer than 200 qualify.
    let mut prolific = trace.prolific_workers(WorkerClass::Honest, 20);
    if prolific.is_empty() {
        prolific = trace.prolific_workers(WorkerClass::Honest, 10);
    }
    prolific.truncate(200);

    let mut panels = Vec::with_capacity(ms.len());
    for &m in ms {
        let config = DesignConfig {
            params: ModelParams {
                mu: 1.5,
                ..ModelParams::default()
            },
            intervals: m,
            ..DesignConfig::default()
        };
        let design = design_contracts(trace, &detection, &config)?;
        let mut workers = Vec::with_capacity(prolific.len());
        for id in &prolific {
            if let Some(agent) = design.for_worker(*id) {
                let k = agent.k_opt.unwrap_or(0);
                let lower = config.params.beta * k.saturating_sub(1) as f64 * agent.delta;
                workers.push(WorkerComp {
                    compensation: agent.compensation,
                    lower_bound: lower,
                });
            }
        }
        let n = workers.len().max(1) as f64;
        let mean_compensation = workers.iter().map(|w| w.compensation).sum::<f64>() / n;
        let mean_lower_bound = workers.iter().map(|w| w.lower_bound).sum::<f64>() / n;
        panels.push(Fig8aPanel {
            m,
            mean_gap: mean_compensation - mean_lower_bound,
            workers,
            mean_compensation,
            mean_lower_bound,
        });
    }
    Ok(Fig8aResult { panels })
}

/// Runs E5 at the given scale and seed with the paper's `m` values.
///
/// # Errors
///
/// Propagates design failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig8aResult, CoreError> {
    run_on(&scale.generate(seed), &DEFAULT_MS)
}

/// The figure's `m` values.
pub const DEFAULT_MS: [usize; 3] = [10, 20, 40];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensation_sits_above_lower_bound_and_gap_shrinks() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.panels.len(), 3);
        for p in &result.panels {
            assert!(!p.workers.is_empty(), "m={}: no sampled workers", p.m);
            for w in &p.workers {
                assert!(
                    w.compensation >= w.lower_bound - 1e-9,
                    "m={}: compensation {} below bound {}",
                    p.m,
                    w.compensation,
                    w.lower_bound
                );
            }
        }
        // The mean gap shrinks as m grows (Fig. 8a's visual).
        let gaps: Vec<f64> = result.panels.iter().map(|p| p.mean_gap).collect();
        assert!(gaps[2] < gaps[0], "gap did not shrink: {gaps:?}");
    }

    #[test]
    fn table_has_one_row_per_m() {
        let result = run(ExperimentScale::Small, 11).unwrap();
        assert_eq!(result.table().len(), 3);
    }
}
