//! E12 (extension) — **baseline ladder**: the dynamic contract against
//! the full spectrum of §VI-style pricing baselines on the same
//! population — exclusion, fixed payment, and a learned linear contract
//! (ε-greedy bandit over slopes, the strongest model-free competitor).

use crate::render::fmt_f;
use crate::{core_error, engine_context, ExperimentScale, TextTable};
use dcc_core::{BaselineStrategy, CoreError, LinearPricingBandit, StrategyKind};
use dcc_engine::{Engine, EngineSimOutcome};
use dcc_trace::TraceDataset;
use std::collections::BTreeSet;

/// The comparison at one μ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineLadderRow {
    /// μ used throughout.
    pub mu: f64,
    /// Mean per-round utility of the §IV-C dynamic contracts.
    pub dynamic: f64,
    /// … of the learned linear contract (post-learning steady state).
    pub learned_linear: f64,
    /// … of the exclude-all-malicious baseline.
    pub exclude: f64,
    /// … of a fixed payment matched to the dynamic design's spend.
    pub fixed: f64,
    /// The slope the bandit converged to.
    pub learned_slope: f64,
}

/// The E12 result.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineLadderResult {
    /// One row per μ.
    pub rows: Vec<BaselineLadderRow>,
}

impl BaselineLadderResult {
    /// Renders the ladder.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "mu".into(),
            "dynamic (ours)".into(),
            "learned linear".into(),
            "exclude".into(),
            "fixed".into(),
            "learned slope".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.1}", r.mu),
                fmt_f(r.dynamic),
                fmt_f(r.learned_linear),
                fmt_f(r.exclude),
                fmt_f(r.fixed),
                format!("{:.2}", r.learned_slope),
            ]);
        }
        t
    }
}

/// Runs E12 on an existing trace.
///
/// # Errors
///
/// Propagates design, simulation and bandit failures.
pub fn run_on(trace: &TraceDataset, mus: &[f64]) -> Result<BaselineLadderResult, CoreError> {
    let mut ctx = engine_context(trace);
    let engine = Engine::new();
    let mut rows = Vec::with_capacity(mus.len());
    for &mu in mus {
        // One engine context per sweep: detection and fits stay cached
        // across μ; strategy switches re-run only the simulate stage.
        ctx.set_mu(mu);
        ctx.set_strategy(StrategyKind::DynamicContract);
        engine.run(&mut ctx).map_err(core_error)?;
        let dynamic = mean_utility(&ctx)?;

        let design = ctx.design().map_err(core_error)?;
        let params = ctx.config().design.params;
        let suspected: BTreeSet<_> = ctx
            .detection()
            .map_err(core_error)?
            .suspected
            .iter()
            .copied()
            .collect();
        let agents = BaselineStrategy::new(StrategyKind::DynamicContract)
            .assemble(design, params.omega, &suspected)?;
        let bandit = LinearPricingBandit::default().run(&params, &agents)?;

        let in_system = agents.iter().filter(|a| a.in_system).count().max(1);
        let spend: f64 = design.agents.iter().map(|a| a.compensation).sum();
        let amount = (spend / in_system as f64).max(0.0);

        ctx.set_strategy(StrategyKind::ExcludeMalicious);
        engine.run(&mut ctx).map_err(core_error)?;
        let exclude = mean_utility(&ctx)?;

        ctx.set_strategy(StrategyKind::FixedPayment { amount });
        engine.run(&mut ctx).map_err(core_error)?;
        let fixed = mean_utility(&ctx)?;

        rows.push(BaselineLadderRow {
            mu,
            dynamic,
            learned_linear: bandit.late_mean_utility,
            exclude,
            fixed,
            learned_slope: bandit.best_slope,
        });
    }
    Ok(BaselineLadderResult { rows })
}

/// The mean per-round requester utility of the context's completed
/// simulation.
fn mean_utility(ctx: &dcc_engine::RoundContext) -> Result<f64, CoreError> {
    match ctx.sim_outcome().map_err(core_error)? {
        EngineSimOutcome::Completed { outcome, .. } => Ok(outcome.mean_round_utility),
        EngineSimOutcome::Killed { .. } => unreachable!("no kill round is configured"),
    }
}

/// Runs E12 at the given scale and seed with the Fig. 8 μ values.
///
/// # Errors
///
/// Propagates design, simulation and bandit failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<BaselineLadderResult, CoreError> {
    run_on(&scale.generate(seed), &crate::fig8b::DEFAULT_MUS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_tops_the_ladder() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert!(
                r.dynamic >= r.learned_linear,
                "mu={}: dynamic {} below learned linear {}",
                r.mu,
                r.dynamic,
                r.learned_linear
            );
            assert!(r.dynamic >= r.exclude);
            assert!(r.dynamic >= r.fixed);
            // The learned linear contract is a real competitor: it should
            // clearly beat the fixed payment.
            assert!(
                r.learned_linear > r.fixed,
                "mu={}: learned linear {} not above fixed {}",
                r.mu,
                r.learned_linear,
                r.fixed
            );
        }
    }

    #[test]
    fn table_renders() {
        let result = run(ExperimentScale::Small, 9).unwrap();
        assert!(result.table().to_string().contains("learned linear"));
    }
}
