//! E12 (extension) — **baseline ladder**: the dynamic contract against
//! the full spectrum of §VI-style pricing baselines on the same
//! population — exclusion, fixed payment, and a learned linear contract
//! (ε-greedy bandit over slopes, the strongest model-free competitor).

use crate::render::fmt_f;
use crate::{batch_error, batch_runner, ExperimentScale, TextTable};
use dcc_batch::{Scenario, ScenarioGrid, ScenarioRecord};
use dcc_core::{
    BaselineStrategy, CoreError, LinearPricingBandit, SimulationConfig, StrategyKind,
};
use dcc_trace::TraceDataset;
use std::collections::BTreeSet;

/// The comparison at one μ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineLadderRow {
    /// μ used throughout.
    pub mu: f64,
    /// Mean per-round utility of the §IV-C dynamic contracts.
    pub dynamic: f64,
    /// … of the learned linear contract (post-learning steady state).
    pub learned_linear: f64,
    /// … of the exclude-all-malicious baseline.
    pub exclude: f64,
    /// … of a fixed payment matched to the dynamic design's spend.
    pub fixed: f64,
    /// The slope the bandit converged to.
    pub learned_slope: f64,
}

/// The E12 result.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineLadderResult {
    /// One row per μ.
    pub rows: Vec<BaselineLadderRow>,
}

impl BaselineLadderResult {
    /// Renders the ladder.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "mu".into(),
            "dynamic (ours)".into(),
            "learned linear".into(),
            "exclude".into(),
            "fixed".into(),
            "learned slope".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.1}", r.mu),
                fmt_f(r.dynamic),
                fmt_f(r.learned_linear),
                fmt_f(r.exclude),
                fmt_f(r.fixed),
                format!("{:.2}", r.learned_slope),
            ]);
        }
        t
    }
}

/// Runs E12 on an existing trace.
///
/// # Errors
///
/// Propagates design, simulation and bandit failures.
pub fn run_on(trace: &TraceDataset, mus: &[f64]) -> Result<BaselineLadderResult, CoreError> {
    // Two batch passes over one shared memo: detection and the ψ-fits
    // run once for the whole ladder. The first pass sweeps
    // μ × {dynamic, exclude}; the fixed-payment amount depends on each
    // μ's dynamic design, so those scenarios are built afterwards and
    // run as an explicit list (warm memo: all cache hits).
    let runner = batch_runner();
    let mut grid = ScenarioGrid::for_trace(trace.clone(), mus);
    grid.strategies = vec![StrategyKind::DynamicContract, StrategyKind::ExcludeMalicious];
    grid.sim = Some(SimulationConfig::default());
    let report = runner.run(&grid).map_err(batch_error)?;

    let mut partial = Vec::with_capacity(mus.len());
    let mut fixed_scenarios = Vec::with_capacity(mus.len());
    for (i, pair) in report.records.chunks(2).enumerate() {
        let [dynamic_rec, exclude_rec] = pair else {
            return Err(CoreError::InvalidInput(
                "batch report lost a ladder scenario".into(),
            ));
        };
        let mu = dynamic_rec.scenario.mu;
        let outcome = scenario_outcome(dynamic_rec)?;
        let dynamic = sim_mean_utility(dynamic_rec)?;
        let exclude = sim_mean_utility(exclude_rec)?;

        let design = &outcome.design;
        let mut params = grid.design.params;
        params.mu = mu;
        let suspected: BTreeSet<_> = outcome.detection.suspected.iter().copied().collect();
        let agents = BaselineStrategy::new(StrategyKind::DynamicContract)
            .assemble(design, params.omega, &suspected, trace)?;
        let bandit = LinearPricingBandit::default().run(&params, &agents)?;

        let in_system = agents.iter().filter(|a| a.in_system).count().max(1);
        let spend: f64 = design.agents.iter().map(|a| a.compensation).sum();
        let amount = (spend / in_system as f64).max(0.0);

        partial.push((mu, dynamic, exclude, bandit));
        fixed_scenarios.push(Scenario {
            id: i,
            trace: 0,
            mu,
            budget_fraction: 1.0,
            strategy: StrategyKind::FixedPayment { amount },
        });
    }

    let fixed_report = runner
        .run_scenarios(&grid, &fixed_scenarios)
        .map_err(batch_error)?;
    let mut rows = Vec::with_capacity(mus.len());
    for ((mu, dynamic, exclude, bandit), fixed_rec) in
        partial.into_iter().zip(&fixed_report.records)
    {
        rows.push(BaselineLadderRow {
            mu,
            dynamic,
            learned_linear: bandit.late_mean_utility,
            exclude,
            fixed: sim_mean_utility(fixed_rec)?,
            learned_slope: bandit.best_slope,
        });
    }
    Ok(BaselineLadderResult { rows })
}

/// The successful outcome of one scenario record.
fn scenario_outcome(record: &ScenarioRecord) -> Result<&dcc_batch::ScenarioOutcome, CoreError> {
    record.require_outcome()
}

/// The mean per-round requester utility of one simulated scenario.
fn sim_mean_utility(record: &ScenarioRecord) -> Result<f64, CoreError> {
    scenario_outcome(record)?
        .sim
        .as_ref()
        .map(|sim| sim.mean_round_utility)
        .ok_or_else(|| CoreError::InvalidInput("ladder scenario ran design-only".into()))
}

/// Runs E12 at the given scale and seed with the Fig. 8 μ values.
///
/// # Errors
///
/// Propagates design, simulation and bandit failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<BaselineLadderResult, CoreError> {
    run_on(&scale.generate(seed), &crate::fig8b::DEFAULT_MUS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_tops_the_ladder() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert!(
                r.dynamic >= r.learned_linear,
                "mu={}: dynamic {} below learned linear {}",
                r.mu,
                r.dynamic,
                r.learned_linear
            );
            assert!(r.dynamic >= r.exclude);
            assert!(r.dynamic >= r.fixed);
            // The learned linear contract is a real competitor: it should
            // clearly beat the fixed payment.
            assert!(
                r.learned_linear > r.fixed,
                "mu={}: learned linear {} not above fixed {}",
                r.mu,
                r.learned_linear,
                r.fixed
            );
        }
    }

    #[test]
    fn table_renders() {
        let result = run(ExperimentScale::Small, 9).unwrap();
        assert!(result.table().to_string().contains("learned linear"));
    }
}
