//! E10 (extension) — **detector quality**: precision/recall of the
//! heuristic malicious-probability estimator against the trace's
//! ground-truth labels, across suspicion thresholds.
//!
//! The paper consumes ground-truth labels (its trace was built from
//! crawled recruitment sites) and cites ML detectors \[14\]\[15\] as the
//! deployment substitute; this table characterizes how well our stand-in
//! estimator does on the synthetic trace.

use crate::render::fmt_f;
use crate::{ExperimentScale, TextTable};
use dcc_detect::{ConsensusMap, MaliciousDetector};
use dcc_trace::TraceDataset;
use std::collections::BTreeSet;

/// Quality metrics at one threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRow {
    /// Suspicion threshold on `e_mal`.
    pub threshold: f64,
    /// Precision of the suspected set.
    pub precision: f64,
    /// Recall of the suspected set.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Overall label accuracy.
    pub accuracy: f64,
}

/// The detector-quality table.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// One row per threshold.
    pub rows: Vec<DetectionRow>,
}

impl DetectionResult {
    /// Renders the table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "threshold".into(),
            "precision".into(),
            "recall".into(),
            "F1".into(),
            "accuracy".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.2}", r.threshold),
                fmt_f(r.precision),
                fmt_f(r.recall),
                fmt_f(r.f1),
                fmt_f(r.accuracy),
            ]);
        }
        t
    }

    /// The best F1 across thresholds.
    pub fn best_f1(&self) -> f64 {
        self.rows.iter().map(|r| r.f1).fold(0.0, f64::max)
    }
}

/// Runs E10 on an existing trace.
pub fn run_on(trace: &TraceDataset, thresholds: &[f64]) -> DetectionResult {
    let consensus = ConsensusMap::build(trace);
    let estimates = MaliciousDetector::default().estimate(trace, &consensus);
    let truth: BTreeSet<_> = trace
        .reviewers()
        .iter()
        .filter(|r| r.class.is_malicious())
        .map(|r| r.id)
        .collect();
    let total = trace.reviewers().len().max(1);

    let rows = thresholds
        .iter()
        .map(|&threshold| {
            let suspected: BTreeSet<_> = estimates.suspected(threshold).into_iter().collect();
            let tp = suspected.intersection(&truth).count() as f64;
            let fp = suspected.len() as f64 - tp;
            let fn_ = truth.len() as f64 - tp;
            let tn = total as f64 - tp - fp - fn_;
            let precision = if suspected.is_empty() { 1.0 } else { tp / (tp + fp) };
            let recall = if truth.is_empty() { 1.0 } else { tp / (tp + fn_) };
            let f1 = if dcc_numerics::exact_eq(precision + recall, 0.0) {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            DetectionRow {
                threshold,
                precision,
                recall,
                f1,
                accuracy: (tp + tn) / total as f64,
            }
        })
        .collect();
    DetectionResult { rows }
}

/// Default threshold grid.
pub const DEFAULT_THRESHOLDS: [f64; 5] = [0.3, 0.4, 0.5, 0.6, 0.7];

/// Runs E10 at the given scale and seed.
pub fn run(scale: ExperimentScale, seed: u64) -> DetectionResult {
    run_on(&scale.generate(seed), &DEFAULT_THRESHOLDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_clearly_beats_chance() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED);
        assert_eq!(result.rows.len(), 5);
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.precision));
            assert!((0.0..=1.0).contains(&r.recall));
            assert!((0.0..=1.0).contains(&r.accuracy));
        }
        assert!(
            result.best_f1() > 0.5,
            "best F1 {} should beat chance clearly",
            result.best_f1()
        );
    }

    #[test]
    fn recall_decreases_with_threshold() {
        let result = run(ExperimentScale::Small, 5);
        for w in result.rows.windows(2) {
            assert!(
                w[1].recall <= w[0].recall + 1e-12,
                "recall must fall as the threshold rises"
            );
        }
    }
}
