//! # dcc-experiments
//!
//! Runners that regenerate every table and figure of the paper's
//! evaluation (§V) plus the Fig. 6 bound analysis, on the synthetic trace
//! substrate. Each runner returns a typed result *and* renders the same
//! rows/series the paper reports; the binaries in `src/bin` print them.
//!
//! | id | artifact | runner |
//! |----|----------|--------|
//! | E1 | Fig. 6 — utility vs Theorem 4.1 bounds over m | [`fig6::run`] |
//! | E2 | Table II — collusive community sizes | [`table2::run`] |
//! | E3 | Fig. 7 — class effort/feedback comparison | [`fig7::run`] |
//! | E4 | Table III — NoR of polynomial fits | [`table3::run`] |
//! | E5 | Fig. 8(a) — compensation vs lower bound | [`fig8a::run`] |
//! | E6 | Fig. 8(b) — compensation by class and μ | [`fig8b::run`] |
//! | E7 | Fig. 8(c) — ours vs exclusion baseline | [`fig8c::run`] |
//!
//! All runners are deterministic for a given [`ExperimentScale`] and seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive_ext;
pub mod adversarial;
pub mod baselines_ext;
pub mod budget_ext;
pub mod risk_ext;
pub mod collusion_ablation;
pub mod detection_quality;
pub mod fig6;
pub mod fig7;
pub mod fig8a;
pub mod fig8b;
pub mod fig8c;
pub mod sensitivity;
pub mod table2;
pub mod table3;

mod render;

pub use render::TextTable;

use dcc_core::CoreError;
use dcc_engine::{EngineConfig, EngineError, RoundContext};
use dcc_obs::Metrics;
use dcc_trace::{SyntheticConfig, TraceDataset};
use std::sync::Mutex;

/// The process-wide metrics handle the runners publish through; `None`
/// until [`install_metrics`] is called, which reads as noop.
static METRICS: Mutex<Option<Metrics>> = Mutex::new(None);

/// Installs the metrics handle every subsequent experiment engine run
/// publishes through. Binaries call this once at startup (e.g. the
/// `all` binary installs a `JsonRecorder` when `--csv DIR` is given and
/// writes the document next to the CSVs); the default is a noop
/// recorder, which keeps the runners overhead-free.
pub fn install_metrics(metrics: Metrics) {
    *METRICS.lock().unwrap_or_else(|e| e.into_inner()) = Some(metrics);
}

/// The currently installed metrics handle (noop unless a binary
/// installed one).
pub fn current_metrics() -> Metrics {
    METRICS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default()
}

/// A fresh engine context over `trace` with the runners' shared
/// defaults (ground-truth detection, default design, automatic pool) —
/// the single place the `detect → fit → solve → construct` chain is
/// wired for every experiment.
pub(crate) fn engine_context(trace: &TraceDataset) -> RoundContext {
    let mut config = EngineConfig::for_trace(trace.clone());
    config.metrics = current_metrics();
    RoundContext::new(config)
}

/// Lowers an [`EngineError`] onto the runners' `CoreError` interface so
/// the public `run`/`run_on` signatures stay unchanged.
pub(crate) fn core_error(e: EngineError) -> CoreError {
    match e {
        EngineError::Core(c) => c,
        other => CoreError::InvalidInput(other.to_string()),
    }
}

/// A batch runner wired to the installed metrics handle — the batched
/// counterpart of [`engine_context`] for the sweep-shaped experiments
/// (Fig. 8(b), the budget curve, the baseline ladder).
pub(crate) fn batch_runner() -> dcc_batch::BatchRunner {
    dcc_batch::BatchRunner::with_options(dcc_batch::BatchOptions {
        metrics: current_metrics(),
        ..Default::default()
    })
}

/// Lowers a [`dcc_batch::BatchError`] onto the runners' `CoreError`
/// interface, mirroring [`core_error`].
pub(crate) fn batch_error(e: dcc_batch::BatchError) -> CoreError {
    CoreError::InvalidInput(e.to_string())
}

/// Workload scale for experiment runners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Hundreds of workers — seconds; used by tests and quick runs.
    Small,
    /// The paper's §V workload (19,686 reviewers, ≈118k reviews).
    Paper,
}

impl ExperimentScale {
    /// Parses `"small"` / `"paper"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(ExperimentScale::Small),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// The trace generator configuration for this scale.
    pub fn trace_config(self, seed: u64) -> SyntheticConfig {
        match self {
            ExperimentScale::Small => {
                let mut cfg = SyntheticConfig::small(seed);
                // Enough honest workers for the Fig. 8(a) prolific filter
                // and enough communities for a stable Table II histogram.
                cfg.n_honest = 1_000;
                cfg.n_products = 2_000;
                cfg.n_cm_target = 120;
                cfg
            }
            ExperimentScale::Paper => SyntheticConfig::paper_scale(seed),
        }
    }

    /// Generates the trace for this scale.
    pub fn generate(self, seed: u64) -> TraceDataset {
        self.trace_config(seed).generate()
    }
}

/// Reads the scale from process args (`--scale small|paper`), defaulting
/// to [`ExperimentScale::Paper`] for binaries.
pub fn scale_from_args() -> ExperimentScale {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--scale" {
            if let Some(s) = ExperimentScale::parse(&pair[1]) {
                return s;
            }
        }
    }
    ExperimentScale::Paper
}

/// The default experiment seed (shared so all artifacts come from the
/// same trace).
pub const DEFAULT_SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_obs::JsonRecorder;
    use std::sync::Arc;

    #[test]
    fn installed_metrics_reach_the_engine_context() {
        let mut cfg = SyntheticConfig::small(3);
        cfg.n_honest = 8;
        cfg.n_ncm = 2;
        cfg.n_cm_target = 2;
        cfg.n_products = 60;
        cfg.n_rounds = 2;
        let trace = cfg.generate();

        install_metrics(Metrics::new(Arc::new(JsonRecorder::new())));
        assert!(engine_context(&trace).config().metrics.enabled());
        install_metrics(Metrics::noop());
        assert!(!engine_context(&trace).config().metrics.enabled());
    }
}
