//! E13 (extension) — **budget-feasible contracting**: the requester's
//! utility as a function of a hard per-round payment budget, connecting
//! the §IV design to the budget-feasibility line of related work (§VI).

use crate::render::fmt_f;
use crate::{batch_error, batch_runner, ExperimentScale, TextTable};
use dcc_batch::ScenarioGrid;
use dcc_core::CoreError;
use dcc_trace::TraceDataset;

/// One budget point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetRow {
    /// Fraction of the unconstrained design's spend allowed.
    pub budget_fraction: f64,
    /// The absolute budget.
    pub budget: f64,
    /// Number of funded contracts.
    pub funded: usize,
    /// Realized spend.
    pub spend: f64,
    /// Requester utility of the funded set.
    pub utility: f64,
    /// Utility as a fraction of the unconstrained total.
    pub utility_fraction: f64,
}

/// The E13 result.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetResult {
    /// One row per budget fraction.
    pub rows: Vec<BudgetRow>,
    /// The unconstrained spend (the 100% reference).
    pub full_spend: f64,
    /// The unconstrained utility.
    pub full_utility: f64,
}

impl BudgetResult {
    /// Renders the curve.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "budget %".into(),
            "budget".into(),
            "funded".into(),
            "spend".into(),
            "utility".into(),
            "utility %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.0}", 100.0 * r.budget_fraction),
                fmt_f(r.budget),
                r.funded.to_string(),
                fmt_f(r.spend),
                fmt_f(r.utility),
                format!("{:.1}", 100.0 * r.utility_fraction),
            ]);
        }
        t
    }
}

/// Runs E13 on an existing trace.
///
/// # Errors
///
/// Propagates design failures.
pub fn run_on(trace: &TraceDataset, fractions: &[f64]) -> Result<BudgetResult, CoreError> {
    // One design, many budgets: the budget axis of a batch grid at the
    // default μ. The design solves once (shared fit/solve per μ) and
    // each scenario carries its own budget selection.
    let mut grid = ScenarioGrid::for_trace(trace.clone(), &[dcc_core::DesignConfig::default().params.mu]);
    grid.budget_fractions = fractions.to_vec();
    let report = batch_runner().run(&grid).map_err(batch_error)?;

    let mut rows = Vec::with_capacity(fractions.len());
    let mut full_spend = 0.0;
    let mut full_utility = 0.0;
    for record in &report.records {
        let outcome = record.require_outcome()?;
        full_spend = outcome.full_spend;
        full_utility = outcome.design.total_requester_utility;
        rows.push(BudgetRow {
            budget_fraction: record.scenario.budget_fraction,
            budget: outcome.budget.budget,
            funded: outcome.budget.funded.len(),
            spend: outcome.budget.spend,
            utility: outcome.budget.utility,
            utility_fraction: if full_utility.abs() > 1e-12 {
                outcome.budget.utility / full_utility
            } else {
                0.0
            },
        });
    }
    Ok(BudgetResult {
        rows,
        full_spend,
        full_utility,
    })
}

/// Default budget fractions.
pub const DEFAULT_FRACTIONS: [f64; 6] = [0.05, 0.1, 0.25, 0.5, 0.75, 1.0];

/// Runs E13 at the given scale and seed.
///
/// # Errors
///
/// Propagates design failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<BudgetResult, CoreError> {
    run_on(&scale.generate(seed), &DEFAULT_FRACTIONS)
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn utility_concave_in_budget() {
        // The defining budget-feasibility shape: a small budget captures a
        // disproportionate share of utility (fund best-ratio workers
        // first), and utility is monotone in the budget.
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 6);
        let mut prev = -1.0;
        for r in &result.rows {
            assert!(r.spend <= r.budget + 1e-9);
            assert!(r.utility >= prev - 1e-9, "utility must grow with budget");
            prev = r.utility;
        }
        // 25% of the budget buys well over 25% of the utility.
        let quarter = result.rows.iter().find(|r| r.budget_fraction == 0.25).unwrap();
        assert!(
            quarter.utility_fraction > 0.3,
            "25% budget should buy >30% utility, got {:.3}",
            quarter.utility_fraction
        );
        // Full budget recovers the unconstrained design.
        let full = result.rows.last().unwrap();
        assert!(full.utility_fraction > 0.999);
    }

    #[test]
    fn table_renders() {
        let result = run(ExperimentScale::Small, 3).unwrap();
        assert!(result.table().to_string().contains("utility %"));
    }
}
