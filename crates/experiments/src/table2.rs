//! E2 — **Table II**: the distribution of collusive community sizes
//! discovered by the §IV-A clustering, next to the paper's percentages.

use crate::render::fmt_f;
use crate::{engine_context, ExperimentScale, TextTable};
use dcc_engine::{Engine, EngineError, StageKind};
use dcc_trace::TraceDataset;

/// The paper's Table II percentages for buckets `2, 3, 4, 5, 6, ≥10`.
pub const PAPER_PERCENTAGES: [f64; 6] = [51.2, 22.0, 7.3, 2.4, 9.8, 4.9];

/// The Table II reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// `(bucket label, count, ours %, paper %)` rows.
    pub rows: Vec<(String, usize, f64, f64)>,
    /// Total number of communities found.
    pub communities: usize,
    /// Total number of collusive workers found.
    pub collusive_workers: usize,
}

impl Table2Result {
    /// Renders the distribution table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "size".into(),
            "count".into(),
            "ours (%)".into(),
            "paper (%)".into(),
        ]);
        for (label, count, ours, paper) in &self.rows {
            t.row(vec![
                label.clone(),
                count.to_string(),
                fmt_f(*ours),
                fmt_f(*paper),
            ]);
        }
        t
    }
}

/// Runs E2 on an existing trace.
///
/// # Errors
///
/// Propagates ingest/detection failures from the engine.
pub fn run_on(trace: &TraceDataset) -> Result<Table2Result, EngineError> {
    let mut ctx = engine_context(trace);
    Engine::new().run_to(&mut ctx, StageKind::Detect)?;
    let detection = ctx.detection()?;
    let hist = detection.collusion.size_histogram();
    let pct = detection.collusion.size_percentages();
    let rows = hist
        .into_iter()
        .zip(pct)
        .zip(PAPER_PERCENTAGES)
        .map(|(((label, count), (_, ours)), paper)| (label, count, ours, paper))
        .collect();
    Ok(Table2Result {
        rows,
        communities: detection.collusion.communities.len(),
        collusive_workers: detection.collusion.collusive_worker_count(),
    })
}

/// Runs E2 at the given scale and seed.
///
/// # Errors
///
/// Propagates ingest/detection failures from the engine.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Table2Result, EngineError> {
    run_on(&scale.generate(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_shape_matches_paper() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 6);
        assert!(result.communities > 0);
        assert!(result.collusive_workers >= 2 * result.communities);
        // Size-2 bucket dominates, as in the paper.
        let counts: Vec<usize> = result.rows.iter().map(|r| r.1).collect();
        assert!(counts.iter().all(|&c| c <= counts[0]));
        // Percentages sum to 100.
        let total: f64 = result.rows.iter().map(|r| r.2).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let result = run(ExperimentScale::Small, 7).unwrap();
        let s = result.table().to_string();
        assert!(s.contains("paper"));
        assert!(s.contains(">=10"));
    }
}
