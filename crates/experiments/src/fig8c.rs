//! E7 — **Fig. 8(c)**: the requester's utility under our dynamic
//! contract versus the baseline that excludes all suspected malicious
//! workers (and a fixed-payment reference), over the μ sweep.
//!
//! The paper's claim: our design dominates exclusion because it still
//! extracts value from malicious workers whose reviews are biased but
//! within an acceptable accuracy range, while near-worthless feedback is
//! automatically devalued by Eq. 5.

use crate::render::fmt_f;
use crate::{core_error, engine_context, ExperimentScale, TextTable};
use dcc_core::{BaselineStrategy, CoreError, StrategyKind};
use dcc_engine::{Engine, EngineSimOutcome, RoundContext};
use dcc_trace::TraceDataset;
use std::collections::BTreeSet;

/// One μ row of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8cRow {
    /// μ used for design and accounting.
    pub mu: f64,
    /// Mean per-round requester utility under our dynamic contract.
    pub ours: f64,
    /// … under the exclude-all-malicious baseline.
    pub exclude: f64,
    /// … under a fixed-payment contract with the same mean spend as ours.
    pub fixed: f64,
}

/// The full Fig. 8(c) result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8cResult {
    /// One row per μ.
    pub rows: Vec<Fig8cRow>,
}

impl Fig8cResult {
    /// Renders the comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "mu".into(),
            "dynamic (ours)".into(),
            "exclude malicious".into(),
            "fixed payment".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.1}", r.mu),
                fmt_f(r.ours),
                fmt_f(r.exclude),
                fmt_f(r.fixed),
            ]);
        }
        t
    }
}

/// Runs E7 on an existing trace.
///
/// # Errors
///
/// Propagates design and simulation failures.
pub fn run_on(trace: &TraceDataset, mus: &[f64]) -> Result<Fig8cResult, CoreError> {
    let mut ctx = engine_context(trace);
    let engine = Engine::new();
    let mut rows = Vec::with_capacity(mus.len());
    for &mu in mus {
        // μ invalidates solve-onward; switching the strategy afterwards
        // re-runs only the simulate stage over the cached design.
        ctx.set_mu(mu);
        ctx.set_strategy(StrategyKind::DynamicContract);
        engine.run(&mut ctx).map_err(core_error)?;
        let ours = mean_utility(&ctx)?;

        // Fixed payment matched to our mean per-agent spend.
        let design = ctx.design().map_err(core_error)?;
        let params = ctx.config().design.params;
        let suspected: BTreeSet<_> = ctx
            .detection()
            .map_err(core_error)?
            .suspected
            .iter()
            .copied()
            .collect();
        let ours_agents = BaselineStrategy::new(StrategyKind::DynamicContract)
            .assemble(design, params.omega, &suspected, ctx.trace().map_err(core_error)?)?;
        let in_system = ours_agents.iter().filter(|a| a.in_system).count().max(1);
        let total_spend: f64 = design.agents.iter().map(|a| a.compensation).sum();
        let amount = (total_spend / in_system as f64).max(0.0);

        ctx.set_strategy(StrategyKind::ExcludeMalicious);
        engine.run(&mut ctx).map_err(core_error)?;
        let exclude = mean_utility(&ctx)?;

        ctx.set_strategy(StrategyKind::FixedPayment { amount });
        engine.run(&mut ctx).map_err(core_error)?;
        let fixed = mean_utility(&ctx)?;

        rows.push(Fig8cRow {
            mu,
            ours,
            exclude,
            fixed,
        });
    }
    Ok(Fig8cResult { rows })
}

/// The mean per-round requester utility of the context's completed
/// simulation.
fn mean_utility(ctx: &RoundContext) -> Result<f64, CoreError> {
    match ctx.sim_outcome().map_err(core_error)? {
        EngineSimOutcome::Completed { outcome, .. } => Ok(outcome.mean_round_utility),
        EngineSimOutcome::Killed { .. } => unreachable!("no kill round is configured"),
    }
}

/// Runs E7 at the given scale and seed with the paper's μ values.
///
/// # Errors
///
/// Propagates design and simulation failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig8cResult, CoreError> {
    run_on(&scale.generate(seed), &crate::fig8b::DEFAULT_MUS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_dominates_exclusion_at_every_mu() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert!(
                r.ours >= r.exclude,
                "mu={}: ours {} below exclusion {}",
                r.mu,
                r.ours,
                r.exclude
            );
            assert!(
                r.ours >= r.fixed,
                "mu={}: ours {} below fixed payment {}",
                r.mu,
                r.ours,
                r.fixed
            );
        }
    }

    #[test]
    fn table_renders() {
        let result = run(ExperimentScale::Small, 17).unwrap();
        let s = result.table().to_string();
        assert!(s.contains("exclude malicious"));
    }
}
