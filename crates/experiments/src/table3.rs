//! E4 — **Table III**: the norm of residuals of polynomial fits (orders
//! 1–6) to each class's `(effort, feedback)` points. The paper's
//! conclusion — the NoR barely improves past the quadratic — justifies
//! Eq. 19.

use crate::render::fmt_f;
use crate::{ExperimentScale, TextTable};
use dcc_core::{nor_table, CoreError};
use dcc_trace::{TraceDataset, WorkerClass};

/// The Table III reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// `(class, [NoR for degree 1..=6], points)` rows.
    pub rows: Vec<(WorkerClass, Vec<f64>, usize)>,
}

impl Table3Result {
    /// Renders the table with one column per degree.
    pub fn table(&self) -> TextTable {
        let mut header = vec!["class".into(), "points".into()];
        header.extend(["linear", "quad", "cubic", "4th", "5th", "6th"].map(String::from));
        let mut t = TextTable::new(header);
        for (class, nors, points) in &self.rows {
            let mut cells = vec![class.to_string(), points.to_string()];
            cells.extend(nors.iter().map(|&v| fmt_f(v)));
            t.row(cells);
        }
        t
    }

    /// The NoR series of a class.
    pub fn nors_of(&self, class: WorkerClass) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|r| r.0 == class)
            .map(|r| r.1.as_slice())
    }
}

/// Runs E4 on an existing trace.
///
/// # Errors
///
/// Propagates fitting errors when a class has too few workers.
pub fn run_on(trace: &TraceDataset) -> Result<Table3Result, CoreError> {
    let mut rows = Vec::with_capacity(3);
    for class in WorkerClass::ALL {
        let points = trace.effort_feedback_points(class);
        let table = nor_table(&points, 6)?;
        rows.push((class, table.into_iter().map(|(_, nor)| nor).collect(), points.len()));
    }
    Ok(Table3Result { rows })
}

/// Runs E4 at the given scale and seed.
///
/// # Errors
///
/// Propagates fitting errors when a class has too few workers.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Table3Result, CoreError> {
    run_on(&scale.generate(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nor_flat_after_quadratic_for_all_classes() {
        let result = run(ExperimentScale::Small, crate::DEFAULT_SEED).unwrap();
        assert_eq!(result.rows.len(), 3);
        for (class, nors, points) in &result.rows {
            assert_eq!(nors.len(), 6);
            assert!(*points >= 7, "{class}: too few points");
            // Monotone non-increasing with degree.
            for w in nors.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{class}: NoR increased");
            }
            // Table III shape: the quadratic is within a few percent of
            // the 6th-order fit (the small collusive class is noisiest —
            // its feedback carries the community-size upvote boost).
            assert!(
                nors[1] <= 1.1 * nors[5],
                "{class}: quad {} vs 6th {}",
                nors[1],
                nors[5]
            );
        }
    }

    #[test]
    fn table_renders_six_degree_columns() {
        let result = run(ExperimentScale::Small, 5).unwrap();
        let s = result.table().to_string();
        assert!(s.contains("quad"));
        assert!(s.contains("6th"));
        assert!(result.nors_of(WorkerClass::Honest).is_some());
    }
}
