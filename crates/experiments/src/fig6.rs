//! E1 — **Fig. 6**: the requester's utility under the designed contract
//! for a single honest worker, bracketed by the Theorem 4.1 bounds, as
//! the number of effort intervals `m` grows.
//!
//! The paper's observation: the achieved utility approaches the upper
//! bound as the partition refines, so the (unknown) optimum — squeezed
//! between the achieved utility and the upper bound — is approached too.

use crate::render::fmt_f;
use crate::TextTable;
use dcc_core::{
    first_best_utility, ContractBuilder, CoreError, Discretization, ModelParams,
};
use dcc_numerics::Quadratic;

/// One point of the Fig. 6 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Point {
    /// Number of effort intervals.
    pub m: usize,
    /// Theorem 4.1 lower bound at the selected `k_opt`.
    pub lower_bound: f64,
    /// The requester utility our contract achieves.
    pub achieved: f64,
    /// Theorem 4.1 upper bound.
    pub upper_bound: f64,
    /// The continuum first-best reference.
    pub first_best: f64,
}

/// The full Fig. 6 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// One point per value of `m`.
    pub points: Vec<Fig6Point>,
    /// The effort function used.
    pub psi: Quadratic,
    /// The model parameters used.
    pub params: ModelParams,
}

impl Fig6Result {
    /// Renders the series as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "m".into(),
            "lower bound".into(),
            "achieved".into(),
            "upper bound".into(),
            "first best".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.m.to_string(),
                fmt_f(p.lower_bound),
                fmt_f(p.achieved),
                fmt_f(p.upper_bound),
                fmt_f(p.first_best),
            ]);
        }
        t
    }
}

/// Runs E1 with the default single-worker configuration: the honest-class
/// effort function of the synthetic trace, `w = 1`, and an interior
/// trade-off (`μ = 1.5`, `β = 1`) so `k_opt` is away from the boundary.
///
/// The paper's absolute setting (`μ = 10`) presumes its trace's fitted
/// feedback scale; with the synthetic scale the same interior-optimum
/// geometry arises at `μ = 1.5` (see EXPERIMENTS.md).
///
/// # Errors
///
/// Propagates construction errors (none for the default inputs).
pub fn run(ms: &[usize]) -> Result<Fig6Result, CoreError> {
    let psi = Quadratic::new(-0.03, 2.0, 1.0);
    let params = ModelParams {
        mu: 1.5,
        omega: 0.0,
        ..ModelParams::default()
    };
    let y_max = 10.0;
    let weight = 1.0;
    let first_best = first_best_utility(weight, &params, &psi, y_max, 20_000)?;

    let mut points = Vec::with_capacity(ms.len());
    for &m in ms {
        let disc = Discretization::covering(m, y_max)?;
        let built = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(weight)
            .build()?;
        let Some((lower, upper)) = built.utility_bounds() else {
            return Err(CoreError::InvalidContract(
                "honest non-zero contract is missing utility bounds".into(),
            ));
        };
        points.push(Fig6Point {
            m,
            lower_bound: lower,
            achieved: built.requester_utility(),
            upper_bound: upper,
            first_best,
        });
    }
    Ok(Fig6Result { points, psi, params })
}

/// The default `m` sweep of the figure.
pub const DEFAULT_MS: [usize; 7] = [2, 4, 8, 16, 32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_holds_at_every_m() {
        let result = run(&DEFAULT_MS).unwrap();
        assert_eq!(result.points.len(), DEFAULT_MS.len());
        for p in &result.points {
            assert!(
                p.lower_bound <= p.achieved + 1e-9,
                "m={}: lower {} > achieved {}",
                p.m,
                p.lower_bound,
                p.achieved
            );
            assert!(
                p.achieved <= p.upper_bound + 1e-9,
                "m={}: achieved {} > upper {}",
                p.m,
                p.achieved,
                p.upper_bound
            );
            assert!(p.achieved <= p.first_best + 1e-6);
        }
    }

    #[test]
    fn achieved_approaches_upper_bound() {
        // The figure's visual: the gap (upper - achieved) shrinks with m.
        let result = run(&DEFAULT_MS).unwrap();
        let first_gap = result.points[0].upper_bound - result.points[0].achieved;
        let last = result.points.last().unwrap();
        let last_gap = last.upper_bound - last.achieved;
        assert!(
            last_gap < 0.35 * first_gap,
            "gap did not shrink: first {first_gap}, last {last_gap}"
        );
        // And the last point is near the first best.
        assert!(last.achieved > 0.95 * last.first_best);
    }

    #[test]
    fn table_renders_all_rows() {
        let result = run(&[4, 8]).unwrap();
        let t = result.table();
        assert_eq!(t.len(), 2);
        assert!(t.to_string().contains("upper bound"));
    }
}
