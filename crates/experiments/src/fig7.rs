//! E3 — **Fig. 7**: average effort level and average feedback of the
//! three worker classes. The paper's observation: effort levels are
//! similar across classes, but collusive workers' feedback is much
//! higher (mutual upvoting inside communities).

use crate::render::fmt_f;
use crate::{ExperimentScale, TextTable};
use dcc_trace::{TraceDataset, TraceSummary, WorkerClass};

/// The Fig. 7 reproduction: per-class mean effort and mean feedback.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// `(class, mean effort, mean feedback)` in Honest / NCM / CM order.
    pub rows: Vec<(WorkerClass, f64, f64)>,
}

impl Fig7Result {
    /// Renders the two bar groups as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "class".into(),
            "avg effort".into(),
            "avg feedback".into(),
        ]);
        for (class, eff, fb) in &self.rows {
            t.row(vec![class.to_string(), fmt_f(*eff), fmt_f(*fb)]);
        }
        t
    }

    /// Mean feedback of a class.
    pub fn feedback_of(&self, class: WorkerClass) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == class).map(|r| r.2)
    }

    /// Mean effort of a class.
    pub fn effort_of(&self, class: WorkerClass) -> Option<f64> {
        self.rows.iter().find(|r| r.0 == class).map(|r| r.1)
    }
}

/// Runs E3 on an existing trace.
pub fn run_on(trace: &TraceDataset) -> Fig7Result {
    let summary = TraceSummary::of(trace);
    let rows = WorkerClass::ALL
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            let (eff, fb) = summary.class_means[i];
            (class, eff, fb)
        })
        .collect();
    Fig7Result { rows }
}

/// Runs E3 at the given scale and seed.
pub fn run(scale: ExperimentScale, seed: u64) -> Fig7Result {
    run_on(&scale.generate(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collusive_feedback_dominates_efforts_similar() {
        let r = run(ExperimentScale::Small, crate::DEFAULT_SEED);
        let honest_fb = r.feedback_of(WorkerClass::Honest).unwrap();
        let ncm_fb = r.feedback_of(WorkerClass::NonCollusiveMalicious).unwrap();
        let cm_fb = r.feedback_of(WorkerClass::CollusiveMalicious).unwrap();
        assert!(cm_fb > 1.3 * honest_fb, "cm {cm_fb} vs honest {honest_fb}");
        assert!(cm_fb > 1.3 * ncm_fb, "cm {cm_fb} vs ncm {ncm_fb}");
        // Efforts are the same order of magnitude.
        let honest_eff = r.effort_of(WorkerClass::Honest).unwrap();
        let cm_eff = r.effort_of(WorkerClass::CollusiveMalicious).unwrap();
        assert!(cm_eff > 0.4 * honest_eff && cm_eff < 2.5 * honest_eff);
    }

    #[test]
    fn table_has_three_rows() {
        let r = run(ExperimentScale::Small, 9);
        assert_eq!(r.table().len(), 3);
    }
}
