use std::fmt;

/// A minimal fixed-width text table for experiment output.
///
/// # Example
///
/// ```
/// use dcc_experiments::TextTable;
///
/// let mut t = TextTable::new(vec!["m".into(), "utility".into()]);
/// t.row(vec!["10".into(), "3.25".into()]);
/// assert!(t.to_string().contains("utility"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows). Cells containing commas
    /// or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 4 significant decimals for table cells.
pub(crate) fn fmt_f(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = TextTable::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into()]);
        let s = t.to_string();
        assert!(s.contains("a"));
        assert!(s.contains("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn fmt_f_four_decimals() {
        assert_eq!(fmt_f(1.23456), "1.2346");
    }

    #[test]
    fn csv_escapes_and_renders() {
        let mut t = TextTable::new(vec!["name".into(), "note".into()]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["quoted \"x\"".into(), "fine".into()]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "name,note\nplain,\"a,b\"\n\"quoted \"\"x\"\"\",fine\n"
        );
    }
}
