//! Property-based tests for the numeric substrate.

// Test code may panic freely; helpers outside `#[test]` fns miss
// clippy.toml's in-tests exemption, so allow at file scope.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_numerics::{
    bisect, norm_of_residuals, percentile, polyfit, solve_cholesky, solve_gaussian, Matrix,
    PiecewiseLinear, Quadratic,
};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-100.0f64..100.0).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// Gaussian elimination solves random diagonally-dominant systems.
    #[test]
    fn gaussian_solves_diagonally_dominant(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 4),
            4
        ),
        b in proptest::collection::vec(small_f64(), 4),
    ) {
        let mut m = Matrix::zeros(4, 4).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                m[(i, j)] = rows[i][j];
            }
            // Diagonal dominance guarantees nonsingularity.
            m[(i, i)] = 10.0 + rows[i][i].abs();
        }
        let x = solve_gaussian(&m, &b).unwrap();
        let ax = m.mul_vec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    /// Cholesky agrees with Gaussian elimination on SPD systems A = BᵀB + I.
    #[test]
    fn cholesky_matches_gaussian(
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 3),
            3
        ),
        b in proptest::collection::vec(small_f64(), 3),
    ) {
        let bmat = Matrix::from_rows(&[&rows[0], &rows[1], &rows[2]]).unwrap();
        let mut spd = bmat.transpose().mul(&bmat).unwrap();
        for i in 0..3 {
            spd[(i, i)] += 1.0;
        }
        let xc = solve_cholesky(&spd, &b).unwrap();
        let xg = solve_gaussian(&spd, &b).unwrap();
        for (c, g) in xc.iter().zip(&xg) {
            prop_assert!((c - g).abs() < 1e-6, "cholesky {c} vs gaussian {g}");
        }
    }

    /// polyfit on exactly-polynomial data recovers near-zero residual.
    #[test]
    fn polyfit_exact_data_zero_residual(
        c0 in -5.0f64..5.0,
        c1 in -5.0f64..5.0,
        c2 in -5.0f64..5.0,
    ) {
        let xs: Vec<f64> = (0..25).map(|i| i as f64 * 0.25 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let p = polyfit(&xs, &ys, 2).unwrap();
        prop_assert!(norm_of_residuals(&p, &xs, &ys).unwrap() < 1e-6);
    }

    /// Increasing the fit degree never increases the norm of residuals
    /// (the monotonicity that makes Table III meaningful).
    #[test]
    fn polyfit_residual_monotone_in_degree(
        seed_ys in proptest::collection::vec(-1.0f64..1.0, 30),
    ) {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs.iter().zip(&seed_ys).map(|(&x, &n)| x.sqrt() + n).collect();
        let mut prev = f64::INFINITY;
        for deg in 0..=4 {
            let p = polyfit(&xs, &ys, deg).unwrap();
            let nor = norm_of_residuals(&p, &xs, &ys).unwrap();
            prop_assert!(nor <= prev + 1e-7);
            prev = nor;
        }
    }

    /// Piecewise-linear evaluation stays within the knot value hull and
    /// monotone knot values imply a monotone function.
    #[test]
    fn piecewise_monotone_eval_bounded(
        deltas in proptest::collection::vec(0.0f64..5.0, 2..12),
        x in -10.0f64..60.0,
    ) {
        let mut vs = vec![0.0f64];
        for d in &deltas {
            vs.push(vs.last().unwrap() + d);
        }
        let xs: Vec<f64> = (0..vs.len()).map(|i| i as f64).collect();
        let f = PiecewiseLinear::new(xs, vs.clone()).unwrap();
        prop_assert!(f.is_monotone_nondecreasing());
        let v = f.eval(x);
        prop_assert!(v >= vs[0] - 1e-9 && v <= *vs.last().unwrap() + 1e-9);
        // Monotone in the argument as well.
        prop_assert!(f.eval(x) <= f.eval(x + 1.0) + 1e-9);
    }

    /// Quadratic inverse_derivative is a true inverse on concave quadratics.
    #[test]
    fn quadratic_inverse_derivative_roundtrip(
        r2 in -3.0f64..-0.01,
        r1 in 0.1f64..10.0,
        r0 in -5.0f64..5.0,
        y in 0.0f64..10.0,
    ) {
        let q = Quadratic::new(r2, r1, r0);
        let s = q.derivative_at(y);
        let back = q.inverse_derivative(s).unwrap();
        prop_assert!((back - y).abs() < 1e-8);
    }

    /// inverse_on_increasing inverts eval on the increasing branch.
    #[test]
    fn quadratic_inverse_eval_roundtrip(
        r2 in -3.0f64..-0.01,
        r1 in 1.0f64..10.0,
        r0 in 0.0f64..5.0,
        frac in 0.0f64..0.99,
    ) {
        let q = Quadratic::new(r2, r1, r0);
        let peak = q.peak().unwrap();
        let y = frac * peak;
        let v = q.eval(y);
        let back = q.inverse_on_increasing(v).unwrap();
        prop_assert!((back - y).abs() < 1e-6, "y={y} back={back}");
    }

    /// Percentile is monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(
        data in proptest::collection::vec(small_f64(), 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let vlo = percentile(&data, lo).unwrap();
        let vhi = percentile(&data, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-9);
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(vlo >= min - 1e-9 && vhi <= max + 1e-9);
    }

    /// Bisection finds the root of any monotone cubic with a sign change.
    #[test]
    fn bisect_monotone_cubic(shift in -10.0f64..10.0) {
        let f = move |x: f64| x * x * x + x - shift;
        let root = bisect(f, -20.0, 20.0, 1e-10).unwrap();
        prop_assert!(f(root).abs() < 1e-6);
    }
}
