use crate::NumericsError;
use std::fmt;

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on an empty sample.
pub fn mean(data: &[f64]) -> Result<f64, NumericsError> {
    if data.is_empty() {
        return Err(NumericsError::InvalidArgument(
            "mean of empty sample".into(),
        ));
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population variance of a sample.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on an empty sample.
pub fn variance(data: &[f64]) -> Result<f64, NumericsError> {
    let m = mean(data)?;
    Ok(data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Population standard deviation of a sample.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on an empty sample.
pub fn std_dev(data: &[f64]) -> Result<f64, NumericsError> {
    Ok(variance(data)?.sqrt())
}

/// The `p`-th percentile (0–100) of a sample, using linear interpolation
/// between order statistics — matching the convention used for the
/// 5th/95th-percentile compensation series in Fig. 8(b).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on an empty sample or if
/// `p` is outside `[0, 100]` or non-finite.
pub fn percentile(data: &[f64], p: f64) -> Result<f64, NumericsError> {
    if data.is_empty() {
        return Err(NumericsError::InvalidArgument(
            "percentile of empty sample".into(),
        ));
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(NumericsError::InvalidArgument(format!(
            "percentile {p} outside [0, 100]"
        )));
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let t = rank - lo as f64;
        Ok(sorted[lo] + t * (sorted[hi] - sorted[lo]))
    }
}

/// Fixed-width histogram of a sample over `[lo, hi)` with `bins` buckets;
/// values outside the range are clamped into the edge buckets.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `bins == 0` or
/// `lo >= hi`.
pub fn histogram(data: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Vec<usize>, NumericsError> {
    if bins == 0 {
        return Err(NumericsError::InvalidArgument("zero histogram bins".into()));
    }
    if lo >= hi {
        return Err(NumericsError::InvalidArgument(format!(
            "empty histogram range [{lo}, {hi})"
        )));
    }
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in data {
        let idx = ((x - lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        counts[idx] += 1;
    }
    Ok(counts)
}

/// Descriptive summary of a sample: count, mean, standard deviation and
/// the percentiles reported in the paper's Fig. 8(b).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] on an empty sample.
    pub fn of(data: &[f64]) -> Result<Self, NumericsError> {
        Ok(Summary {
            count: data.len(),
            mean: mean(data)?,
            std_dev: std_dev(data)?,
            min: data.iter().copied().fold(f64::INFINITY, f64::min),
            p5: percentile(data, 5.0)?,
            median: percentile(data, 50.0)?,
            p95: percentile(data, 95.0)?,
            max: data.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p5={:.4} med={:.4} p95={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.p5, self.median, self.p95, self.max
        )
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data).unwrap(), 5.0);
        assert_eq!(variance(&data).unwrap(), 4.0);
        assert_eq!(std_dev(&data).unwrap(), 2.0);
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(percentile(&[], 50.0).is_err());
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&data, 50.0).unwrap(), 2.5);
        // 25% of the way through 3 gaps = rank 0.75 -> 1.75
        assert_eq!(percentile(&data, 25.0).unwrap(), 1.75);
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&data, 50.0).unwrap(), 5.0);
    }

    #[test]
    fn percentile_range_checked() {
        assert!(percentile(&[1.0], -0.1).is_err());
        assert!(percentile(&[1.0], 100.1).is_err());
        assert!(percentile(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 5.0).unwrap(), 42.0);
        assert_eq!(percentile(&[42.0], 95.0).unwrap(), 42.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let data = [-1.0, 0.0, 0.5, 1.5, 2.5, 99.0];
        let h = histogram(&data, 0.0, 3.0, 3).unwrap();
        assert_eq!(h, vec![3, 1, 2]);
        assert_eq!(h.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn histogram_validates() {
        assert!(histogram(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(histogram(&[1.0], 1.0, 1.0, 2).is_err());
    }

    #[test]
    fn summary_consistency() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p5 >= s.min && s.p5 <= s.median);
        assert!(s.p95 <= s.max && s.p95 >= s.median);
        assert!(!s.to_string().is_empty());
    }
}
