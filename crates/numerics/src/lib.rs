//! # dcc-numerics
//!
//! Self-contained numeric substrate for the `dyncontract` workspace.
//!
//! The ICDCS 2017 contract-design paper leans on a handful of numeric
//! primitives that its authors took from MATLAB: polynomial least-squares
//! fitting with a *norm of residuals* goodness measure (§IV-B, Table III),
//! piecewise-linear contract functions (§III-A, Eq. 6), quadratic effort
//! functions `ψ(y) = r₂y² + r₁y + r₀` (Eq. 19) and descriptive statistics
//! over compensation distributions (Fig. 8b). This crate implements all of
//! them from scratch on top of a small dense linear-algebra kernel.
//!
//! ## Example
//!
//! ```
//! use dcc_numerics::{polyfit, Quadratic};
//!
//! # fn main() -> Result<(), dcc_numerics::NumericsError> {
//! // Fit a quadratic to noisy samples of y = -x^2 + 3x + 1.
//! let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
//! let truth = Quadratic::new(-1.0, 3.0, 1.0);
//! let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
//! let fit = polyfit(&xs, &ys, 2)?;
//! assert!((fit.coefficient(2) - -1.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmp;
mod error;
mod incremental;
mod json;
mod linsolve;
mod matrix;
mod piecewise;
mod polyfit;
mod qr;
mod quadratic;
mod roots;
mod stats;

pub use cmp::{approx_eq, exact_eq, exact_ne};
pub use error::NumericsError;
pub use incremental::IncrementalQuadraticFit;
pub use json::{Json, JsonError};
pub use linsolve::{solve_cholesky, solve_gaussian};
pub use matrix::Matrix;
pub use piecewise::PiecewiseLinear;
pub use polyfit::{norm_of_residuals, polyfit, Polynomial};
pub use qr::solve_least_squares;
pub use quadratic::Quadratic;
pub use roots::{bisect, newton};
pub use stats::{histogram, mean, percentile, std_dev, variance, Summary};
