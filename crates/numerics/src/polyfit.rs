use crate::{solve_cholesky, solve_gaussian, Matrix, NumericsError};
use std::fmt;

/// A polynomial `c₀ + c₁x + c₂x² + …` stored by ascending-degree
/// coefficients.
///
/// Produced by [`polyfit`]; also constructible directly for tests and
/// synthetic ground truths.
///
/// # Example
///
/// ```
/// use dcc_numerics::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, 0.0, 2.0]); // 1 + 2x^2
/// assert_eq!(p.eval(3.0), 19.0);
/// assert_eq!(p.degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-degree coefficients.
    ///
    /// An empty coefficient list is treated as the zero polynomial.
    pub fn new(coeffs: Vec<f64>) -> Self {
        if coeffs.is_empty() {
            Polynomial { coeffs: vec![0.0] }
        } else {
            Polynomial { coeffs }
        }
    }

    /// Evaluates the polynomial at `x` using Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// The coefficient of `x^k`, or `0.0` if `k` exceeds the stored degree.
    pub fn coefficient(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Ascending-degree coefficient slice.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The nominal degree (length of the coefficient vector minus one;
    /// trailing zeros are not trimmed).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The first derivative as a new polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if crate::cmp::exact_eq(c, 0.0) && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}*x")?,
                _ => write!(f, "{c}*x^{k}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Least-squares polynomial fit of the given `degree` to points
/// `(xs[i], ys[i])` — the from-scratch equivalent of MATLAB's `polyfit`
/// used in §IV-B of the paper.
///
/// Low degrees (≤ 3) solve the normal equations `(VᵀV)c = Vᵀy`
/// (Vandermonde `V`) via Cholesky, falling back to pivoted Gaussian
/// elimination if round-off makes the normal matrix indefinite; higher
/// degrees switch to Householder QR on `V` directly
/// ([`crate::solve_least_squares`]), which avoids squaring the
/// Vandermonde condition number.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] if `xs` and `ys` differ in length.
/// - [`NumericsError::InsufficientData`] if fewer than `degree + 1` points
///   are supplied.
/// - [`NumericsError::InvalidArgument`] if any coordinate is non-finite.
/// - [`NumericsError::SingularSystem`] if the fit is degenerate (e.g. all
///   `xs` identical with `degree >= 1`).
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} y-values", xs.len()),
            actual: format!("{} y-values", ys.len()),
        });
    }
    let n = degree + 1;
    if xs.len() < n {
        return Err(NumericsError::InsufficientData {
            points: xs.len(),
            required: n,
        });
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidArgument(
            "polyfit inputs must be finite".into(),
        ));
    }

    if degree > 3 {
        // High degrees: QR on the Vandermonde matrix itself.
        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|&x| {
                let mut row = Vec::with_capacity(n);
                let mut xp = 1.0;
                for _ in 0..n {
                    row.push(xp);
                    xp *= x;
                }
                row
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let vandermonde = Matrix::from_rows(&refs)?;
        let coeffs = crate::solve_least_squares(&vandermonde, ys)?;
        return Ok(Polynomial::new(coeffs));
    }

    // Normal matrix entries are power sums: (VᵀV)[i][j] = Σ x^(i+j).
    let mut power_sums = vec![0.0f64; 2 * degree + 1];
    let mut rhs = vec![0.0f64; n];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut xp = 1.0;
        for (j, sum) in power_sums.iter_mut().enumerate() {
            *sum += xp;
            if j < n {
                rhs[j] += xp * y;
            }
            xp *= x;
        }
    }

    let mut normal = Matrix::zeros(n, n)?;
    for i in 0..n {
        for j in 0..n {
            normal[(i, j)] = power_sums[i + j];
        }
    }

    let coeffs = match solve_cholesky(&normal, &rhs) {
        Ok(c) => c,
        Err(NumericsError::NotPositiveDefinite) => solve_gaussian(&normal, &rhs)?,
        Err(e) => return Err(e),
    };
    Ok(Polynomial::new(coeffs))
}

/// The *norm of residuals* of a fitted polynomial over the data it was
/// fitted to: `sqrt(Σ (p(xᵢ) − yᵢ)²)` — the NoR measure reported in
/// Table III of the paper.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] if `xs` and `ys` differ in
/// length.
pub fn norm_of_residuals(p: &Polynomial, xs: &[f64], ys: &[f64]) -> Result<f64, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} y-values", xs.len()),
            actual: format!("{} y-values", ys.len()),
        });
    }
    Ok(xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let r = p.eval(x) - y;
            r * r
        })
        .sum::<f64>()
        .sqrt())
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner_matches_naive() {
        let p = Polynomial::new(vec![2.0, -1.0, 0.5, 3.0]);
        for x in [-2.0, -0.5, 0.0, 1.0, 2.5] {
            let naive = 2.0 - x + 0.5 * x * x + 3.0 * x * x * x;
            assert!((p.eval(x) - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_coefficients_is_zero_polynomial() {
        let p = Polynomial::new(vec![]);
        assert_eq!(p.eval(5.0), 0.0);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn derivative_of_cubic() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0, 4.0]);
        let d = p.derivative();
        assert_eq!(d.coefficients(), &[2.0, 6.0, 12.0]);
        assert_eq!(Polynomial::new(vec![7.0]).derivative().coefficients(), &[0.0]);
    }

    #[test]
    fn exact_quadratic_recovered() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3 - 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.5 - 2.0 * x + 0.75 * x * x).collect();
        let p = polyfit(&xs, &ys, 2).unwrap();
        assert!((p.coefficient(0) - 1.5).abs() < 1e-9);
        assert!((p.coefficient(1) + 2.0).abs() < 1e-9);
        assert!((p.coefficient(2) - 0.75).abs() < 1e-9);
        assert!(norm_of_residuals(&p, &xs, &ys).unwrap() < 1e-8);
    }

    #[test]
    fn overfitting_degree_still_exact() {
        // Fitting a line with a cubic must reproduce the line.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 1.0).collect();
        let p = polyfit(&xs, &ys, 3).unwrap();
        assert!(norm_of_residuals(&p, &xs, &ys).unwrap() < 1e-6);
    }

    #[test]
    fn higher_degree_never_increases_residual() {
        // Deterministic pseudo-noise so the data is not exactly polynomial.
        let xs: Vec<f64> = (0..60).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (0.7 * x).sin() + 0.05 * ((i * 2654435761usize) % 101) as f64 / 101.0)
            .collect();
        let mut prev = f64::INFINITY;
        for deg in 1..=6 {
            let p = polyfit(&xs, &ys, deg).unwrap();
            let nor = norm_of_residuals(&p, &xs, &ys).unwrap();
            assert!(
                nor <= prev + 1e-9,
                "degree {deg} residual {nor} exceeds degree {} residual {prev}",
                deg - 1
            );
            prev = nor;
        }
    }

    #[test]
    fn insufficient_points_rejected() {
        assert!(matches!(
            polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).unwrap_err(),
            NumericsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(polyfit(&[1.0, 2.0, 3.0], &[1.0, 2.0], 1).is_err());
        let p = Polynomial::new(vec![0.0]);
        assert!(norm_of_residuals(&p, &[1.0], &[]).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(polyfit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0], 1).is_err());
        assert!(polyfit(&[1.0, 2.0, 3.0], &[1.0, f64::INFINITY, 3.0], 1).is_err());
    }

    #[test]
    fn degenerate_xs_singular() {
        let err = polyfit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1).unwrap_err();
        assert!(matches!(
            err,
            NumericsError::SingularSystem | NumericsError::NotPositiveDefinite
        ));
    }

    #[test]
    fn constant_fit_is_mean() {
        let ys = [1.0, 2.0, 3.0, 4.0];
        let xs = [10.0, 20.0, 30.0, 40.0];
        let p = polyfit(&xs, &ys, 0).unwrap();
        assert!((p.coefficient(0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Polynomial::new(vec![1.0, 2.0]).to_string(), "1 + 2*x");
        assert_eq!(Polynomial::new(vec![0.0, 0.0, 3.0]).to_string(), "3*x^2");
        assert_eq!(Polynomial::new(vec![0.0]).to_string(), "0");
    }
}
