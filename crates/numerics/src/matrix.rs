use crate::NumericsError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A small dense row-major matrix of `f64`.
///
/// This is deliberately minimal: the workspace only needs the operations
/// required by least-squares fitting (transpose, multiply, matrix-vector
/// products) on matrices with at most a few thousand rows and a handful of
/// columns. It is not a general-purpose linear-algebra library.
///
/// # Example
///
/// ```
/// use dcc_numerics::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let t = a.transpose();
/// assert_eq!(t[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if either dimension is 0.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, NumericsError> {
        if rows == 0 || cols == 0 {
            return Err(NumericsError::InvalidArgument(
                "matrix dimensions must be nonzero".into(),
            ));
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `n == 0`.
    pub fn identity(n: usize) -> Result<Self, NumericsError> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] on empty input and
    /// [`NumericsError::DimensionMismatch`] on ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericsError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericsError::InvalidArgument(
                "matrix must have at least one row and one column".into(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(NumericsError::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    actual: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * t.cols + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] unless
    /// `self.cols() == other.rows()`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, NumericsError> {
        if self.cols != other.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                actual: format!("rhs with {} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols)?;
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if crate::cmp::exact_eq(a, 0.0) {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.data[k * other.cols + c];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] unless
    /// `v.len() == self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if v.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                actual: format!("vector of length {}", v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, &vc) in v.iter().enumerate() {
                acc += self.data[r * self.cols + c] * vc;
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Returns a copy of row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3).unwrap();
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z[(1, 2)], 0.0);

        let i = Matrix::identity(3).unwrap();
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::identity(0).is_err());
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_empty_rejected() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty_row: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty_row]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn multiply_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn multiply_by_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let i = Matrix::identity(3).unwrap();
        assert_eq!(a.mul(&i).unwrap(), a);
    }

    #[test]
    fn multiply_dimension_mismatch() {
        let a = Matrix::zeros(2, 3).unwrap();
        let b = Matrix::zeros(2, 3).unwrap();
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn mul_vec_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn mul_vec_dimension_mismatch() {
        let a = Matrix::zeros(2, 3).unwrap();
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn get_checks_bounds() {
        let a = Matrix::identity(2).unwrap();
        assert_eq!(a.get(0, 0), Some(1.0));
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.get(0, 2), None);
    }

    #[test]
    fn row_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2).unwrap();
        assert!(!format!("{a}").is_empty());
    }
}
