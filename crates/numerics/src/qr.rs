use crate::{Matrix, NumericsError};

/// Solves the least-squares problem `min ‖A·x − b‖₂` for a tall matrix
/// `A` (rows ≥ cols) by Householder QR factorization.
///
/// This is numerically far better conditioned than the normal equations
/// `(AᵀA)x = Aᵀb`: the normal matrix squares the condition number, which
/// ruins high-degree polynomial fits (Vandermonde matrices are already
/// ill-conditioned). [`crate::polyfit`] uses this path.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] if `b` has the wrong length or
///   `A` is wider than tall.
/// - [`NumericsError::SingularSystem`] if `A` is (numerically) rank
///   deficient.
///
/// # Example
///
/// ```
/// use dcc_numerics::{solve_least_squares, Matrix};
///
/// # fn main() -> Result<(), dcc_numerics::NumericsError> {
/// // Overdetermined: fit y = c0 + c1 x to three points on a line.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let x = solve_least_squares(&a, &[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    let rows = a.rows();
    let cols = a.cols();
    if b.len() != rows {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("rhs of length {rows}"),
            actual: format!("rhs of length {}", b.len()),
        });
    }
    if rows < cols {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("at least {cols} rows"),
            actual: format!("{rows} rows"),
        });
    }

    // Working copies: r (row-major) becomes R; y carries Qᵀb.
    let mut r: Vec<f64> = (0..rows)
        .flat_map(|i| a.row(i))
        .collect();
    let mut y = b.to_vec();

    let scale = r.iter().fold(0.0f64, |acc, &v| acc.max(v.abs())).max(1.0);

    for col in 0..cols {
        // Householder vector for the subcolumn r[col.., col].
        let mut norm = 0.0;
        for row in col..rows {
            norm += r[row * cols + col] * r[row * cols + col];
        }
        let norm = norm.sqrt();
        if norm < 1e-13 * scale {
            return Err(NumericsError::SingularSystem);
        }
        let head = r[col * cols + col];
        let alpha = if head >= 0.0 { -norm } else { norm };
        // v = x - alpha * e1 (stored in a scratch vector).
        let mut v = vec![0.0; rows - col];
        v[0] = head - alpha;
        for row in (col + 1)..rows {
            v[row - col] = r[row * cols + col];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv < 1e-300 {
            continue; // Column already triangular.
        }

        // Apply H = I - 2 v vᵀ / (vᵀv) to the remaining columns of r.
        for j in col..cols {
            let mut dot = 0.0;
            for row in col..rows {
                dot += v[row - col] * r[row * cols + j];
            }
            let factor = 2.0 * dot / vtv;
            for row in col..rows {
                r[row * cols + j] -= factor * v[row - col];
            }
        }
        // ... and to y.
        let mut dot = 0.0;
        for row in col..rows {
            dot += v[row - col] * y[row];
        }
        let factor = 2.0 * dot / vtv;
        for row in col..rows {
            y[row] -= factor * v[row - col];
        }
    }

    // Back substitution on the top cols×cols triangle.
    let mut x = vec![0.0; cols];
    for i in (0..cols).rev() {
        let mut acc = y[i];
        for j in (i + 1)..cols {
            acc -= r[i * cols + j] * x[j];
        }
        let diag = r[i * cols + i];
        if diag.abs() < 1e-13 * scale {
            return Err(NumericsError::SingularSystem);
        }
        x[i] = acc / diag;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_gaussian;

    #[test]
    fn square_system_matches_gaussian() {
        let a = Matrix::from_rows(&[
            &[4.0, -2.0, 1.0],
            &[-2.0, 4.0, -2.0],
            &[1.0, -2.0, 4.0],
        ])
        .unwrap();
        let b = [11.0, -16.0, 17.0];
        let qr = solve_least_squares(&a, &b).unwrap();
        let ge = solve_gaussian(&a, &b).unwrap();
        for (x, y) in qr.iter().zip(&ge) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn overdetermined_consistent_system() {
        // Exactly consistent overdetermined: solution is exact.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]).unwrap();
        let b: Vec<f64> = [1.0, 2.0, 3.0, 4.0].iter().map(|x| 5.0 + 2.0 * x).collect();
        let x = solve_least_squares(&a, &b).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal() {
        // For inconsistent systems, the residual must be orthogonal to
        // the column space (the defining property of least squares).
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [0.0, 1.0, 1.0, 3.0];
        let x = solve_least_squares(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let residual: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        for col in 0..2 {
            let dot: f64 = (0..4).map(|row| a[(row, col)] * residual[row]).sum();
            assert!(dot.abs() < 1e-10, "residual not orthogonal to column {col}");
        }
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(
            solve_least_squares(&a, &[1.0, 2.0, 3.0]).unwrap_err(),
            NumericsError::SingularSystem
        );
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap(); // wide
        assert!(solve_least_squares(&a, &[1.0]).is_err());
        let tall = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(solve_least_squares(&tall, &[1.0]).is_err());
    }

    #[test]
    fn better_conditioned_than_normal_equations() {
        // A Vandermonde system with large x values: the normal equations
        // square the condition number; QR must still recover the exact
        // polynomial coefficients.
        let xs: Vec<f64> = (0..40).map(|i| 50.0 + i as f64).collect();
        let truth = [3.0, -0.5, 0.01, -0.0002];
        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|&x| (0..4).map(|k| x.powi(k)).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let b: Vec<f64> = xs
            .iter()
            .map(|&x| truth.iter().enumerate().map(|(k, c)| c * x.powi(k as i32)).sum())
            .collect();
        let x = solve_least_squares(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&truth) {
            assert!(
                (got - want).abs() < 1e-6 * want.abs().max(1e-3),
                "QR-recovered {got} vs {want}"
            );
        }
    }
}
