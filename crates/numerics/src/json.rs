//! A minimal, dependency-free JSON value with exact `f64` round-tripping.
//!
//! The build environment has no access to crates.io, so checkpoints,
//! fault plans, and adversary plans cannot use `serde`; this module
//! hand-rolls the small JSON subset they need. Two properties matter
//! for bit-exact resume:
//!
//! - finite `f64`s are written with Rust's shortest-round-trip formatter
//!   and therefore parse back to the identical bit pattern;
//! - non-finite values are encoded as the strings `"NaN"`, `"Infinity"`,
//!   `"-Infinity"` (JSON has no non-finite numbers), and `u64`s (RNG
//!   words) as decimal strings (JSON numbers are doubles and would lose
//!   bits above 2^53).
//!
//! The module lives at the bottom of the workspace (this crate has no
//! internal dependencies) so every layer — including `dcc-trace`, which
//! sits below `dcc-core` — can share the one parser. Higher layers
//! convert [`JsonError`] into their own error enums.

use std::fmt::Write as _;

/// A JSON parse failure: byte offset plus a short description.
///
/// Deliberately self-contained (no dependency on any workspace error
/// enum) so the parser can live at the bottom of the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Encodes an `f64`, mapping non-finite values onto their string
    /// encodings.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else if x.is_nan() {
            Json::Str("NaN".into())
        } else if x > 0.0 {
            Json::Str("Infinity".into())
        } else {
            Json::Str("-Infinity".into())
        }
    }

    /// Encodes a `u64` exactly (as a decimal string).
    pub fn u64(x: u64) -> Json {
        Json::Str(x.to_string())
    }

    /// Encodes a `usize` (safe as a JSON number — indices and rounds stay
    /// far below 2^53).
    pub fn idx(x: usize) -> Json {
        Json::Num(x as f64)
    }

    /// Decodes an `f64`, accepting both numbers and the non-finite
    /// string encodings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// Decodes an exact `u64` from its decimal-string encoding.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Decodes a nonnegative integer index.
    pub fn as_idx(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && crate::exact_eq(x.fract(), 0.0) => Some(*x as usize),
            _ => None,
        }
    }

    /// The boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A member of this object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                // Rust's default f64 formatting is the shortest string
                // that round-trips, so parsing recovers the exact bits.
                let _ = write!(out, "{x}");
                // Ensure integral floats still look like numbers when
                // read by stricter tooling ("1" is valid JSON already,
                // so nothing else to do).
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Compact JSON serialization (`doc.to_string()` via the `ToString`
/// blanket impl).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(pos: usize, message: &str) -> JsonError {
    JsonError {
        pos,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{literal}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed for our payloads;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let Some(c) = rest.chars().next() else {
                    return Err(err(*pos, "unterminated string"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(err(start, "expected a value"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err(start, "invalid number"))?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b".into(), Json::Bool(true)),
            ("s".into(), Json::Str("line\n\"quoted\"\t".into())),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            std::f64::consts::PI,
            1e-300,
            -2.5e300,
            f64::MIN_POSITIVE,
            5e-324,
            0.0,
            -0.0,
            123_456_789.123_456_79,
        ] {
            let text = Json::num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn non_finite_values_use_string_encoding() {
        for (x, s) in [
            (f64::NAN, "\"NaN\""),
            (f64::INFINITY, "\"Infinity\""),
            (f64::NEG_INFINITY, "\"-Infinity\""),
        ] {
            let text = Json::num(x).to_string();
            assert_eq!(text, s);
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn u64_is_exact_beyond_2_pow_53() {
        let x = u64::MAX - 12345;
        let text = Json::u64(x).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(x));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "[1]extra"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::parse(" { \"k\" :\n[ 1 , 2 ] }\t").unwrap();
        assert_eq!(doc.get("k").unwrap().as_arr().unwrap().len(), 2);
    }
}
