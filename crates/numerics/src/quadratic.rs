use crate::cmp::exact_eq;
use crate::NumericsError;
use std::fmt;

/// A quadratic function `q(y) = r₂y² + r₁y + r₀`.
///
/// The paper fits workers' effort→feedback response with quadratics
/// (Eq. 19) and the contract algorithm exploits their closed forms:
/// derivative, inverse derivative (Eq. 31) and inverse on the increasing
/// branch. A *valid effort function* in the paper's sense is concave
/// (`r₂ < 0`) and increasing on the discretized effort region.
///
/// # Example
///
/// ```
/// use dcc_numerics::Quadratic;
///
/// let psi = Quadratic::new(-0.5, 4.0, 1.0);
/// assert!(psi.is_concave());
/// assert_eq!(psi.derivative_at(2.0), 2.0);
/// // Effort where marginal feedback equals 2.0:
/// assert_eq!(psi.inverse_derivative(2.0).unwrap(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadratic {
    r2: f64,
    r1: f64,
    r0: f64,
}

impl Quadratic {
    /// Creates `r₂y² + r₁y + r₀`.
    pub fn new(r2: f64, r1: f64, r0: f64) -> Self {
        Quadratic { r2, r1, r0 }
    }

    /// The quadratic coefficient `r₂`.
    pub fn r2(&self) -> f64 {
        self.r2
    }

    /// The linear coefficient `r₁`.
    pub fn r1(&self) -> f64 {
        self.r1
    }

    /// The constant coefficient `r₀`.
    pub fn r0(&self) -> f64 {
        self.r0
    }

    /// Evaluates the quadratic at `y`.
    pub fn eval(&self, y: f64) -> f64 {
        (self.r2 * y + self.r1) * y + self.r0
    }

    /// The derivative `q′(y) = 2r₂y + r₁`.
    pub fn derivative_at(&self, y: f64) -> f64 {
        2.0 * self.r2 * y + self.r1
    }

    /// The (constant) second derivative `2r₂`.
    pub fn second_derivative(&self) -> f64 {
        2.0 * self.r2
    }

    /// `true` iff the quadratic is strictly concave (`r₂ < 0`).
    pub fn is_concave(&self) -> bool {
        self.r2 < 0.0
    }

    /// `true` iff the quadratic is strictly increasing on `[0, y_max]`,
    /// i.e. `q′(y_max) > 0` for a concave quadratic (and `q′(0) > 0` for a
    /// convex one).
    pub fn is_increasing_on(&self, y_max: f64) -> bool {
        if self.r2 <= 0.0 {
            self.derivative_at(y_max) > 0.0
        } else {
            self.derivative_at(0.0) > 0.0
        }
    }

    /// For a concave quadratic, the effort level at which the derivative
    /// vanishes (`−r₁ / 2r₂`): the upper edge of the increasing branch.
    ///
    /// Returns `None` when `r₂ == 0` (a line never peaks).
    pub fn peak(&self) -> Option<f64> {
        if exact_eq(self.r2, 0.0) {
            None
        } else {
            Some(-self.r1 / (2.0 * self.r2))
        }
    }

    /// Inverse of the derivative: the `y` with `q′(y) = slope`
    /// (`ψ′⁻¹` in §IV-C, used by Eq. 31).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] when `r₂ == 0` (the
    /// derivative is constant and not invertible).
    pub fn inverse_derivative(&self, slope: f64) -> Result<f64, NumericsError> {
        if exact_eq(self.r2, 0.0) {
            return Err(NumericsError::InvalidArgument(
                "derivative of a linear function is not invertible".into(),
            ));
        }
        Ok((slope - self.r1) / (2.0 * self.r2))
    }

    /// Inverse of the quadratic on its increasing branch: the `y ≥ branch
    /// start` with `q(y) = value`, used to map feedback knots back to
    /// effort knots (`d_l = ψ(lδ)` inversion).
    ///
    /// For a concave quadratic the increasing branch is `(−∞, peak]`; for a
    /// line it is all of ℝ when `r₁ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `value` is above the
    /// maximum attainable on the increasing branch, or if the function is
    /// constant.
    pub fn inverse_on_increasing(&self, value: f64) -> Result<f64, NumericsError> {
        if exact_eq(self.r2, 0.0) {
            if exact_eq(self.r1, 0.0) {
                return Err(NumericsError::InvalidArgument(
                    "constant function is not invertible".into(),
                ));
            }
            return Ok((value - self.r0) / self.r1);
        }
        // r2 y^2 + r1 y + (r0 - value) = 0
        let disc = self.r1 * self.r1 - 4.0 * self.r2 * (self.r0 - value);
        if disc < 0.0 {
            return Err(NumericsError::InvalidArgument(format!(
                "value {value} is not attained by the quadratic"
            )));
        }
        let sq = disc.sqrt();
        // (-r1 + sq) / (2 r2) selects the increasing-branch root in both
        // curvature cases: for r2 < 0 the division by a negative yields the
        // smaller root (left of the peak), for r2 > 0 the larger root
        // (right of the trough).
        Ok((-self.r1 + sq) / (2.0 * self.r2))
    }
}

impl fmt::Display for Quadratic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*y^2 + {}*y + {}", self.r2, self.r1, self.r0)
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    const PSI: Quadratic = Quadratic {
        r2: -0.5,
        r1: 4.0,
        r0: 1.0,
    };

    #[test]
    fn eval_and_derivative() {
        assert_eq!(PSI.eval(0.0), 1.0);
        assert_eq!(PSI.eval(2.0), -2.0 + 8.0 + 1.0);
        assert_eq!(PSI.derivative_at(0.0), 4.0);
        assert_eq!(PSI.derivative_at(4.0), 0.0);
        assert_eq!(PSI.second_derivative(), -1.0);
    }

    #[test]
    fn concavity_and_monotonicity() {
        assert!(PSI.is_concave());
        assert!(PSI.is_increasing_on(3.9));
        assert!(!PSI.is_increasing_on(4.0));
        let convex = Quadratic::new(0.5, 1.0, 0.0);
        assert!(!convex.is_concave());
        assert!(convex.is_increasing_on(100.0));
    }

    #[test]
    fn peak_location() {
        assert_eq!(PSI.peak(), Some(4.0));
        assert_eq!(Quadratic::new(0.0, 2.0, 1.0).peak(), None);
    }

    #[test]
    fn inverse_derivative_roundtrip() {
        for y in [0.0, 0.5, 1.7, 3.2] {
            let s = PSI.derivative_at(y);
            assert!((PSI.inverse_derivative(s).unwrap() - y).abs() < 1e-12);
        }
        assert!(Quadratic::new(0.0, 1.0, 0.0).inverse_derivative(1.0).is_err());
    }

    #[test]
    fn inverse_on_increasing_roundtrip() {
        for y in [0.0, 1.0, 2.5, 3.99] {
            let q = PSI.eval(y);
            assert!((PSI.inverse_on_increasing(q).unwrap() - y).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_on_increasing_linear() {
        let line = Quadratic::new(0.0, 2.0, 1.0);
        assert!((line.inverse_on_increasing(5.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_on_increasing_convex_branch() {
        let convex = Quadratic::new(1.0, 0.0, 0.0); // y^2, increasing for y>=0... not quite
        // For convex, the increasing branch is [peak, inf); value 4 -> y = -2? No:
        // roots of y^2 = 4 are ±2; the larger root (+2) lies on the increasing branch.
        assert!((convex.inverse_on_increasing(4.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_rejects_unattainable() {
        // Max of PSI is at y=4: value 9. Anything above is unattainable.
        assert!(PSI.inverse_on_increasing(9.1).is_err());
        assert!(Quadratic::new(0.0, 0.0, 1.0).inverse_on_increasing(2.0).is_err());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(PSI.to_string(), "-0.5*y^2 + 4*y + 1");
    }
}
