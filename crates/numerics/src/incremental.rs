use crate::{solve_cholesky, solve_gaussian, Matrix, NumericsError, Quadratic};

/// Incrementally maintained normal equations for a degree-2 least-squares
/// fit — the streaming counterpart of [`crate::polyfit`] with
/// `degree = 2`.
///
/// The fit state is the five power sums `Σ xᵏ` (`k = 0..=4`) and the
/// three moment sums `Σ xᵏ y` (`k = 0..=2`) that [`crate::polyfit`]
/// accumulates internally. Points can be added and removed in O(1);
/// [`IncrementalQuadraticFit::fit`] solves the 3×3 system with the same
/// Cholesky-then-Gaussian ladder as `polyfit`.
///
/// **Bit-exactness contract**: adding points in the same order as the
/// slice passed to `polyfit` produces *identical* sums and therefore an
/// identical solve — `fit()` is bit-for-bit equal to
/// `polyfit(xs, ys, 2)`. After a removal the sums are algebraically equal
/// but no longer bit-identical (floating-point subtraction does not undo
/// addition exactly), so a downdated fit agrees with a fresh fit only to
/// round-off (≈1e-12 relative on well-conditioned data). Callers that
/// need bit-exact output after a mutation should
/// [`IncrementalQuadraticFit::reset_from`] the surviving points instead.
///
/// # Example
///
/// ```
/// use dcc_numerics::{polyfit, IncrementalQuadraticFit};
///
/// # fn main() -> Result<(), dcc_numerics::NumericsError> {
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 2.5, 3.1, 2.9];
/// let mut inc = IncrementalQuadraticFit::new();
/// for (&x, &y) in xs.iter().zip(&ys) {
///     inc.add(x, y);
/// }
/// let batch = polyfit(&xs, &ys, 2)?;
/// let q = inc.fit()?;
/// assert_eq!(q.r2().to_bits(), batch.coefficient(2).to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IncrementalQuadraticFit {
    /// `power_sums[k] = Σ xᵏ` for `k = 0..=4`.
    power_sums: [f64; 5],
    /// `rhs[k] = Σ xᵏ y` for `k = 0..=2`.
    rhs: [f64; 3],
    n: usize,
}

impl IncrementalQuadraticFit {
    /// An empty accumulator.
    pub fn new() -> Self {
        IncrementalQuadraticFit::default()
    }

    /// An accumulator seeded by adding `points` in order — bit-identical
    /// to streaming them through [`IncrementalQuadraticFit::add`].
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        let mut fit = IncrementalQuadraticFit::new();
        for &(x, y) in points {
            fit.add(x, y);
        }
        fit
    }

    /// Discards the accumulated sums and re-adds `points` in order.
    pub fn reset_from(&mut self, points: &[(f64, f64)]) {
        *self = IncrementalQuadraticFit::from_points(points);
    }

    /// Adds one observation. Mirrors the inner accumulation loop of
    /// [`crate::polyfit`], so adds in slice order reproduce its sums
    /// bit-for-bit.
    pub fn add(&mut self, x: f64, y: f64) {
        let mut xp = 1.0;
        for (j, sum) in self.power_sums.iter_mut().enumerate() {
            *sum += xp;
            if j < 3 {
                self.rhs[j] += xp * y;
            }
            xp *= x;
        }
        self.n += 1;
    }

    /// Removes one previously added observation by subtracting its
    /// contribution (a *downdate*). The result is algebraically — not
    /// bitwise — equivalent to never having added the point.
    ///
    /// Removing a point that was never added silently corrupts the sums;
    /// the caller owns that bookkeeping. Removal from an empty
    /// accumulator is ignored.
    pub fn remove(&mut self, x: f64, y: f64) {
        if self.n == 0 {
            return;
        }
        let mut xp = 1.0;
        for (j, sum) in self.power_sums.iter_mut().enumerate() {
            *sum -= xp;
            if j < 3 {
                self.rhs[j] -= xp * y;
            }
            xp *= x;
        }
        self.n -= 1;
    }

    /// Number of points currently accumulated.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no points are accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Solves the normal equations for the quadratic `r₂y² + r₁y + r₀`.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::InsufficientData`] with fewer than 3 points.
    /// - [`NumericsError::InvalidArgument`] if a non-finite observation
    ///   poisoned the sums.
    /// - [`NumericsError::SingularSystem`] /
    ///   [`NumericsError::NotPositiveDefinite`] on degenerate data (e.g.
    ///   all x identical).
    pub fn fit(&self) -> Result<Quadratic, NumericsError> {
        if self.n < 3 {
            return Err(NumericsError::InsufficientData {
                points: self.n,
                required: 3,
            });
        }
        if self
            .power_sums
            .iter()
            .chain(self.rhs.iter())
            .any(|v| !v.is_finite())
        {
            return Err(NumericsError::InvalidArgument(
                "incremental fit sums must be finite".into(),
            ));
        }
        let mut normal = Matrix::zeros(3, 3)?;
        for i in 0..3 {
            for j in 0..3 {
                normal[(i, j)] = self.power_sums[i + j];
            }
        }
        let coeffs = match solve_cholesky(&normal, &self.rhs) {
            Ok(c) => c,
            Err(NumericsError::NotPositiveDefinite) => solve_gaussian(&normal, &self.rhs)?,
            Err(e) => return Err(e),
        };
        // solve_* return one coefficient per column; index 0..=2 exist.
        let (c0, c1, c2) = match coeffs.as_slice() {
            [c0, c1, c2] => (*c0, *c1, *c2),
            _ => return Err(NumericsError::SingularSystem),
        };
        Ok(Quadratic::new(c2, c1, c0))
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::polyfit;

    fn sample(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = i as f64 * 0.37 + 0.2;
                // Deterministic wobble keeps the data non-polynomial.
                let y = -0.03 * x * x + 1.7 * x + 0.4
                    + 0.01 * ((i * 2654435761usize) % 97) as f64 / 97.0;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn streaming_adds_match_polyfit_bitwise() {
        let pts = sample(40);
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let batch = polyfit(&xs, &ys, 2).unwrap();
        let inc = IncrementalQuadraticFit::from_points(&pts);
        let q = inc.fit().unwrap();
        assert_eq!(q.r0().to_bits(), batch.coefficient(0).to_bits());
        assert_eq!(q.r1().to_bits(), batch.coefficient(1).to_bits());
        assert_eq!(q.r2().to_bits(), batch.coefficient(2).to_bits());
    }

    #[test]
    fn downdate_agrees_with_fresh_fit() {
        let pts = sample(50);
        let mut inc = IncrementalQuadraticFit::from_points(&pts);
        // Remove every third point, out of insertion order.
        let removed: Vec<(f64, f64)> =
            pts.iter().copied().skip(1).step_by(3).rev().collect();
        for &(x, y) in &removed {
            inc.remove(x, y);
        }
        let remaining: Vec<(f64, f64)> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 1)
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(inc.len(), remaining.len());
        let xs: Vec<f64> = remaining.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = remaining.iter().map(|p| p.1).collect();
        let fresh = polyfit(&xs, &ys, 2).unwrap();
        let q = inc.fit().unwrap();
        for (got, want) in [
            (q.r0(), fresh.coefficient(0)),
            (q.r1(), fresh.coefficient(1)),
            (q.r2(), fresh.coefficient(2)),
        ] {
            let scale = want.abs().max(1.0);
            assert!(
                (got - want).abs() <= 1e-12 * scale,
                "downdated {got} vs fresh {want}"
            );
        }
    }

    #[test]
    fn insufficient_points_rejected() {
        let mut inc = IncrementalQuadraticFit::new();
        inc.add(1.0, 1.0);
        inc.add(2.0, 2.0);
        assert!(matches!(
            inc.fit().unwrap_err(),
            NumericsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn non_finite_poisoning_is_reported() {
        let mut inc = IncrementalQuadraticFit::from_points(&sample(10));
        inc.add(f64::INFINITY, 1.0);
        assert!(matches!(
            inc.fit().unwrap_err(),
            NumericsError::InvalidArgument(_)
        ));
    }

    #[test]
    fn degenerate_xs_singular() {
        let inc =
            IncrementalQuadraticFit::from_points(&[(2.0, 1.0), (2.0, 2.0), (2.0, 3.0)]);
        assert!(matches!(
            inc.fit().unwrap_err(),
            NumericsError::SingularSystem | NumericsError::NotPositiveDefinite
        ));
    }

    #[test]
    fn remove_on_empty_is_ignored() {
        let mut inc = IncrementalQuadraticFit::new();
        inc.remove(1.0, 1.0);
        assert!(inc.is_empty());
    }

    #[test]
    fn reset_from_equals_from_points() {
        let pts = sample(12);
        let mut inc = IncrementalQuadraticFit::from_points(&sample(30));
        inc.reset_from(&pts);
        assert_eq!(inc, IncrementalQuadraticFit::from_points(&pts));
    }
}
