use crate::cmp::exact_eq;
use crate::NumericsError;

/// Finds a root of `f` in `[lo, hi]` by bisection, assuming
/// `f(lo)` and `f(hi)` have opposite signs.
///
/// Used in tests to cross-check the closed-form interval optima of the
/// contract algorithm (Eq. 31) against a derivative-free search.
///
/// # Errors
///
/// - [`NumericsError::InvalidArgument`] if `lo >= hi`, either endpoint is
///   non-finite, or the endpoint values do not bracket a sign change.
/// - [`NumericsError::NoConvergence`] if the interval does not shrink
///   below `tol` within 200 iterations (practically impossible for sane
///   tolerances).
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<f64, NumericsError> {
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(NumericsError::InvalidArgument(format!(
            "invalid bracket [{lo}, {hi}]"
        )));
    }
    let mut flo = f(lo);
    let fhi = f(hi);
    if exact_eq(flo, 0.0) {
        return Ok(lo);
    }
    if exact_eq(fhi, 0.0) {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::InvalidArgument(
            "bracket endpoints must have opposite signs".into(),
        ));
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if exact_eq(fmid, 0.0) || (hi - lo) < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumericsError::NoConvergence { iterations: 200 })
}

/// Newton's method for a root of `f` with derivative `df`, starting at
/// `x0`.
///
/// # Errors
///
/// - [`NumericsError::InvalidArgument`] if `x0` is non-finite.
/// - [`NumericsError::NoConvergence`] if `|f(x)|` does not fall below
///   `tol` within `max_iter` iterations or the derivative vanishes.
pub fn newton<F: Fn(f64) -> f64, D: Fn(f64) -> f64>(
    f: F,
    df: D,
    x0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    if !x0.is_finite() {
        return Err(NumericsError::InvalidArgument(
            "newton start must be finite".into(),
        ));
    }
    let mut x = x0;
    for i in 0..max_iter {
        let fx = f(x);
        if fx.abs() < tol {
            return Ok(x);
        }
        let dfx = df(x);
        if exact_eq(dfx, 0.0) || !dfx.is_finite() {
            return Err(NumericsError::NoConvergence { iterations: i });
        }
        x -= fx / dfx;
        if !x.is_finite() {
            return Err(NumericsError::NoConvergence { iterations: i });
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: max_iter,
    })
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((root - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12).is_err());
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
        assert!(bisect(|x| x, f64::NAN, 1.0, 1e-12).is_err());
    }

    #[test]
    fn newton_cube_root() {
        let root = newton(|x| x * x * x - 27.0, |x| 3.0 * x * x, 5.0, 1e-12, 100).unwrap();
        assert!((root - 3.0).abs() < 1e-9);
    }

    #[test]
    fn newton_detects_flat_derivative() {
        assert!(newton(|_| 1.0, |_| 0.0, 0.0, 1e-12, 10).is_err());
    }

    #[test]
    fn newton_iteration_budget() {
        // sign(x)*sqrt(|x|) makes Newton oscillate and never converge.
        let f = |x: f64| x.signum() * x.abs().sqrt();
        let df = |x: f64| 0.5 / x.abs().sqrt();
        assert!(matches!(
            newton(f, df, 1.0, 1e-15, 20),
            Err(NumericsError::NoConvergence { .. })
        ));
    }

    #[test]
    fn newton_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let n = newton(f, |x| x.exp(), 1.0, 1e-12, 100).unwrap();
        let b = bisect(f, 0.0, 2.0, 1e-12).unwrap();
        assert!((n - b).abs() < 1e-9);
    }
}
