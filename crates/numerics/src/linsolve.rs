use crate::cmp::exact_eq;
use crate::{Matrix, NumericsError};

/// Solves the square linear system `a * x = b` by Gaussian elimination
/// with partial pivoting.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] if `a` is not square or `b` has
///   the wrong length.
/// - [`NumericsError::SingularSystem`] if a pivot smaller than `1e-12`
///   (relative to the largest entry) is encountered.
///
/// # Example
///
/// ```
/// use dcc_numerics::{solve_gaussian, Matrix};
///
/// # fn main() -> Result<(), dcc_numerics::NumericsError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = solve_gaussian(&a, &[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_gaussian(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("square matrix ({n}x{n})"),
            actual: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            actual: format!("rhs of length {}", b.len()),
        });
    }

    // Build an augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r);
            row.push(b[r]);
            row
        })
        .collect();

    let scale = m
        .iter()
        .flat_map(|row| row.iter().take(n))
        .fold(0.0f64, |acc, &v| acc.max(v.abs()))
        .max(1.0);

    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry to the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(col);
        if m[pivot_row][col].abs() < 1e-12 * scale {
            return Err(NumericsError::SingularSystem);
        }
        m.swap(col, pivot_row);

        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            if exact_eq(factor, 0.0) {
                continue;
            }
            let (pivot_row_ref, target_row) = {
                let (a, b) = m.split_at_mut(row);
                (&a[col], &mut b[0])
            };
            for k in col..=n {
                target_row[k] -= factor * pivot_row_ref[k];
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for col in (row + 1)..n {
            acc -= m[row][col] * x[col];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Solves `a * x = b` for a symmetric positive-definite `a` via Cholesky
/// factorization (`a = L·Lᵀ`).
///
/// This is the preferred path for least-squares normal equations, which
/// are SPD whenever the design matrix has full column rank.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] if `a` is not square or `b` has
///   the wrong length.
/// - [`NumericsError::NotPositiveDefinite`] if a non-positive diagonal
///   pivot appears during factorization.
pub fn solve_cholesky(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("square matrix ({n}x{n})"),
            actual: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            actual: format!("rhs of length {}", b.len()),
        });
    }

    // Lower-triangular factor, row-major.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NumericsError::NotPositiveDefinite);
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }

    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[i * n + k] * y[k];
        }
        y[i] = acc / l[i * n + i];
    }

    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l[k * n + i] * x[k];
        }
        x[i] = acc / l[i * n + i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn gaussian_solves_3x3() {
        let a = Matrix::from_rows(&[
            &[4.0, -2.0, 1.0],
            &[-2.0, 4.0, -2.0],
            &[1.0, -2.0, 4.0],
        ])
        .unwrap();
        let b = [11.0, -16.0, 17.0];
        let x = solve_gaussian(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn gaussian_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve_gaussian(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn gaussian_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(
            solve_gaussian(&a, &[1.0, 2.0]).unwrap_err(),
            NumericsError::SingularSystem
        );
    }

    #[test]
    fn gaussian_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3).unwrap();
        assert!(solve_gaussian(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn gaussian_rejects_bad_rhs() {
        let a = Matrix::identity(2).unwrap();
        assert!(solve_gaussian(&a, &[1.0]).is_err());
    }

    #[test]
    fn cholesky_solves_spd() {
        let a = Matrix::from_rows(&[
            &[4.0, 2.0, 0.6],
            &[2.0, 5.0, 1.5],
            &[0.6, 1.5, 3.8],
        ])
        .unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = solve_cholesky(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            solve_cholesky(&a, &[1.0, 1.0]).unwrap_err(),
            NumericsError::NotPositiveDefinite
        );
    }

    #[test]
    fn cholesky_matches_gaussian_on_spd() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 3.0]]).unwrap();
        let b = [8.0, 5.0];
        let xg = solve_gaussian(&a, &b).unwrap();
        let xc = solve_cholesky(&a, &b).unwrap();
        for (g, c) in xg.iter().zip(&xc) {
            assert!((g - c).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4).unwrap();
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(solve_gaussian(&a, &b).unwrap(), b.to_vec());
        assert_eq!(solve_cholesky(&a, &b).unwrap(), b.to_vec());
    }
}
