//! The approved float-comparison helpers.
//!
//! Raw `==`/`!=` on floats is banned workspace-wide (dcc-lint's
//! `float-eq` rule and `clippy::float_cmp`): an accidental strict
//! comparison is either a latent tolerance bug or an undocumented
//! bitwise-equality assumption. Every float equality in library code
//! goes through one of these helpers so the intent — tolerance or
//! exactness — is explicit and greppable.

/// Whether `a` and `b` agree within absolute tolerance `eps`.
///
/// NaN compares unequal to everything (the comparison is `<=` on
/// `|a - b|`, which is false for NaN).
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Deliberate IEEE-754 `==`: identical semantics to the raw operator
/// (`-0.0 == 0.0` is true, NaN is unequal to itself).
///
/// Use only where exactness is the *point*: zero/sentinel guards,
/// idempotence checks on copied (not recomputed) values, and
/// bit-determinism comparisons. For recomputed quantities use
/// [`approx_eq`].
#[inline]
#[must_use]
pub fn exact_eq(a: f64, b: f64) -> bool {
    // The one sanctioned raw float comparison in the workspace; dcc-lint's
    // float-eq rule only fires on visibly-float operands, so the bare
    // identifiers here are clippy's (allowed) business alone.
    #[allow(clippy::float_cmp)]
    {
        a == b
    }
}

/// Negation of [`exact_eq`] (note: true when either side is NaN).
#[inline]
#[must_use]
pub fn exact_ne(a: f64, b: f64) -> bool {
    !exact_eq(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance_and_nan() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-12));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-12));
        assert!(approx_eq(-0.0, 0.0, 0.0));
    }

    #[test]
    fn exact_eq_matches_ieee_semantics() {
        assert!(exact_eq(0.5, 0.5));
        assert!(exact_eq(-0.0, 0.0));
        assert!(!exact_eq(f64::NAN, f64::NAN));
        assert!(exact_ne(f64::NAN, f64::NAN));
        assert!(!exact_eq(1.0, 1.0 + f64::EPSILON));
        assert!(exact_eq(f64::INFINITY, f64::INFINITY));
    }
}
