use std::fmt;

/// Errors produced by the numeric substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A matrix or vector had a dimension incompatible with the operation.
    DimensionMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        actual: String,
    },
    /// A linear system was singular (or numerically indistinguishable
    /// from singular) and could not be solved.
    SingularSystem,
    /// A matrix passed to Cholesky factorization was not positive definite.
    NotPositiveDefinite,
    /// Not enough data points for the requested fit degree.
    InsufficientData {
        /// Number of points supplied.
        points: usize,
        /// Number of points required.
        required: usize,
    },
    /// An argument was outside its valid domain (NaN, empty, negative, ...).
    InvalidArgument(String),
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericsError::SingularSystem => write!(f, "linear system is singular"),
            NumericsError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            NumericsError::InsufficientData { points, required } => write!(
                f,
                "insufficient data: {points} points supplied, {required} required"
            ),
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NumericsError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericsError::DimensionMismatch {
            expected: "3x3".into(),
            actual: "2x3".into(),
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x3, got 2x3");
        assert_eq!(
            NumericsError::SingularSystem.to_string(),
            "linear system is singular"
        );
        assert_eq!(
            NumericsError::NoConvergence { iterations: 7 }.to_string(),
            "no convergence after 7 iterations"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<NumericsError>();
    }
}
