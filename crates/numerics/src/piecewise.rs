use crate::NumericsError;
use std::fmt;

/// A continuous piecewise-linear function defined by knots
/// `(x₀, v₀), …, (x_m, v_m)` with strictly increasing `x`.
///
/// This is the representation the paper uses for contract functions
/// (§III-A, Eq. 6): inside `[x_{l−1}, x_l)` the function is
/// `v_{l−1} + α_l (x − x_{l−1})` with slope `α_l = Δv_l / Δx_l`.
/// Evaluation below `x₀` clamps to `v₀`; at or above `x_m` it clamps to
/// `v_m` (the paper's contracts are flat beyond the last knot by
/// construction).
///
/// # Example
///
/// ```
/// use dcc_numerics::PiecewiseLinear;
///
/// # fn main() -> Result<(), dcc_numerics::NumericsError> {
/// let f = PiecewiseLinear::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 2.5])?;
/// assert_eq!(f.eval(0.5), 1.0);
/// assert_eq!(f.eval(2.0), 2.25);
/// assert_eq!(f.eval(10.0), 2.5); // clamped
/// assert!(f.is_monotone_nondecreasing());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    vs: Vec<f64>,
}

impl PiecewiseLinear {
    /// Creates a piecewise-linear function from knot abscissae `xs`
    /// (strictly increasing) and values `vs`.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::DimensionMismatch`] if `xs.len() != vs.len()`.
    /// - [`NumericsError::InvalidArgument`] if fewer than two knots are
    ///   given, any coordinate is non-finite, or `xs` is not strictly
    ///   increasing.
    pub fn new(xs: Vec<f64>, vs: Vec<f64>) -> Result<Self, NumericsError> {
        if xs.len() != vs.len() {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("{} values", xs.len()),
                actual: format!("{} values", vs.len()),
            });
        }
        if xs.len() < 2 {
            return Err(NumericsError::InvalidArgument(
                "piecewise-linear function needs at least two knots".into(),
            ));
        }
        if xs.iter().chain(vs.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::InvalidArgument(
                "piecewise-linear knots must be finite".into(),
            ));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::InvalidArgument(
                "knot abscissae must be strictly increasing".into(),
            ));
        }
        Ok(PiecewiseLinear { xs, vs })
    }

    /// Constructs a constant function `v` over `[x_lo, x_hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `x_lo >= x_hi` or any
    /// input is non-finite.
    pub fn constant(x_lo: f64, x_hi: f64, v: f64) -> Result<Self, NumericsError> {
        PiecewiseLinear::new(vec![x_lo, x_hi], vec![v, v])
    }

    /// Knot abscissae.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// Knot values.
    pub fn values(&self) -> &[f64] {
        &self.vs
    }

    /// Number of linear segments (`knots − 1`).
    pub fn segments(&self) -> usize {
        self.xs.len() - 1
    }

    /// The slope of segment `l` (0-based, over `[xs[l], xs[l+1]]`).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.segments()`.
    pub fn slope(&self, l: usize) -> f64 {
        assert!(l < self.segments(), "segment {l} out of bounds");
        (self.vs[l + 1] - self.vs[l]) / (self.xs[l + 1] - self.xs[l])
    }

    /// All segment slopes, in order.
    pub fn slopes(&self) -> Vec<f64> {
        (0..self.segments()).map(|l| self.slope(l)).collect()
    }

    /// Evaluates the function at `x`, clamping outside the knot range.
    /// `NaN` propagates.
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x <= self.xs[0] {
            return self.vs[0];
        }
        if x >= self.xs[self.xs.len() - 1] {
            return self.vs[self.vs.len() - 1];
        }
        // Binary search for the segment containing x. The knots are
        // finite by construction and x is non-NaN here, so the
        // comparison is total; `Equal` is an unreachable safe fallback.
        let seg = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) => return self.vs[i],
            Err(i) => i - 1,
        };
        let t = (x - self.xs[seg]) / (self.xs[seg + 1] - self.xs[seg]);
        self.vs[seg] + t * (self.vs[seg + 1] - self.vs[seg])
    }

    /// The segment index whose half-open interval `[x_l, x_{l+1})`
    /// contains `x`, or `None` outside `[x₀, x_m)`.
    pub fn segment_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.xs[0] || x >= self.xs[self.xs.len() - 1] {
            return None;
        }
        match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) => {
                if i == self.xs.len() - 1 {
                    None
                } else {
                    Some(i)
                }
            }
            Err(i) => Some(i - 1),
        }
    }

    /// `true` iff every segment slope is ≥ `-eps` for a small tolerance —
    /// the paper requires contract functions to be monotonically
    /// increasing (§II-A).
    pub fn is_monotone_nondecreasing(&self) -> bool {
        self.vs.windows(2).all(|w| w[1] >= w[0] - 1e-12)
    }

    /// Pointwise maximum value over the knots (equals the supremum for a
    /// monotone function).
    pub fn max_value(&self) -> f64 {
        self.vs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

impl fmt::Display for PiecewiseLinear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pwl[")?;
        for (i, (x, v)) in self.xs.iter().zip(&self.vs).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({x:.3},{v:.3})")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![0.0, 1.0, 3.0, 4.0], vec![0.0, 2.0, 2.0, 5.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(PiecewiseLinear::new(vec![0.0], vec![0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![1.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(PiecewiseLinear::new(vec![2.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn eval_interpolates() {
        let f = sample();
        assert_eq!(f.eval(0.5), 1.0);
        assert_eq!(f.eval(2.0), 2.0);
        assert_eq!(f.eval(3.5), 3.5);
    }

    #[test]
    fn eval_at_knots_exact() {
        let f = sample();
        for (x, v) in f.knots().iter().zip(f.values()) {
            assert_eq!(f.eval(*x), *v);
        }
    }

    #[test]
    fn eval_clamps_outside() {
        let f = sample();
        assert_eq!(f.eval(-1.0), 0.0);
        assert_eq!(f.eval(100.0), 5.0);
    }

    #[test]
    fn slopes_as_expected() {
        let f = sample();
        assert_eq!(f.slopes(), vec![2.0, 0.0, 3.0]);
    }

    #[test]
    fn segment_of_half_open() {
        let f = sample();
        assert_eq!(f.segment_of(0.0), Some(0));
        assert_eq!(f.segment_of(0.999), Some(0));
        assert_eq!(f.segment_of(1.0), Some(1));
        assert_eq!(f.segment_of(3.9), Some(2));
        assert_eq!(f.segment_of(4.0), None);
        assert_eq!(f.segment_of(-0.1), None);
    }

    #[test]
    fn monotonicity_detection() {
        assert!(sample().is_monotone_nondecreasing());
        let dec = PiecewiseLinear::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!(!dec.is_monotone_nondecreasing());
    }

    #[test]
    fn constant_function() {
        let c = PiecewiseLinear::constant(0.0, 5.0, 3.0).unwrap();
        assert_eq!(c.eval(2.5), 3.0);
        assert!(c.is_monotone_nondecreasing());
        assert_eq!(c.max_value(), 3.0);
        assert!(PiecewiseLinear::constant(5.0, 0.0, 3.0).is_err());
    }

    #[test]
    fn max_value_of_monotone_is_last() {
        assert_eq!(sample().max_value(), 5.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(sample().to_string().starts_with("pwl["));
    }
}
