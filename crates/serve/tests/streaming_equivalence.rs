//! Replay-based equivalence: streaming a synthetic trace through the
//! service with `verify` on cross-checks every round boundary bitwise
//! against the cold batch pipeline. The randomized version (arbitrary
//! event streams, pools 1–8) lives in the workspace-level
//! `tests/serve_differential.rs`.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use dcc_core::DesignConfig;
use dcc_detect::{PipelineConfig, SuspectSource};
use dcc_obs::Metrics;
use dcc_serve::{events_from_trace, ServeService, ServeState};
use dcc_trace::SyntheticConfig;

fn replay_verified(seed: u64, pool: usize) -> ServeService {
    let trace = SyntheticConfig::small(seed).generate();
    let events = events_from_trace(&trace);
    let mut service = ServeService::new(
        PipelineConfig::default(),
        DesignConfig::default(),
        pool,
        true,
        Metrics::noop(),
    )
    .expect("config is valid");
    for event in &events {
        service.apply(event).expect("verified round");
    }
    service
}

#[test]
fn replay_matches_batch_at_every_round() {
    for seed in [3, 11, 29] {
        let service = replay_verified(seed, 1);
        assert!(service.stats().rounds >= 2, "seed {seed} produced too few rounds");
    }
}

#[test]
fn pool_size_does_not_change_the_stream() {
    let base = replay_verified(7, 1);
    for pool in [2, 5, 8] {
        let other = replay_verified(7, pool);
        assert_eq!(base.stats(), other.stats(), "pool {pool} diverged");
    }
}

#[test]
fn quiet_rounds_reuse_everything() {
    // A round boundary with no intervening events changes no input, so
    // the incremental path must re-solve nothing and re-fit nothing —
    // and still emit a design identical to the busy round before it.
    let mut service = replay_verified(13, 4);
    let busy = service.stats();
    let mut digests = Vec::new();
    for _ in 0..3 {
        let out = service
            .apply(&dcc_serve::ServeEvent::Round)
            .expect("quiet round")
            .expect("round output");
        assert_eq!(out.dirty_workers, 0);
        assert_eq!(out.dirty_products, 0);
        assert_eq!(out.resolved, 0, "a quiet round must re-solve nothing");
        assert!(out.reused > 0);
        digests.push(dcc_serve::design_digest(
            out.design.as_ref().expect("design"),
        ));
    }
    let quiet = service.stats();
    assert_eq!(quiet.solve_resolved, busy.solve_resolved);
    assert_eq!(quiet.fit_refits, busy.fit_refits);
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn estimated_suspect_source_is_rejected() {
    let err = ServeState::new(
        PipelineConfig {
            suspects: SuspectSource::Estimated { threshold: 0.5 },
            ..PipelineConfig::default()
        },
        DesignConfig::default(),
        1,
    )
    .expect_err("estimated mode must be rejected");
    assert!(err.to_string().contains("GroundTruth"), "{err}");
}
