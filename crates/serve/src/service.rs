//! The service wrapper around [`ServeState`]: event logging (for
//! checkpoints), `serve.*` metrics, `--verify` cross-checks, and the
//! JSON-lines output rendering the CLI prints.

use dcc_core::CoreError;
use dcc_detect::PipelineConfig;
use dcc_faults::Json;
use dcc_obs::{names, AttrValue, Metrics};

use crate::event::ServeEvent;
use crate::state::{design_digest, RoundOutput, ServeState, ServeStats};

/// The streaming contract service: wraps the incremental
/// [`ServeState`] with an event log (the checkpoint payload), metrics,
/// and deterministic JSON-lines rendering.
///
/// The service is a deterministic state machine over its event log:
/// re-applying the same log from empty reproduces the same state *and*
/// the same counters, which is what makes checkpoint resume
/// byte-identical (see [`crate::ckpt`]).
#[derive(Debug)]
pub struct ServeService {
    state: ServeState,
    metrics: Metrics,
    log: Vec<ServeEvent>,
    /// Round outputs suppressed during a checkpoint restore.
    restored_rounds: usize,
    verify: bool,
}

impl ServeService {
    /// A fresh service over an empty state.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations (see [`ServeState::new`]).
    pub fn new(
        pipeline: PipelineConfig,
        design: dcc_core::DesignConfig,
        pool: usize,
        verify: bool,
        metrics: Metrics,
    ) -> Result<Self, CoreError> {
        Ok(ServeService {
            state: ServeState::new(pipeline, design, pool)?,
            metrics,
            log: Vec::new(),
            restored_rounds: 0,
            verify,
        })
    }

    /// Rebuilds a service from a checkpointed event log by re-applying
    /// every event from an empty state, returning the round outputs the
    /// replay reproduces. The service is a deterministic state machine,
    /// so the rebuilt state, counters, and outputs are identical to the
    /// killed run's — a resumed run re-emits the restored rounds and
    /// its full output is byte-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates configuration and event-protocol errors; a log that
    /// fails to re-apply means the checkpoint does not belong to this
    /// configuration.
    pub fn restore(
        pipeline: PipelineConfig,
        design: dcc_core::DesignConfig,
        pool: usize,
        verify: bool,
        metrics: Metrics,
        log: &[ServeEvent],
    ) -> Result<(Self, Vec<RoundOutput>), CoreError> {
        let mut service = ServeService::new(pipeline, design, pool, verify, metrics)?;
        let mut outputs = Vec::new();
        for event in log {
            if let Some(out) = service.apply(event)? {
                outputs.push(out);
            }
        }
        service.restored_rounds = service.state.rounds_seen();
        service.metrics.add(names::COUNTER_SERVE_CKPT_RESTORED, 1);
        Ok((service, outputs))
    }

    /// Ingests one event, returning the rendered output for a round
    /// boundary.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors from [`ServeState::apply`] and, under
    /// `--verify`, any bitwise mismatch against the cold batch
    /// recompute.
    pub fn apply(&mut self, event: &ServeEvent) -> Result<Option<RoundOutput>, CoreError> {
        self.metrics.add(names::COUNTER_SERVE_EVENTS, 1);
        let out = if matches!(event, ServeEvent::Round) {
            let (dirty_workers, dirty_products) = self.state.pending_dirty();
            let span = self.metrics.span(
                names::SPAN_SERVE_ROUND,
                &[
                    ("round", AttrValue::U64(self.state.rounds_seen() as u64)),
                    ("dirty_workers", AttrValue::U64(dirty_workers as u64)),
                    ("dirty_products", AttrValue::U64(dirty_products as u64)),
                ],
            );
            let out = self.state.apply(event)?;
            span.end();
            out
        } else {
            self.state.apply(event)?
        };
        self.log.push(event.clone());
        if let Some(out) = &out {
            self.record_round(out);
            if self.verify {
                self.verify_round(out)?;
            }
        }
        Ok(out)
    }

    fn record_round(&self, out: &RoundOutput) {
        let m = &self.metrics;
        if !m.enabled() {
            return;
        }
        m.add(names::COUNTER_SERVE_ROUNDS, 1);
        m.add(names::COUNTER_SERVE_DIRTY_WORKERS, out.dirty_workers as u64);
        m.add(names::COUNTER_SERVE_DIRTY_PRODUCTS, out.dirty_products as u64);
        m.add(names::COUNTER_SERVE_SOLVE_RESOLVED, out.resolved as u64);
        m.add(names::COUNTER_SERVE_SOLVE_REUSED, out.reused as u64);
        let stats = self.state.stats();
        m.add(
            names::COUNTER_SERVE_FIT_REFITS,
            stats.fit_refits as u64,
        );
        m.add(names::COUNTER_SERVE_FIT_REUSED, stats.fit_reused as u64);
        m.gauge(
            names::GAUGE_SERVE_INCREMENTAL_RATIO,
            stats.incremental_ratio(),
        );
    }

    /// Cross-checks one round output against a cold batch recompute
    /// over the same prefix — the `--verify` mode's bit-exactness
    /// guard.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] naming the round on any
    /// divergence (digest mismatch, error-text mismatch, or one path
    /// erring while the other succeeds).
    pub fn verify_round(&self, out: &RoundOutput) -> Result<(), CoreError> {
        let cold = self.state.cold_design();
        match (&out.design, &cold) {
            (Ok(inc), Ok(batch)) => {
                if design_digest(inc) != design_digest(batch) {
                    return Err(CoreError::InvalidInput(format!(
                        "serve --verify: round {} incremental design diverges bitwise from \
                         the batch recompute",
                        out.round
                    )));
                }
            }
            (Err(inc), Err(batch)) => {
                let batch = batch.to_string();
                if inc != &batch {
                    return Err(CoreError::InvalidInput(format!(
                        "serve --verify: round {} error mismatch: incremental {inc:?} vs \
                         batch {batch:?}",
                        out.round
                    )));
                }
            }
            (Ok(_), Err(batch)) => {
                return Err(CoreError::InvalidInput(format!(
                    "serve --verify: round {} incremental succeeded but batch failed: {batch}",
                    out.round
                )));
            }
            (Err(inc), Ok(_)) => {
                return Err(CoreError::InvalidInput(format!(
                    "serve --verify: round {} batch succeeded but incremental failed: {inc}",
                    out.round
                )));
            }
        }
        Ok(())
    }

    /// Renders one round boundary as a JSON line (no trailing newline):
    /// work deltas plus either the design's agent count, total utility,
    /// and bitwise digest, or the rendered design error.
    pub fn output_line(out: &RoundOutput) -> String {
        let mut obj = vec![
            ("round".to_string(), Json::idx(out.round)),
            ("events".to_string(), Json::idx(out.events)),
            ("dirty_workers".to_string(), Json::idx(out.dirty_workers)),
            ("dirty_products".to_string(), Json::idx(out.dirty_products)),
            ("resolved".to_string(), Json::idx(out.resolved)),
            ("reused".to_string(), Json::idx(out.reused)),
        ];
        match &out.design {
            Ok(design) => {
                obj.push(("ok".to_string(), Json::Bool(true)));
                obj.push(("agents".to_string(), Json::idx(design.agents.len())));
                obj.push((
                    "total_utility".to_string(),
                    Json::num(design.total_requester_utility),
                ));
                obj.push((
                    "digest".to_string(),
                    Json::Str(format!("{:016x}", fold_digest(&design_digest(design)))),
                ));
            }
            Err(e) => {
                obj.push(("ok".to_string(), Json::Bool(false)));
                obj.push(("error".to_string(), Json::Str(e.clone())));
            }
        }
        Json::Obj(obj).to_string()
    }

    /// Renders the end-of-run summary as a JSON line. Built purely from
    /// the deterministic counters, so a resumed run's summary is
    /// byte-identical to an uninterrupted run's.
    pub fn summary_line(&self) -> String {
        let s = self.state.stats();
        Json::Obj(vec![
            ("summary".to_string(), Json::Str("serve".to_string())),
            ("events".to_string(), Json::idx(s.events)),
            ("rounds".to_string(), Json::idx(s.rounds)),
            ("dirty_workers".to_string(), Json::idx(s.dirty_workers)),
            ("dirty_products".to_string(), Json::idx(s.dirty_products)),
            ("fit_refits".to_string(), Json::idx(s.fit_refits)),
            ("fit_reused".to_string(), Json::idx(s.fit_reused)),
            ("solve_resolved".to_string(), Json::idx(s.solve_resolved)),
            ("solve_reused".to_string(), Json::idx(s.solve_reused)),
            (
                "incremental_ratio".to_string(),
                Json::num(s.incremental_ratio()),
            ),
        ])
        .to_string()
    }

    /// The event log since process start (the checkpoint payload).
    pub fn log(&self) -> &[ServeEvent] {
        &self.log
    }

    /// Total events applied, including any restored from a checkpoint.
    pub fn events_applied(&self) -> usize {
        self.log.len()
    }

    /// Rounds that were replayed silently during a checkpoint restore.
    pub fn restored_rounds(&self) -> usize {
        self.restored_rounds
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> ServeStats {
        self.state.stats()
    }

    /// The underlying incremental state.
    pub fn state(&self) -> &ServeState {
        &self.state
    }
}

/// Folds a bitwise design digest into one `u64` (FNV-1a over the raw
/// words) — the compact fingerprint printed on every output line.
pub fn fold_digest(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}
