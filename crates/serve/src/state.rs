//! The incremental state machine behind `dcc serve`.
//!
//! [`ServeState`] ingests events between round boundaries and, at each
//! boundary, recomputes **only what changed** while remaining
//! bit-identical (`f64::to_bits`) to the cold batch pipeline
//! (`run_pipeline` → `design_contracts`) over the same event prefix:
//!
//! - per-product consensus slots are recomputed only for products with
//!   new reviews ([`ConsensusMap::recompute_product`]);
//! - per-worker `e_mal` estimates and Eq. 5 weights are recomputed only
//!   for workers whose own reviews, reviewed products' consensus,
//!   estimate, or partner count changed;
//! - collusive communities are maintained by a streaming
//!   [`UnionFind`] (one `push` per suspect at join, unions only over
//!   dirty products) instead of a from-scratch DFS;
//! - class ψ fits re-run only for classes whose observation points
//!   changed, through streaming normal-equation sums
//!   ([`IncrementalQuadraticFit`]) feeding the shared acceptance logic
//!   ([`fit_effort_function_with_candidate`]);
//! - subproblems re-solve only when their bitwise input fingerprint
//!   (members, ω, weight, ψ, discretization, model parameters) changed;
//!   cached solutions are reused with their positional ids re-patched.
//!
//! Every per-item computation is the *same function* the batch path
//! runs (shared via `dcc-detect`/`dcc-core`), so equality is by
//! construction, and `tests/serve_differential.rs` enforces it
//! property-wise at every round boundary.

use dcc_core::{
    assemble_design, decompose_design, effort_region, fit_effort_function,
    fit_effort_function_with_candidate, solve_subproblems_pooled, BipSolution, ClassModel,
    ClassModels, ClassPoints, ContractDesign, CoreError, DegradationReport, DegradedSubproblem,
    DesignConfig, DesignPrep, Discretization, EffortFit, SubproblemSolution,
};
use dcc_detect::{
    CollusionReport, ConsensusMap, DetectionResult, FeedbackWeights, MaliciousEstimates,
    PipelineConfig, SuspectSource,
};
use dcc_graph::UnionFind;
use dcc_numerics::IncrementalQuadraticFit;
use dcc_trace::{
    Campaign, Product, ProductId, Reviewer, ReviewerId, TraceDataset, WorkerClass,
};
use std::collections::{BTreeMap, BTreeSet};

use crate::event::ServeEvent;

/// Cumulative work counters of a serve run, reported in the final
/// summary and mirrored into `serve.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Events ingested (all kinds, round markers included).
    pub events: usize,
    /// Round boundaries recomputed.
    pub rounds: usize,
    /// Workers marked dirty, summed over rounds.
    pub dirty_workers: usize,
    /// Products marked dirty, summed over rounds.
    pub dirty_products: usize,
    /// Class effort-function fits actually executed.
    pub fit_refits: usize,
    /// Class models reused (or derived by fallback) without a fit.
    pub fit_reused: usize,
    /// Subproblems re-solved because their inputs changed.
    pub solve_resolved: usize,
    /// Subproblems whose cached solution was reused unchanged.
    pub solve_reused: usize,
}

impl ServeStats {
    /// Fraction of subproblem solves answered from the cache — the
    /// incremental-vs-full work ratio of the run so far (1.0 when no
    /// subproblem has ever been solved).
    pub fn incremental_ratio(&self) -> f64 {
        let total = self.solve_resolved + self.solve_reused;
        if total == 0 {
            1.0
        } else {
            self.solve_reused as f64 / total as f64
        }
    }
}

/// The output of one round boundary.
#[derive(Debug, Clone)]
pub struct RoundOutput {
    /// 0-based round index (number of boundaries seen before this one).
    pub round: usize,
    /// Events ingested up to and including this boundary's marker.
    pub events: usize,
    /// Workers that were dirty at this boundary.
    pub dirty_workers: usize,
    /// Products that were dirty at this boundary.
    pub dirty_products: usize,
    /// Subproblems re-solved this boundary.
    pub resolved: usize,
    /// Subproblems reused from the cache this boundary.
    pub reused: usize,
    /// The recomputed design, or the rendered error the batch pipeline
    /// would also produce over this prefix (e.g. too few honest
    /// observation points early in a stream).
    pub design: Result<ContractDesign, String>,
}

/// Bitwise equality of two point slices.
fn points_same_bits(a: &[(f64, f64)], b: &[(f64, f64)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(p, q)| {
            p.0.to_bits() == q.0.to_bits() && p.1.to_bits() == q.1.to_bits()
        })
}

/// Whether `prefix` is a bitwise prefix of `points`.
fn is_bit_prefix(prefix: &[(f64, f64)], points: &[(f64, f64)]) -> bool {
    prefix.len() <= points.len() && points_same_bits(prefix, &points[..prefix.len()])
}

/// One class's streaming least-squares accumulator plus the point
/// vector currently summed into it.
#[derive(Debug, Clone, Default)]
struct ClassAccumulator {
    inc: IncrementalQuadraticFit,
    points: Vec<(f64, f64)>,
}

impl ClassAccumulator {
    /// Fits the class effort function over `points`, updating the
    /// running normal-equation sums incrementally: append-only changes
    /// stream through [`IncrementalQuadraticFit::add`] (bit-identical
    /// to `polyfit`), anything else re-accumulates from scratch (same
    /// bits, linear cost). Degenerate sums fall back to the batch
    /// [`fit_effort_function`] so error text matches the cold path.
    fn fit(&mut self, points: &[(f64, f64)]) -> Result<EffortFit, CoreError> {
        if points.len() < 3 {
            return fit_effort_function(points);
        }
        if is_bit_prefix(&self.points, points) {
            for &(x, y) in &points[self.points.len()..] {
                self.inc.add(x, y);
            }
        } else {
            self.inc.reset_from(points);
        }
        self.points.clear();
        self.points.extend_from_slice(points);
        match self.inc.fit() {
            Ok(candidate) => fit_effort_function_with_candidate(points, candidate),
            Err(_) => fit_effort_function(points),
        }
    }
}

/// A cached subproblem solution keyed by its member set, with the
/// bitwise fingerprint of every input that feeds the solve.
#[derive(Debug, Clone)]
struct CachedSolve {
    fingerprint: Vec<u64>,
    solution: SubproblemSolution,
    degraded: Option<DegradedSubproblem>,
}

/// The streaming service's incremental state.
#[derive(Debug, Clone)]
pub struct ServeState {
    pipeline: PipelineConfig,
    design: DesignConfig,
    pool: usize,

    trace: TraceDataset,

    // --- detection state ----------------------------------------------
    raw: ConsensusMap,
    refined: ConsensusMap,
    estimates: Vec<f64>,
    weights: Vec<f64>,
    suspected: Vec<ReviewerId>,
    excluded: BTreeSet<ReviewerId>,
    suspect_slot: BTreeMap<ReviewerId, usize>,
    uf: UnionFind,
    collusion: CollusionReport,
    partner_counts: BTreeMap<ReviewerId, usize>,

    // --- fit state -----------------------------------------------------
    worker_points: BTreeMap<ReviewerId, (f64, f64)>,
    honest_acc: ClassAccumulator,
    ncm_acc: ClassAccumulator,
    cm_acc: ClassAccumulator,
    models_cache: Option<(ClassPoints, ClassModels)>,

    // --- solve state ---------------------------------------------------
    solve_cache: BTreeMap<Vec<usize>, CachedSolve>,

    // --- dirty tracking ------------------------------------------------
    dirty_workers: BTreeSet<ReviewerId>,
    dirty_products: BTreeSet<ProductId>,

    stats: ServeStats,
    rounds_seen: usize,
}

impl ServeState {
    /// An empty state over the given configuration.
    ///
    /// # Errors
    ///
    /// Rejects invalid design configurations and — because incremental
    /// detection relies on suspect status being fixed at join time —
    /// any [`SuspectSource`] other than `GroundTruth`.
    pub fn new(
        pipeline: PipelineConfig,
        design: DesignConfig,
        pool: usize,
    ) -> Result<Self, CoreError> {
        design.validate()?;
        if !matches!(pipeline.suspects, SuspectSource::GroundTruth) {
            return Err(CoreError::InvalidParams(
                "dcc serve requires SuspectSource::GroundTruth: estimated suspect sets can \
                 flip with every review, which defeats incremental detection (run the batch \
                 pipeline for estimated mode)"
                    .into(),
            ));
        }
        Ok(ServeState {
            pipeline,
            design,
            pool: pool.max(1),
            trace: TraceDataset::empty(),
            raw: ConsensusMap::with_products(0),
            refined: ConsensusMap::with_products(0),
            estimates: Vec::new(),
            weights: Vec::new(),
            suspected: Vec::new(),
            excluded: BTreeSet::new(),
            suspect_slot: BTreeMap::new(),
            uf: UnionFind::new(0),
            collusion: CollusionReport::from_member_groups(Vec::new()),
            partner_counts: BTreeMap::new(),
            worker_points: BTreeMap::new(),
            honest_acc: ClassAccumulator::default(),
            ncm_acc: ClassAccumulator::default(),
            cm_acc: ClassAccumulator::default(),
            models_cache: None,
            solve_cache: BTreeMap::new(),
            dirty_workers: BTreeSet::new(),
            dirty_products: BTreeSet::new(),
            stats: ServeStats::default(),
            rounds_seen: 0,
        })
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &TraceDataset {
        &self.trace
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Round boundaries processed so far.
    pub fn rounds_seen(&self) -> usize {
        self.rounds_seen
    }

    /// The `(workers, products)` currently marked dirty — what the next
    /// round boundary will recompute.
    pub fn pending_dirty(&self) -> (usize, usize) {
        (self.dirty_workers.len(), self.dirty_products.len())
    }

    /// The active design configuration.
    pub fn design_config(&self) -> &DesignConfig {
        &self.design
    }

    /// The active detection configuration.
    pub fn pipeline_config(&self) -> &PipelineConfig {
        &self.pipeline
    }

    /// Ingests one event. Returns `Some(output)` for a round boundary,
    /// `None` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for protocol violations
    /// (non-dense ids, dangling references, out-of-range stars, a
    /// campaign index skipping ahead). Design-level failures (e.g. too
    /// few observation points to fit) are **not** errors here — they
    /// are captured in [`RoundOutput::design`], exactly as the batch
    /// pipeline would report them over the same prefix.
    pub fn apply(&mut self, event: &ServeEvent) -> Result<Option<RoundOutput>, CoreError> {
        self.stats.events += 1;
        match event {
            ServeEvent::Product { id, quality } => {
                self.trace
                    .push_product(Product {
                        id: ProductId(*id),
                        true_quality: *quality,
                    })
                    .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
                Ok(None)
            }
            ServeEvent::Join {
                id,
                class,
                campaign,
                expert,
            } => {
                self.join(*id, *class, *campaign, *expert)?;
                Ok(None)
            }
            ServeEvent::Review {
                worker,
                product,
                round,
                stars,
                length,
                upvotes,
            } => {
                self.trace
                    .push_review(dcc_trace::Review {
                        reviewer: ReviewerId(*worker),
                        product: ProductId(*product),
                        round: *round,
                        stars: *stars,
                        length_chars: *length,
                        upvotes: *upvotes,
                    })
                    .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
                self.dirty_workers.insert(ReviewerId(*worker));
                self.dirty_products.insert(ProductId(*product));
                Ok(None)
            }
            ServeEvent::Round => Ok(Some(self.round_boundary())),
        }
    }

    fn join(
        &mut self,
        id: usize,
        class: WorkerClass,
        campaign: Option<usize>,
        expert: bool,
    ) -> Result<(), CoreError> {
        if let Some(c) = campaign {
            if c > self.trace.campaigns().len() {
                return Err(CoreError::InvalidInput(format!(
                    "join for worker {id} names campaign {c} but only {} campaigns exist",
                    self.trace.campaigns().len()
                )));
            }
        }
        let worker = ReviewerId(id);
        self.trace
            .push_reviewer(Reviewer {
                id: worker,
                class,
                campaign,
                is_expert: expert,
            })
            .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
        if let Some(c) = campaign {
            if c == self.trace.campaigns().len() {
                self.trace
                    .push_campaign(Campaign {
                        id: c,
                        members: Vec::new(),
                        targets: Vec::new(),
                    })
                    .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
            }
            self.trace
                .add_campaign_member(c, worker)
                .map_err(|e| CoreError::InvalidInput(e.to_string()))?;
        }
        self.estimates.push(0.0);
        self.weights.push(0.0);
        if class.is_malicious() {
            let slot = self.uf.push();
            self.suspect_slot.insert(worker, slot);
            self.suspected.push(worker);
            self.excluded.insert(worker);
        }
        self.dirty_workers.insert(worker);
        Ok(())
    }

    // --- round boundary recompute --------------------------------------

    fn round_boundary(&mut self) -> RoundOutput {
        let round = self.rounds_seen;
        self.rounds_seen += 1;
        self.stats.rounds += 1;

        let dirty_workers = std::mem::take(&mut self.dirty_workers);
        let dirty_products = std::mem::take(&mut self.dirty_products);
        self.stats.dirty_workers += dirty_workers.len();
        self.stats.dirty_products += dirty_products.len();

        let detection = self.recompute_detection(&dirty_workers, &dirty_products);
        let resolved_before = self.stats.solve_resolved;
        let reused_before = self.stats.solve_reused;
        let design = self
            .recompute_design(&detection, &dirty_workers)
            .map_err(|e| e.to_string());

        RoundOutput {
            round,
            events: self.stats.events,
            dirty_workers: dirty_workers.len(),
            dirty_products: dirty_products.len(),
            resolved: self.stats.solve_resolved - resolved_before,
            reused: self.stats.solve_reused - reused_before,
            design,
        }
    }

    /// Incremental §IV detection: recompute only dirty slots, then
    /// assemble a [`DetectionResult`] equal (bitwise) to
    /// `run_pipeline(trace, pipeline)`.
    fn recompute_detection(
        &mut self,
        dirty_workers: &BTreeSet<ReviewerId>,
        dirty_products: &BTreeSet<ProductId>,
    ) -> DetectionResult {
        let none = BTreeSet::new();

        // 1. Consensus: raw (first pass) and refined (suspect-excluded),
        //    per dirty product. The returned change flags drive
        //    downstream worker dirtiness.
        self.raw.grow_products(self.trace.products().len());
        self.refined.grow_products(self.trace.products().len());
        let mut raw_changed: Vec<ProductId> = Vec::new();
        let mut refined_changed: Vec<ProductId> = Vec::new();
        for &pid in dirty_products {
            if self.raw.recompute_product(&self.trace, pid, &none) {
                raw_changed.push(pid);
            }
            if self
                .refined
                .recompute_product(&self.trace, pid, &self.excluded)
            {
                refined_changed.push(pid);
            }
        }

        // 2. e_mal estimates: a worker's estimate depends on their own
        //    reviews and the raw consensus of the products they
        //    reviewed.
        let mut estimate_dirty: BTreeSet<ReviewerId> = dirty_workers.clone();
        for &pid in &raw_changed {
            for rv in self.trace.reviews_for(pid) {
                estimate_dirty.insert(rv.reviewer);
            }
        }
        let mut estimate_changed: BTreeSet<ReviewerId> = BTreeSet::new();
        for &worker in &estimate_dirty {
            let fresh = self
                .pipeline
                .detector
                .estimate_one(&self.trace, &self.raw, worker);
            let slot = &mut self.estimates[worker.index()];
            if slot.to_bits() != fresh.to_bits() {
                estimate_changed.insert(worker);
            }
            *slot = fresh;
        }

        // 3. Collusion: union suspect co-reviewers on dirty products
        //    (new suspects already got their UnionFind slot at join).
        for &pid in dirty_products {
            let mut first: Option<usize> = None;
            for rv in self.trace.reviews_for(pid) {
                if let Some(&slot) = self.suspect_slot.get(&rv.reviewer) {
                    match first {
                        None => first = Some(slot),
                        Some(f) => {
                            self.uf.union(f, slot);
                        }
                    }
                }
            }
        }
        let groups: Vec<Vec<ReviewerId>> = self
            .uf
            .components()
            .into_iter()
            .map(|slots| slots.iter().map(|&s| self.suspected[s]).collect())
            .collect();
        self.collusion = CollusionReport::from_member_groups(groups);

        // 4. Eq. 5 weights: a worker's weight depends on their reviews,
        //    the refined consensus of reviewed products, their e_mal,
        //    and their partner count.
        let fresh_partners = self.collusion.partner_counts();
        let mut weight_dirty: BTreeSet<ReviewerId> = dirty_workers.clone();
        weight_dirty.extend(estimate_changed.iter().copied());
        for &pid in &refined_changed {
            for rv in self.trace.reviews_for(pid) {
                weight_dirty.insert(rv.reviewer);
            }
        }
        for (&worker, &count) in &fresh_partners {
            if self.partner_counts.get(&worker).copied() != Some(count) {
                weight_dirty.insert(worker);
            }
        }
        self.partner_counts = fresh_partners;
        for &worker in &weight_dirty {
            self.weights[worker.index()] = FeedbackWeights::compute_one(
                &self.trace,
                &self.refined,
                Some(self.estimates[worker.index()]),
                &self.partner_counts,
                self.pipeline.weights,
                worker,
            );
        }

        DetectionResult {
            consensus: self.refined.clone(),
            estimates: MaliciousEstimates::from_values(self.estimates.clone()),
            suspected: self.suspected.clone(),
            collusion: self.collusion.clone(),
            weights: FeedbackWeights::from_values(self.weights.clone()),
        }
    }

    /// Incremental §IV-B/C design: refit only changed classes, re-solve
    /// only changed subproblems, assemble exactly as the batch path.
    fn recompute_design(
        &mut self,
        detection: &DetectionResult,
        dirty_workers: &BTreeSet<ReviewerId>,
    ) -> Result<ContractDesign, CoreError> {
        // Per-worker observation points: only a worker's own reviews
        // feed their point (effort = own expertise × length).
        for &worker in dirty_workers {
            match dcc_core::worker_observation_point(&self.trace, worker) {
                Some(p) => {
                    self.worker_points.insert(worker, p);
                }
                None => {
                    self.worker_points.remove(&worker);
                }
            }
        }

        // Regroup points by class (pure bookkeeping over cached floats;
        // bit-identical to collect_class_points by construction).
        let points = self.regroup_points(detection);
        let models = self.class_models(&points)?;
        let prep = decompose_design(&self.trace, detection, &self.design, &points, &models)?;
        let (solution, degradation) = self.solve_incremental(&prep)?;
        Ok(assemble_design(detection, &prep, solution, degradation))
    }

    /// Rebuilds [`ClassPoints`] from the per-worker cache — the exact
    /// grouping of `collect_class_points`, without recomputing any
    /// float (each point was produced by the same
    /// `worker_observation_point` call the batch path makes).
    fn regroup_points(&self, detection: &DetectionResult) -> ClassPoints {
        let suspected: BTreeSet<ReviewerId> = detection.suspected.iter().copied().collect();
        let in_community: BTreeSet<ReviewerId> = detection
            .collusion
            .communities
            .iter()
            .flatten()
            .copied()
            .collect();
        let mut points = ClassPoints::default();
        for reviewer in self.trace.reviewers() {
            let Some(&(eff, fb)) = self.worker_points.get(&reviewer.id) else {
                continue;
            };
            points.worker_points.insert(reviewer.id, (eff, fb));
            if !suspected.contains(&reviewer.id) {
                points.honest.push((eff, fb));
            } else if in_community.contains(&reviewer.id) {
                points.cm.push((eff, fb));
            } else {
                points.ncm.push((eff, fb));
            }
        }
        points.community = detection
            .collusion
            .communities
            .iter()
            .map(|members| {
                members
                    .iter()
                    .filter_map(|m| points.worker_points.get(m))
                    .fold((0.0, 0.0), |acc, p| (acc.0 + p.0, acc.1 + p.1))
            })
            .collect();
        points
    }

    /// The three class models, refitting only classes whose fit-input
    /// points changed bitwise. Mirrors the fallback chain of
    /// `fit_class_models` (honest → ncm → cm) exactly; the differential
    /// harness compares the result against the batch chain bit-for-bit.
    fn class_models(&mut self, points: &ClassPoints) -> Result<ClassModels, CoreError> {
        // On any error the cache stays cleared, so the next round refits
        // from scratch (deterministically identical anyway).
        let cached = self.models_cache.take();
        let same = |sel: fn(&ClassPoints) -> &Vec<(f64, f64)>| {
            cached
                .as_ref()
                .is_some_and(|(snap, _)| points_same_bits(sel(snap), sel(points)))
        };
        let honest_same = same(|p| &p.honest);
        let ncm_same = same(|p| &p.ncm);
        let cm_same = same(|p| &p.cm);
        let community_same = same(|p| &p.community);

        let honest = if honest_same {
            self.stats.fit_reused += 1;
            cached.as_ref().map(|(_, m)| m.honest.clone()).ok_or_else(cache_vanished)?
        } else {
            self.stats.fit_refits += 1;
            let fit = self.honest_acc.fit(&points.honest)?;
            let disc = Discretization::covering(
                self.design.intervals,
                effort_region(&points.honest, &fit.psi, self.design.effort_quantile)?,
            )?;
            ClassModel { fit, disc }
        };

        let ncm = if points.ncm.len() >= 3 {
            if ncm_same {
                self.stats.fit_reused += 1;
                cached.as_ref().map(|(_, m)| m.ncm.clone()).ok_or_else(cache_vanished)?
            } else {
                self.stats.fit_refits += 1;
                let fit = self.ncm_acc.fit(&points.ncm)?;
                let disc = Discretization::covering(
                    self.design.intervals,
                    effort_region(&points.ncm, &fit.psi, self.design.effort_quantile)?,
                )?;
                ClassModel { fit, disc }
            }
        } else {
            self.stats.fit_reused += 1;
            honest.clone()
        };

        let cm = if points.community.len() >= 3 {
            if community_same {
                self.stats.fit_reused += 1;
                cached.as_ref().map(|(_, m)| m.cm.clone()).ok_or_else(cache_vanished)?
            } else {
                self.stats.fit_refits += 1;
                let fit = self.cm_acc.fit(&points.community)?;
                let disc = Discretization::covering(
                    self.design.intervals,
                    effort_region(&points.community, &fit.psi, self.design.effort_quantile)?,
                )?;
                ClassModel { fit, disc }
            }
        } else if points.cm.len() >= 3 {
            // Member-point fit keeps the ncm discretization (the batch
            // chain does the same); reuse the cached fit only when the
            // cached round took this same branch.
            let prev_branch_matches = cached
                .as_ref()
                .is_some_and(|(snap, _)| snap.community.len() < 3 && snap.cm.len() >= 3);
            let fit = if cm_same && community_same && prev_branch_matches {
                self.stats.fit_reused += 1;
                cached.as_ref().map(|(_, m)| m.cm.fit.clone()).ok_or_else(cache_vanished)?
            } else {
                self.stats.fit_refits += 1;
                self.cm_acc.fit(&points.cm)?
            };
            ClassModel {
                fit,
                disc: ncm.disc,
            }
        } else {
            self.stats.fit_reused += 1;
            ncm.clone()
        };

        let models = ClassModels { honest, ncm, cm };
        self.models_cache = Some((points.clone(), models.clone()));
        Ok(models)
    }

    /// Solves only the subproblems whose bitwise input fingerprint
    /// changed, merging cached and fresh solutions in input order.
    /// Bit-identical to a full `solve_subproblems_pooled` over all
    /// subproblems: each subproblem's arithmetic is self-contained, the
    /// total is re-summed over the merged list in input order, and the
    /// pooled solve is itself bit-identical across pool sizes.
    fn solve_incremental(
        &mut self,
        prep: &DesignPrep,
    ) -> Result<(BipSolution, DegradationReport), CoreError> {
        let params = &self.design.params;
        let policy = self.design.failure_policy;
        let param_fp = [
            params.mu.to_bits(),
            params.beta.to_bits(),
            params.omega.to_bits(),
            params.kappa.to_bits(),
            params.gamma.to_bits(),
            params.rho.to_bits(),
        ];
        let fingerprint = |sp: &dcc_core::Subproblem| -> Vec<u64> {
            let mut fp = Vec::with_capacity(12 + sp.members.len());
            fp.extend_from_slice(&param_fp);
            fp.push(sp.omega.to_bits());
            fp.push(sp.weight.to_bits());
            fp.push(sp.psi.r2().to_bits());
            fp.push(sp.psi.r1().to_bits());
            fp.push(sp.psi.r0().to_bits());
            fp.push(sp.disc.intervals() as u64);
            fp.push(sp.disc.y_max().to_bits());
            fp.extend(sp.members.iter().map(|&m| m as u64));
            fp
        };

        let mut slots: Vec<Option<(SubproblemSolution, Option<DegradedSubproblem>)>> =
            vec![None; prep.subproblems.len()];
        let mut to_solve: Vec<dcc_core::Subproblem> = Vec::new();
        let mut to_solve_at: Vec<usize> = Vec::new();
        for (i, sp) in prep.subproblems.iter().enumerate() {
            let fp = fingerprint(sp);
            match self.solve_cache.get(&sp.members) {
                Some(hit) if hit.fingerprint == fp => {
                    let mut solution = hit.solution.clone();
                    solution.id = sp.id;
                    let degraded = hit.degraded.clone().map(|mut d| {
                        d.subproblem = sp.id;
                        d
                    });
                    slots[i] = Some((solution, degraded));
                    self.stats.solve_reused += 1;
                }
                _ => {
                    to_solve.push(sp.clone());
                    to_solve_at.push(i);
                    self.stats.solve_resolved += 1;
                }
            }
        }

        if !to_solve.is_empty() {
            let (fresh, fresh_report) =
                solve_subproblems_pooled(&to_solve, params, self.pool, policy)?;
            let mut degraded_by_id: BTreeMap<usize, DegradedSubproblem> = fresh_report
                .degraded
                .into_iter()
                .map(|d| (d.subproblem, d))
                .collect();
            for (solution, &at) in fresh.solutions.into_iter().zip(&to_solve_at) {
                let degraded = degraded_by_id.remove(&solution.id);
                slots[at] = Some((solution, degraded));
            }
        }

        // Merge in input order; rebuild the cache from this round's
        // entries only, so stale member sets don't accumulate.
        let mut solutions = Vec::with_capacity(slots.len());
        let mut degraded = Vec::new();
        let mut cache = BTreeMap::new();
        for (slot, sp) in slots.into_iter().zip(&prep.subproblems) {
            let (solution, degradation) = slot.ok_or_else(|| {
                CoreError::InvalidInput("serve: a subproblem slot was never filled".into())
            })?;
            cache.insert(
                sp.members.clone(),
                CachedSolve {
                    fingerprint: fingerprint(sp),
                    solution: solution.clone(),
                    degraded: degradation.clone(),
                },
            );
            if let Some(d) = degradation {
                degraded.push(d);
            }
            solutions.push(solution);
        }
        self.solve_cache = cache;

        // The batch path sums requester utilities over the full list in
        // input order; repeat that exact fold so the total's bits match.
        let total = solutions
            .iter()
            .map(|s| s.built.requester_utility())
            .sum::<f64>();
        Ok((
            BipSolution {
                solutions,
                total_requester_utility: total,
            },
            DegradationReport { degraded },
        ))
    }

    /// The cold-batch reference over the current trace: the exact
    /// two-pass pipeline plus one-shot design the incremental path must
    /// match bit-for-bit. Used by `--verify` and the test harnesses.
    ///
    /// # Errors
    ///
    /// Propagates batch design failures (same errors the incremental
    /// path reports in [`RoundOutput::design`]).
    pub fn cold_design(&self) -> Result<ContractDesign, CoreError> {
        let detection = dcc_detect::run_pipeline(&self.trace, self.pipeline);
        dcc_core::design_contracts(&self.trace, &detection, &self.design)
    }

    /// The cold-batch detection over the current trace (diagnostic
    /// companion of [`ServeState::cold_design`]).
    pub fn cold_detection(&self) -> DetectionResult {
        dcc_detect::run_pipeline(&self.trace, self.pipeline)
    }

    /// Recomputes detection from the current dirty sets without
    /// consuming them — exposed for white-box tests; normal callers go
    /// through [`ServeState::apply`] with [`ServeEvent::Round`].
    #[doc(hidden)]
    pub fn debug_detection(&mut self) -> DetectionResult {
        let dirty_workers = self.dirty_workers.clone();
        let dirty_products = self.dirty_products.clone();
        self.dirty_workers.clear();
        self.dirty_products.clear();
        self.recompute_detection(&dirty_workers, &dirty_products)
    }
}

fn cache_vanished() -> CoreError {
    CoreError::InvalidInput("serve: class-model cache vanished mid-round".into())
}

/// A stable bitwise digest of a design: every `f64` as raw bits plus
/// the discrete fields, in a fixed order. Two designs with equal
/// digests are bit-identical in everything the requester and workers
/// observe. Used by `--verify`, the differential harness, and the
/// golden snapshot.
pub fn design_digest(design: &ContractDesign) -> Vec<u64> {
    let mut digest = vec![
        design.total_requester_utility.to_bits(),
        design.class_psis.0.r2().to_bits(),
        design.class_psis.0.r1().to_bits(),
        design.class_psis.0.r0().to_bits(),
        design.class_psis.1.r2().to_bits(),
        design.class_psis.1.r1().to_bits(),
        design.class_psis.1.r0().to_bits(),
        design.class_psis.2.r2().to_bits(),
        design.class_psis.2.r1().to_bits(),
        design.class_psis.2.r0().to_bits(),
        design.agents.len() as u64,
    ];
    for a in &design.agents {
        digest.push(a.worker.index() as u64);
        digest.push(a.subproblem as u64);
        digest.push(a.compensation.to_bits());
        digest.push(a.induced_effort.to_bits());
        digest.push(a.k_opt.map(|k| k as u64 + 1).unwrap_or(0));
        digest.push(a.delta.to_bits());
        digest.push(u64::from(a.suspected));
        digest.push(a.partners as u64);
        for &knot in a.contract.feedback_knots() {
            digest.push(knot.to_bits());
        }
        for &pay in a.contract.payments() {
            digest.push(pay.to_bits());
        }
    }
    digest.push(design.degradation.len() as u64);
    for d in &design.degradation.degraded {
        digest.push(d.subproblem as u64);
        digest.push(d.attempts as u64);
    }
    digest
}
