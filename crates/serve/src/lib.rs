//! # dcc-serve
//!
//! Incremental streaming contract service for the `dyncontract`
//! workspace: the long-running counterpart of the one-shot batch
//! pipeline (`dcc_detect::run_pipeline` → `dcc_core::design_contracts`).
//!
//! The service ingests worker-feedback events ([`ServeEvent`]: products
//! appearing, workers joining, reviews arriving, round boundaries) as
//! JSON lines — from stdin, an events file, or derived from an existing
//! trace by [`events_from_trace`] (`dcc serve --replay`). At every round
//! boundary it recomputes the full §IV detection + contract design, but
//! **only the parts whose inputs changed**:
//!
//! - consensus slots only for products with new reviews,
//! - `e_mal` / Eq. 5 weights only for workers whose dependencies moved,
//! - collusive communities via a streaming union-find instead of DFS,
//! - class ψ refits via streaming normal equations, only for classes
//!   whose observation points changed,
//! - subproblem solves only when their bitwise input fingerprint
//!   changed.
//!
//! **Correctness contract**: after *any* prefix of the event stream,
//! the incrementally maintained design is bit-identical
//! (`f64::to_bits`) to a cold batch recompute over the same prefix, at
//! every pool size. `tests/serve_differential.rs` enforces this
//! property over random streams; `--verify` enforces it in production
//! at every round.
//!
//! Crash recovery reuses the `dcc-faults` atomic-write machinery: the
//! service checkpoints its event log ([`save_checkpoint`]) and a
//! resumed run re-applies the log silently, making the concatenated
//! output of a killed + resumed run byte-identical to an uninterrupted
//! one (exercised by `make chaos-serve`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
mod event;
mod service;
mod state;

pub use ckpt::{load_checkpoint, save_checkpoint, CKPT_FORMAT};
pub use event::{events_from_trace, ServeEvent};
pub use service::{fold_digest, ServeService};
pub use state::{design_digest, RoundOutput, ServeState, ServeStats};
