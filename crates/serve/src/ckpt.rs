//! Checkpointed crash recovery for the streaming service.
//!
//! A checkpoint is the service's **event log**, not its state: the
//! service is a deterministic state machine, so re-applying the log
//! from empty rebuilds the exact state (bit-for-bit, counters
//! included) at a fraction of the format complexity. The file is a
//! single `dcc-serve-ckpt/1` JSON document written atomically
//! (tmp + rename, via [`dcc_faults::save_json_atomic`]) so a crash
//! mid-write never leaves a torn checkpoint behind.

use dcc_core::CoreError;
use dcc_faults::{save_json_atomic, Json};
use std::path::Path;

use crate::event::ServeEvent;

/// Format tag of the checkpoint document.
pub const CKPT_FORMAT: &str = "dcc-serve-ckpt/1";

/// Writes the event log as a checkpoint, atomically.
///
/// # Errors
///
/// Propagates I/O failures (the tmp file is removed on error).
pub fn save_checkpoint(path: &Path, log: &[ServeEvent]) -> Result<(), CoreError> {
    let rounds = log.iter().filter(|e| matches!(e, ServeEvent::Round)).count();
    let doc = Json::Obj(vec![
        ("format".to_string(), Json::Str(CKPT_FORMAT.to_string())),
        ("rounds_emitted".to_string(), Json::idx(rounds)),
        (
            "events".to_string(),
            Json::Arr(log.iter().map(ServeEvent::to_json).collect()),
        ),
    ]);
    save_json_atomic(path, &doc)
}

/// Loads a checkpointed event log.
///
/// # Errors
///
/// Returns [`CoreError`] for I/O failures, malformed JSON, a wrong
/// format tag, or an undecodable event.
pub fn load_checkpoint(path: &Path) -> Result<Vec<ServeEvent>, CoreError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CoreError::InvalidInput(format!("read checkpoint {}: {e}", path.display())))?;
    let doc = Json::parse(&text)?;
    let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
    if format != CKPT_FORMAT {
        return Err(CoreError::InvalidInput(format!(
            "checkpoint {} has format {format:?}, expected {CKPT_FORMAT:?}",
            path.display()
        )));
    }
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "checkpoint {} is missing the \"events\" array",
                path.display()
            ))
        })?;
    events.iter().map(ServeEvent::from_json).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
    use super::*;
    use crate::event::events_from_trace;
    use dcc_trace::SyntheticConfig;

    #[test]
    fn checkpoint_round_trips_the_event_log() {
        let trace = SyntheticConfig::small(9).generate();
        let log = events_from_trace(&trace);
        let dir = std::env::temp_dir().join("dcc-serve-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.json");
        save_checkpoint(&path, &log).expect("save");
        let back = load_checkpoint(&path).expect("load");
        assert_eq!(back, log);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_format_is_rejected() {
        let dir = std::env::temp_dir().join("dcc-serve-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"format\":\"other/9\",\"events\":[]}").expect("write");
        let err = load_checkpoint(&path).expect_err("must reject");
        assert!(err.to_string().contains("dcc-serve-ckpt/1"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
