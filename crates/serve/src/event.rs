use dcc_core::CoreError;
use dcc_faults::Json;
use dcc_trace::{TraceDataset, WorkerClass};

/// One event of the streaming protocol, carried as a JSON object per
/// line (`{"ev": "...", ...}`) over stdin, an events file, or derived
/// from an existing trace by [`events_from_trace`].
///
/// Identifiers must arrive dense: the `id` of a `product`/`join` event
/// is required to equal the number of entities of that kind seen so
/// far, and a `join` naming a campaign may either reference an existing
/// campaign index or the next unseen one (which creates it).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A product enters the platform.
    Product {
        /// Dense product id.
        id: usize,
        /// Ground-truth quality (used only for reporting, never by
        /// detection).
        quality: f64,
    },
    /// A worker joins. The ground-truth class is fixed at join time —
    /// the streaming service's incremental detection relies on suspect
    /// status never changing afterwards (`SuspectSource::GroundTruth`).
    Join {
        /// Dense reviewer id.
        id: usize,
        /// Ground-truth behavioural class.
        class: WorkerClass,
        /// Collusion campaign index for collusive workers.
        campaign: Option<usize>,
        /// Whether the platform marks this worker as an expert.
        expert: bool,
    },
    /// A worker reviews a product.
    Review {
        /// The reviewing worker's id.
        worker: usize,
        /// The reviewed product's id.
        product: usize,
        /// The logical round the review belongs to.
        round: usize,
        /// Star rating in `[1, 5]`.
        stars: f64,
        /// Review length in characters.
        length: usize,
        /// Upvotes the review received.
        upvotes: f64,
    },
    /// A round boundary: the service recomputes detection, fits, and
    /// contracts over everything ingested so far and emits one output
    /// line.
    Round,
}

fn class_tag(class: WorkerClass) -> &'static str {
    match class {
        WorkerClass::Honest => "honest",
        WorkerClass::NonCollusiveMalicious => "ncm",
        WorkerClass::CollusiveMalicious => "cm",
    }
}

fn class_of(tag: &str) -> Result<WorkerClass, CoreError> {
    match tag {
        "honest" => Ok(WorkerClass::Honest),
        "ncm" => Ok(WorkerClass::NonCollusiveMalicious),
        "cm" => Ok(WorkerClass::CollusiveMalicious),
        other => Err(CoreError::InvalidInput(format!(
            "unknown worker class {other:?} (expected honest|ncm|cm)"
        ))),
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, CoreError> {
    doc.get(key)
        .ok_or_else(|| CoreError::InvalidInput(format!("event is missing field {key:?}")))
}

fn idx_field(doc: &Json, key: &str) -> Result<usize, CoreError> {
    field(doc, key)?
        .as_idx()
        .ok_or_else(|| CoreError::InvalidInput(format!("event field {key:?} must be an index")))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, CoreError> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| CoreError::InvalidInput(format!("event field {key:?} must be a number")))
}

impl ServeEvent {
    /// Encodes the event as a single JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            ServeEvent::Product { id, quality } => Json::Obj(vec![
                ("ev".into(), Json::Str("product".into())),
                ("id".into(), Json::idx(*id)),
                ("quality".into(), Json::num(*quality)),
            ]),
            ServeEvent::Join {
                id,
                class,
                campaign,
                expert,
            } => {
                let mut obj = vec![
                    ("ev".into(), Json::Str("join".into())),
                    ("id".into(), Json::idx(*id)),
                    ("class".into(), Json::Str(class_tag(*class).into())),
                ];
                if let Some(c) = campaign {
                    obj.push(("campaign".into(), Json::idx(*c)));
                }
                obj.push(("expert".into(), Json::Bool(*expert)));
                Json::Obj(obj)
            }
            ServeEvent::Review {
                worker,
                product,
                round,
                stars,
                length,
                upvotes,
            } => Json::Obj(vec![
                ("ev".into(), Json::Str("review".into())),
                ("worker".into(), Json::idx(*worker)),
                ("product".into(), Json::idx(*product)),
                ("round".into(), Json::idx(*round)),
                ("stars".into(), Json::num(*stars)),
                ("length".into(), Json::idx(*length)),
                ("upvotes".into(), Json::num(*upvotes)),
            ]),
            ServeEvent::Round => Json::Obj(vec![("ev".into(), Json::Str("round".into()))]),
        }
    }

    /// Decodes an event from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] naming the missing or
    /// ill-typed field.
    pub fn from_json(doc: &Json) -> Result<ServeEvent, CoreError> {
        let kind = field(doc, "ev")?.as_str().ok_or_else(|| {
            CoreError::InvalidInput("event field \"ev\" must be a string".into())
        })?;
        match kind {
            "product" => Ok(ServeEvent::Product {
                id: idx_field(doc, "id")?,
                quality: num_field(doc, "quality")?,
            }),
            "join" => Ok(ServeEvent::Join {
                id: idx_field(doc, "id")?,
                class: class_of(field(doc, "class")?.as_str().ok_or_else(|| {
                    CoreError::InvalidInput("event field \"class\" must be a string".into())
                })?)?,
                campaign: match doc.get("campaign") {
                    None | Some(Json::Null) => None,
                    Some(c) => Some(c.as_idx().ok_or_else(|| {
                        CoreError::InvalidInput(
                            "event field \"campaign\" must be an index".into(),
                        )
                    })?),
                },
                expert: field(doc, "expert")?.as_bool().ok_or_else(|| {
                    CoreError::InvalidInput("event field \"expert\" must be a bool".into())
                })?,
            }),
            "review" => Ok(ServeEvent::Review {
                worker: idx_field(doc, "worker")?,
                product: idx_field(doc, "product")?,
                round: idx_field(doc, "round")?,
                stars: num_field(doc, "stars")?,
                length: idx_field(doc, "length")?,
                upvotes: num_field(doc, "upvotes")?,
            }),
            "round" => Ok(ServeEvent::Round),
            other => Err(CoreError::InvalidInput(format!(
                "unknown event kind {other:?}"
            ))),
        }
    }

    /// Parses one JSON line into an event.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed JSON or an
    /// unknown event shape.
    pub fn parse_line(line: &str) -> Result<ServeEvent, CoreError> {
        ServeEvent::from_json(&Json::parse(line)?)
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_string()
    }
}

/// Derives the canonical event stream of an existing trace, for
/// `dcc serve --replay`: all products, then all joins (both in id
/// order), then the reviews grouped by their `round` field ascending
/// (insertion order within a round), with a `Round` event closing every
/// round group. A trailing `Round` is emitted even when the trace has
/// no reviews, so a replay always produces at least one output line.
pub fn events_from_trace(trace: &TraceDataset) -> Vec<ServeEvent> {
    let mut events = Vec::new();
    for p in trace.products() {
        events.push(ServeEvent::Product {
            id: p.id.index(),
            quality: p.true_quality,
        });
    }
    for r in trace.reviewers() {
        events.push(ServeEvent::Join {
            id: r.id.index(),
            class: r.class,
            campaign: r.campaign,
            expert: r.is_expert,
        });
    }
    // Stable sort keeps insertion order within each round.
    let mut order: Vec<usize> = (0..trace.reviews().len()).collect();
    order.sort_by_key(|&i| trace.reviews()[i].round);
    let mut current_round: Option<usize> = None;
    for i in order {
        let rv = &trace.reviews()[i];
        if let Some(prev) = current_round {
            if rv.round != prev {
                events.push(ServeEvent::Round);
            }
        }
        current_round = Some(rv.round);
        events.push(ServeEvent::Review {
            worker: rv.reviewer.index(),
            product: rv.product.index(),
            round: rv.round,
            stars: rv.stars,
            length: rv.length_chars,
            upvotes: rv.upvotes,
        });
    }
    events.push(ServeEvent::Round);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcc_trace::SyntheticConfig;

    #[test]
    fn events_round_trip_through_json() {
        let trace = SyntheticConfig::small(5).generate();
        for ev in events_from_trace(&trace).iter().take(500) {
            let line = ev.to_line();
            let back = ServeEvent::parse_line(&line).expect("round trip");
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn replay_stream_has_one_round_marker_per_round() {
        let trace = SyntheticConfig::small(5).generate();
        let events = events_from_trace(&trace);
        let rounds = events
            .iter()
            .filter(|e| matches!(e, ServeEvent::Round))
            .count();
        let distinct: std::collections::BTreeSet<usize> =
            trace.reviews().iter().map(|r| r.round).collect();
        assert_eq!(rounds, distinct.len().max(1));
        assert!(matches!(events.last(), Some(ServeEvent::Round)));
    }

    #[test]
    fn malformed_events_are_rejected() {
        assert!(ServeEvent::parse_line("{}").is_err());
        assert!(ServeEvent::parse_line("{\"ev\":\"warp\"}").is_err());
        assert!(ServeEvent::parse_line("{\"ev\":\"join\",\"id\":0,\"class\":\"x\",\"expert\":true}").is_err());
        assert!(ServeEvent::parse_line("not json").is_err());
    }
}
