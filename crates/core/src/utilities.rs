//! The paper's utility functions as named, documented API.
//!
//! These are the exact objects of §III's problem formulation; the solver
//! modules compute them inline for speed, and the tests here cross-check
//! both against each other.

use crate::{Contract, ModelParams};
use dcc_numerics::Quadratic;

/// An honest worker's utility (Eq. 11):
/// `F² = ζ(x, ψ(y)) − β·y` — next round's compensation minus the effort
/// cost.
pub fn honest_worker_utility(
    params: &ModelParams,
    psi: &Quadratic,
    contract: &Contract,
    effort: f64,
) -> f64 {
    contract.compensation(psi.eval(effort)) - params.beta * effort
}

/// A (non-collusive) malicious worker's utility (Eq. 14):
/// `F³ = ζ(x, ψ(y)) − β·y + ω·ψ(y)` — Eq. 11 plus the intrinsic value ω
/// of the influence its feedback buys. Honest workers are the `ω = 0`
/// special case (§IV-C).
pub fn malicious_worker_utility(
    params: &ModelParams,
    psi: &Quadratic,
    contract: &Contract,
    effort: f64,
) -> f64 {
    honest_worker_utility(params, psi, contract, effort) + params.omega * psi.eval(effort)
}

/// A collusive community's utility (the meta-worker form of Eq. 14 under
/// Eq. 3): the community's shared contract evaluated at the aggregate
/// feedback `ψ_A(Σy)`, minus the summed effort cost, plus ω times the
/// aggregate feedback.
pub fn community_utility(
    params: &ModelParams,
    psi_aggregate: &Quadratic,
    contract: &Contract,
    member_efforts: &[f64],
) -> f64 {
    let total: f64 = member_efforts.iter().sum();
    malicious_worker_utility(params, psi_aggregate, contract, total)
}

/// The requester's per-worker utility term (the summand of Eq. 7 after
/// the §IV-B decomposition): `w·ψ(y) − μ·ζ(x, ψ(y))`.
pub fn requester_worker_utility(
    params: &ModelParams,
    weight: f64,
    psi: &Quadratic,
    contract: &Contract,
    effort: f64,
) -> f64 {
    let feedback = psi.eval(effort);
    weight * feedback - params.mu * contract.compensation(feedback)
}

/// The requester's round utility (Eq. 7): `p^t − μ·Σc` given realized
/// per-worker `(weight, feedback, compensation)` triples.
pub fn requester_round_utility(params: &ModelParams, realized: &[(f64, f64, f64)]) -> f64 {
    let benefit: f64 = realized.iter().map(|(w, q, _)| w * q).sum();
    let payments: f64 = realized.iter().map(|(_, _, c)| c).sum();
    benefit - params.mu * payments
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{best_response, ContractBuilder, Discretization};

    fn setup(omega: f64) -> (ModelParams, Discretization, Quadratic, Contract) {
        let params = ModelParams {
            mu: 1.5,
            omega,
            ..ModelParams::default()
        };
        let disc = Discretization::covering(16, 8.0).unwrap();
        let psi = Quadratic::new(-0.1, 2.2, 0.8);
        let contract = ContractBuilder::new(params, disc, psi)
            .malicious(omega)
            .weight(1.2)
            .build()
            .unwrap()
            .contract()
            .clone();
        (params, disc, psi, contract)
    }

    #[test]
    fn honest_is_omega_zero_special_case() {
        let (params, _, psi, contract) = setup(0.7);
        for y in [0.0, 1.5, 4.0, 7.0] {
            let honest_params = params.for_honest();
            assert_eq!(
                malicious_worker_utility(&honest_params, &psi, &contract, y),
                honest_worker_utility(&honest_params, &psi, &contract, y)
            );
            assert!(
                malicious_worker_utility(&params, &psi, &contract, y)
                    >= honest_worker_utility(&params, &psi, &contract, y)
            );
        }
    }

    #[test]
    fn matches_best_response_bookkeeping() {
        let (params, _, psi, contract) = setup(0.4);
        let br = best_response(&params, &psi, &contract).unwrap();
        let direct = malicious_worker_utility(&params, &psi, &contract, br.effort);
        assert!((direct - br.utility).abs() < 1e-9, "{direct} vs {}", br.utility);
        // And the best response indeed maximizes the named utility on a
        // grid.
        for i in 0..=200 {
            let y = 8.0 * i as f64 / 200.0;
            assert!(
                malicious_worker_utility(&params, &psi, &contract, y) <= br.utility + 1e-9,
                "utility at {y} beats the best response"
            );
        }
    }

    #[test]
    fn community_utility_sums_member_efforts() {
        let (params, _, psi, contract) = setup(0.4);
        let joint = community_utility(&params, &psi, &contract, &[1.0, 2.0, 0.5]);
        let solo = malicious_worker_utility(&params, &psi, &contract, 3.5);
        assert!((joint - solo).abs() < 1e-12, "meta-worker must see total effort");
    }

    #[test]
    fn requester_utilities_consistent() {
        let (params, _, psi, contract) = setup(0.0);
        let y = 3.0;
        let q = psi.eval(y);
        let c = contract.compensation(q);
        let per_worker = requester_worker_utility(&params, 1.2, &psi, &contract, y);
        let round = requester_round_utility(&params, &[(1.2, q, c)]);
        assert!((per_worker - round).abs() < 1e-12);
        // Aggregation over several workers is the sum of the terms.
        let total = requester_round_utility(&params, &[(1.2, q, c), (0.5, q, c)]);
        let expected = per_worker + requester_worker_utility(&params, 0.5, &psi, &contract, y);
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_round_is_zero() {
        let params = ModelParams::default();
        assert_eq!(requester_round_utility(&params, &[]), 0.0);
    }
}
