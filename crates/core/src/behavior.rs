use dcc_numerics::Quadratic;

/// How a worker's true conduct evolves over the repeated game — the
/// "more sophisticated malicious workers" the paper's §VII names as
/// future work. The base model ([`ConductModel::Stationary`]) is what
/// §II assumes; the other variants are the attack patterns §I mentions
/// (malicious behavior that is "temporary or targeted in scope").
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum ConductModel {
    /// The paper's base model: the same (ω, ψ, weight) every round.
    #[default]
    Stationary,
    /// Reputation farming: behaves honestly (ω = 0, full weight) for the
    /// first `honest_rounds` rounds, then attacks — its feedback weight
    /// to the requester drops to `attack_weight` (possibly negative) and
    /// it gains intrinsic motivation `attack_omega`.
    Deceptive {
        /// Rounds of honest-looking behaviour before the attack.
        honest_rounds: usize,
        /// The worker's ω once attacking (Eq. 14).
        attack_omega: f64,
        /// The worker's true feedback value to the requester once
        /// attacking.
        attack_weight: f64,
    },
    /// Burnout / drift: marginal productivity decays geometrically, i.e.
    /// round `t` uses `ψ_t(y) = r₂y² + (r₁·decay^t)y + r₀`.
    Drifting {
        /// Per-round multiplicative decay of the linear coefficient
        /// (`0 < decay ≤ 1`).
        decay_per_round: f64,
    },
    /// Outside option: the worker only participates in rounds where its
    /// expected utility meets a reservation level.
    Reservation {
        /// Minimum per-round utility required to participate.
        reserve_utility: f64,
    },
}

impl ConductModel {
    /// The worker's ω in round `t`, given its designed/base ω.
    pub fn omega_at(&self, t: usize, base_omega: f64) -> f64 {
        match *self {
            ConductModel::Deceptive {
                honest_rounds,
                attack_omega,
                ..
            } => {
                if t < honest_rounds {
                    0.0
                } else {
                    attack_omega
                }
            }
            _ => base_omega,
        }
    }

    /// The worker's effort function in round `t`, given its base ψ.
    pub fn psi_at(&self, t: usize, base_psi: &Quadratic) -> Quadratic {
        match *self {
            ConductModel::Drifting { decay_per_round } => {
                let decay = decay_per_round.clamp(0.0, 1.0).powi(t as i32);
                Quadratic::new(base_psi.r2(), base_psi.r1() * decay, base_psi.r0())
            }
            _ => *base_psi,
        }
    }

    /// The worker's *true* feedback weight to the requester in round `t`,
    /// given the weight it earned in the design phase.
    pub fn weight_at(&self, t: usize, base_weight: f64) -> f64 {
        match *self {
            ConductModel::Deceptive {
                honest_rounds,
                attack_weight,
                ..
            } => {
                if t < honest_rounds {
                    base_weight
                } else {
                    attack_weight
                }
            }
            _ => base_weight,
        }
    }

    /// Whether the worker participates given its expected utility this
    /// round.
    pub fn participates(&self, expected_utility: f64) -> bool {
        match *self {
            ConductModel::Reservation { reserve_utility } => {
                expected_utility >= reserve_utility
            }
            _ => true,
        }
    }

    /// `true` iff this conduct can change over rounds (anything but
    /// [`ConductModel::Stationary`]).
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, ConductModel::Stationary)
    }
}


#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn psi() -> Quadratic {
        Quadratic::new(-0.1, 2.0, 0.5)
    }

    #[test]
    fn stationary_never_changes() {
        let c = ConductModel::Stationary;
        assert!(!c.is_dynamic());
        for t in [0, 5, 100] {
            assert_eq!(c.omega_at(t, 0.7), 0.7);
            assert_eq!(c.psi_at(t, &psi()), psi());
            assert_eq!(c.weight_at(t, 1.5), 1.5);
            assert!(c.participates(-100.0));
        }
    }

    #[test]
    fn deceptive_switches_after_honest_phase() {
        let c = ConductModel::Deceptive {
            honest_rounds: 3,
            attack_omega: 0.8,
            attack_weight: -0.5,
        };
        assert!(c.is_dynamic());
        assert_eq!(c.omega_at(2, 0.0), 0.0);
        assert_eq!(c.weight_at(2, 1.5), 1.5);
        assert_eq!(c.omega_at(3, 0.0), 0.8);
        assert_eq!(c.weight_at(3, 1.5), -0.5);
    }

    #[test]
    fn drifting_decays_marginal_productivity() {
        let c = ConductModel::Drifting {
            decay_per_round: 0.9,
        };
        let p0 = c.psi_at(0, &psi());
        let p5 = c.psi_at(5, &psi());
        assert_eq!(p0, psi());
        assert!((p5.r1() - 2.0 * 0.9f64.powi(5)).abs() < 1e-12);
        assert_eq!(p5.r2(), psi().r2());
        assert_eq!(p5.r0(), psi().r0());
    }

    #[test]
    fn reservation_gates_participation() {
        let c = ConductModel::Reservation {
            reserve_utility: 1.0,
        };
        assert!(c.participates(1.0));
        assert!(!c.participates(0.99));
    }
}
