use crate::{
    best_response, bounds, BestResponse, Contract, CoreError, Discretization, ModelParams,
};
use dcc_numerics::Quadratic;

/// Diagnostics of one candidate contract evaluated during the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateDiagnostics {
    /// Target interval `k` (`None` for the zero-contract candidate).
    pub k: Option<usize>,
    /// The worker's actual best-response effort under the candidate.
    pub effort: f64,
    /// Compensation the requester pays at that response.
    pub compensation: f64,
    /// Requester utility `w·q − μ·c` at that response.
    pub requester_utility: f64,
    /// Whether the slope recurrence needed clamping (large ω).
    pub clamped: bool,
}

/// The outcome of the §IV-C contract construction for one worker (or one
/// collusive community treated as a meta-worker).
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltContract {
    contract: Contract,
    k_opt: Option<usize>,
    response: BestResponse,
    requester_utility: f64,
    weight: f64,
    diagnostics: Vec<CandidateDiagnostics>,
    utility_bounds: Option<(f64, f64)>,
}

impl BuiltContract {
    /// The selected contract.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// The selected target interval `k_opt` (Eq. 43), or `None` when the
    /// zero contract won (the requester declines to incentivize).
    pub fn k_opt(&self) -> Option<usize> {
        self.k_opt
    }

    /// The worker's verified best response to the selected contract.
    pub fn response(&self) -> &BestResponse {
        &self.response
    }

    /// The effort level the contract induces.
    pub fn induced_effort(&self) -> f64 {
        self.response.effort
    }

    /// The compensation paid at the induced effort.
    pub fn compensation(&self) -> f64 {
        self.response.compensation
    }

    /// The worker's utility at the induced effort.
    pub fn worker_utility(&self) -> f64 {
        self.response.utility
    }

    /// The requester's per-round utility from this worker,
    /// `w·q − μ·c`.
    pub fn requester_utility(&self) -> f64 {
        self.requester_utility
    }

    /// The feedback weight the contract was designed for.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Per-candidate diagnostics (one entry per evaluated `k`, plus the
    /// zero contract), in evaluation order.
    pub fn diagnostics(&self) -> &[CandidateDiagnostics] {
        &self.diagnostics
    }

    /// The Theorem 4.1 bracket `(lower, upper)` on the requester utility,
    /// when a non-zero candidate was selected for an honest worker
    /// (`ω = 0`); `None` for the zero contract (the theorem speaks about
    /// induced intervals).
    pub fn utility_bounds(&self) -> Option<(f64, f64)> {
        self.utility_bounds
    }

    /// Internal constructor for degraded-mode results: a contract that
    /// did *not* come out of the §IV-C search (a fixed-payment fallback
    /// or an exclusion) with caller-supplied conservative accounting. No
    /// diagnostics, no `k_opt`, no Theorem 4.1 bracket.
    pub(crate) fn degraded(
        contract: Contract,
        response: BestResponse,
        requester_utility: f64,
        weight: f64,
    ) -> Self {
        BuiltContract {
            contract,
            k_opt: None,
            response,
            requester_utility,
            weight,
            diagnostics: Vec::new(),
            utility_bounds: None,
        }
    }
}

/// Builder implementing the full §IV-C algorithm for a single subproblem:
/// construct candidate contracts `ξ^(1)…ξ^(m)` (plus the zero contract),
/// verify each by computing the worker's exact best response, and select
/// the candidate maximizing the requester's utility `w·q − μ·c`.
///
/// # Example
///
/// ```
/// use dcc_core::{ContractBuilder, Discretization, ModelParams};
/// use dcc_numerics::Quadratic;
///
/// # fn main() -> Result<(), dcc_core::CoreError> {
/// let psi = Quadratic::new(-0.05, 2.0, 0.5);
/// let params = ModelParams { mu: 1.5, ..ModelParams::default() };
/// let built = ContractBuilder::new(params, Discretization::new(16, 0.625)?, psi)
///     .malicious(0.5)
///     .weight(0.8)
///     .build()?;
/// assert!(built.requester_utility().is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ContractBuilder {
    params: ModelParams,
    disc: Discretization,
    psi: Quadratic,
    weight: f64,
    include_zero: bool,
    margin: f64,
}

impl ContractBuilder {
    /// Starts a builder for a worker with effort function `psi` under the
    /// given model parameters and discretization. The worker's ω is taken
    /// from `params.omega` unless overridden by [`ContractBuilder::honest`]
    /// or [`ContractBuilder::malicious`].
    pub fn new(params: ModelParams, disc: Discretization, psi: Quadratic) -> Self {
        ContractBuilder {
            params,
            disc,
            psi,
            weight: 1.0,
            include_zero: true,
            margin: 0.0,
        }
    }

    /// Sets the incentive margin `∈ [0, 1)` — how far into each Case-III
    /// window the slopes sit above the paper's cost-minimal recurrence.
    /// `0` (the default) is the paper's construction; positive values pay
    /// more but tolerate unmodelled drift in the worker's productivity
    /// (see [`crate::build_candidate_with_margin`]).
    pub fn incentive_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Designs for an honest worker (`ω = 0`, Eq. 11).
    pub fn honest(mut self) -> Self {
        self.params.omega = 0.0;
        self
    }

    /// Designs for a malicious worker with feedback weight `omega` in its
    /// utility (Eq. 14). A collusive community is the same with the
    /// community's aggregate effort function.
    pub fn malicious(mut self, omega: f64) -> Self {
        self.params.omega = omega;
        self
    }

    /// Sets the requester's feedback weight `w_i` for this worker (Eq. 5).
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Whether to also evaluate the zero contract (paying nothing) as a
    /// candidate; defaults to `true`. Disable to force the algorithm to
    /// pick one of the paper's `ξ^(k)` candidates even at a loss.
    pub fn include_zero_candidate(mut self, include: bool) -> Self {
        self.include_zero = include;
        self
    }

    /// Runs the search and returns the best contract.
    ///
    /// # Errors
    ///
    /// Propagates parameter, effort-function and numeric errors; also
    /// rejects a non-finite weight.
    pub fn build(self) -> Result<BuiltContract, CoreError> {
        if !self.weight.is_finite() {
            return Err(CoreError::InvalidInput(format!(
                "weight must be finite, got {}",
                self.weight
            )));
        }
        self.params.validate()?;
        crate::effort::validate_effort_function(&self.psi, &self.disc)?;

        let mut diagnostics = Vec::with_capacity(self.disc.intervals() + 1);
        let mut best: Option<(Option<usize>, Contract, BestResponse, f64, bool)> = None;

        let mut consider = |k: Option<usize>,
                            contract: Contract,
                            clamped: bool,
                            best: &mut Option<(Option<usize>, Contract, BestResponse, f64, bool)>|
         -> Result<(), CoreError> {
            let response = best_response(&self.params, &self.psi, &contract)?;
            let utility = self.weight * response.feedback - self.params.mu * response.compensation;
            diagnostics.push(CandidateDiagnostics {
                k,
                effort: response.effort,
                compensation: response.compensation,
                requester_utility: utility,
                clamped,
            });
            let better = match best {
                None => true,
                Some((_, _, prev_resp, prev_u, _)) => {
                    utility > *prev_u + 1e-12
                        || (utility > *prev_u - 1e-12
                            && response.compensation < prev_resp.compensation - 1e-12)
                }
            };
            if better {
                *best = Some((k, contract, response, utility, clamped));
            }
            Ok(())
        };

        if self.include_zero {
            let d_lo = self.psi.eval(0.0);
            let d_hi = self.psi.eval(self.disc.y_max());
            let zero = Contract::zero(d_lo, d_hi)?;
            consider(None, zero, false, &mut best)?;
        }
        for k in 1..=self.disc.intervals() {
            let cand = crate::build_candidate_with_margin(
                &self.params,
                &self.disc,
                &self.psi,
                k,
                self.margin,
            )?;
            consider(Some(k), cand.contract, cand.clamped, &mut best)?;
        }

        let (k_opt, contract, response, requester_utility, _) =
            best.ok_or_else(|| {
            CoreError::InvalidContract("no candidate contract could be evaluated".into())
        })?;
        let utility_bounds = match k_opt {
            Some(k) if dcc_numerics::exact_eq(self.params.omega, 0.0) => Some((
                bounds::requester_utility_lower_bound(
                    self.weight,
                    &self.params,
                    &self.disc,
                    &self.psi,
                    k,
                ),
                bounds::requester_utility_upper_bound(
                    self.weight,
                    &self.params,
                    &self.disc,
                    &self.psi,
                ),
            )),
            _ => None,
        };

        Ok(BuiltContract {
            contract,
            k_opt,
            response,
            requester_utility,
            weight: self.weight,
            diagnostics,
            utility_bounds,
        })
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn setup() -> (ModelParams, Discretization, Quadratic) {
        let params = ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        };
        let disc = Discretization::new(16, 0.625).unwrap();
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        (params, disc, psi)
    }

    #[test]
    fn honest_build_selects_interior_interval() {
        let (params, disc, psi) = setup();
        let built = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(1.0)
            .build()
            .unwrap();
        // With mu = 1.5, w = 1: marginal value w*psi'(y) crosses mu*beta
        // at psi'(y*) = 1.5 -> y* = 5. Expect an interior k near 5/0.625 = 8.
        let k = built.k_opt().expect("non-zero contract expected");
        assert!((6..=10).contains(&k), "k_opt = {k} not near the interior optimum");
        assert!(built.induced_effort() > 3.0 && built.induced_effort() < 7.0);
        assert!(built.requester_utility() > 0.0);
        let (lo, hi) = built.utility_bounds().unwrap();
        assert!(lo <= built.requester_utility() + 1e-9);
        assert!(built.requester_utility() <= hi + 1e-9);
    }

    #[test]
    fn diagnostics_cover_all_candidates() {
        let (params, disc, psi) = setup();
        let built = ContractBuilder::new(params, disc, psi).honest().build().unwrap();
        assert_eq!(built.diagnostics().len(), disc.intervals() + 1);
        // The selected utility matches the best diagnostic.
        let best = built
            .diagnostics()
            .iter()
            .map(|d| d.requester_utility)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((best - built.requester_utility()).abs() < 1e-9);
    }

    #[test]
    fn negative_weight_selects_zero_contract() {
        let (params, disc, psi) = setup();
        let built = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(-0.5)
            .build()
            .unwrap();
        assert_eq!(built.k_opt(), None, "never pay a harmful worker");
        assert_eq!(built.compensation(), 0.0);
        assert_eq!(built.induced_effort(), 0.0);
    }

    #[test]
    fn zero_weight_malicious_still_self_motivates() {
        let (params, disc, psi) = setup();
        let built = ContractBuilder::new(params, disc, psi)
            .malicious(1.0)
            .weight(0.0)
            .build()
            .unwrap();
        assert_eq!(built.k_opt(), None);
        assert!(built.induced_effort() > 0.0, "autonomous effort expected");
        assert_eq!(built.compensation(), 0.0);
    }

    #[test]
    fn higher_weight_never_lowers_requester_utility() {
        let (params, disc, psi) = setup();
        let mut prev = f64::NEG_INFINITY;
        for w in [0.2, 0.5, 1.0, 2.0, 4.0] {
            let built = ContractBuilder::new(params, disc, psi)
                .honest()
                .weight(w)
                .build()
                .unwrap();
            assert!(built.requester_utility() >= prev - 1e-9);
            prev = built.requester_utility();
        }
    }

    #[test]
    fn higher_weight_weakly_raises_induced_effort() {
        let (params, disc, psi) = setup();
        let mut prev = 0.0;
        for w in [0.5, 1.0, 2.0, 4.0] {
            let built = ContractBuilder::new(params, disc, psi)
                .honest()
                .weight(w)
                .build()
                .unwrap();
            assert!(
                built.induced_effort() >= prev - 1e-9,
                "effort should rise with weight"
            );
            prev = built.induced_effort();
        }
    }

    #[test]
    fn utility_improves_or_holds_with_finer_partition() {
        // The Fig. 6 convergence property: refining the partition gives
        // the algorithm strictly more candidates near the continuum
        // optimum, so the achieved utility approaches the upper bound.
        let (params, _, psi) = setup();
        let mut last = f64::NEG_INFINITY;
        for m in [4, 8, 16, 32, 64] {
            let disc = Discretization::covering(m, 10.0).unwrap();
            let built = ContractBuilder::new(params, disc, psi)
                .honest()
                .weight(1.0)
                .build()
                .unwrap();
            assert!(
                built.requester_utility() >= last - 0.05,
                "m={m}: utility regressed from {last} to {}",
                built.requester_utility()
            );
            last = built.requester_utility();
        }
        // At m = 64 the utility must be close to its upper bound.
        let disc = Discretization::covering(64, 10.0).unwrap();
        let built = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(1.0)
            .build()
            .unwrap();
        let (_, hi) = built.utility_bounds().unwrap();
        assert!(
            built.requester_utility() > 0.8 * hi,
            "utility {} far from upper bound {hi}",
            built.requester_utility()
        );
    }

    #[test]
    fn malicious_worker_cheaper_than_honest() {
        let (params, disc, psi) = setup();
        let honest = ContractBuilder::new(params, disc, psi)
            .honest()
            .weight(1.0)
            .build()
            .unwrap();
        let malicious = ContractBuilder::new(params, disc, psi)
            .malicious(0.5)
            .weight(1.0)
            .build()
            .unwrap();
        assert!(
            malicious.requester_utility() >= honest.requester_utility() - 1e-9,
            "self-motivated worker should be no worse for the requester at equal weight"
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (params, disc, psi) = setup();
        assert!(ContractBuilder::new(params, disc, psi)
            .weight(f64::NAN)
            .build()
            .is_err());
        let bad = Quadratic::new(0.1, 1.0, 0.0);
        assert!(ContractBuilder::new(params, disc, bad).build().is_err());
    }
}
