use crate::{
    bounds, BestResponse, BuiltContract, Contract, ContractBuilder, CoreError, Discretization,
    ModelParams,
};
use dcc_numerics::Quadratic;
use dcc_obs::{names, Metrics};
// dcc-lint: allow(wall-clock, reason = "subproblem timings are measured here and routed into dcc-obs via span_at")
use std::time::Instant;

/// What to do when a single subproblem's contract construction fails
/// (corrupted weight, degenerate ψ fit, numeric breakdown).
///
/// The decomposition of §IV-B makes subproblems independent, so a
/// failure can be isolated to the worker (or community) it belongs to
/// instead of aborting the whole design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailurePolicy {
    /// Propagate the first failure (the strict pre-existing behaviour).
    #[default]
    Abort,
    /// Give the failing subproblem's workers a fixed-payment contract —
    /// the platform-status-quo baseline of §I — paying `amount` per
    /// round (clamped into the Lemma 4.2/4.3 compensation bracket when
    /// the subproblem's ψ still supports evaluating it).
    FallbackBaseline {
        /// Requested per-round payment before clamping.
        amount: f64,
    },
    /// Exclude the failing subproblem's workers from the system (the
    /// Fig. 8c exclusion baseline): zero contract, no pay, no benefit.
    Skip,
}

/// How one degraded subproblem was handled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationAction {
    /// Replaced by a fixed-payment baseline at the (clamped) amount.
    Fallback {
        /// The per-round payment actually written into the contract.
        amount: f64,
    },
    /// Excluded from the system under the zero contract.
    Skipped,
}

/// One subproblem the solver could not design optimally.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSubproblem {
    /// The failing subproblem's id.
    pub subproblem: usize,
    /// Worker indices it covers.
    pub members: Vec<usize>,
    /// The original solver error, rendered.
    pub reason: String,
    /// Solver attempts made before giving up: the attempt count of a
    /// [`CoreError::Degraded`] produced by `dcc-faults`'
    /// retry-with-backoff, or 1 for errors that were never retried.
    pub attempts: usize,
    /// What the policy substituted.
    pub action: DegradationAction,
    /// The substituted requester utility minus the Theorem 4.1 upper
    /// bound for this subproblem — how much was given up relative to the
    /// best any contract could have achieved. `None` when the bound
    /// itself is not computable (e.g. a non-finite weight or ψ).
    pub utility_delta: Option<f64>,
}

/// Per-subproblem record of every degradation a solve performed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DegradationReport {
    /// The degraded subproblems, in input order.
    pub degraded: Vec<DegradedSubproblem>,
}

impl DegradationReport {
    /// Whether every subproblem was solved optimally.
    pub fn is_empty(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Number of degraded subproblems.
    pub fn len(&self) -> usize {
        self.degraded.len()
    }

    /// The record for one subproblem id, if it degraded.
    pub fn for_subproblem(&self, id: usize) -> Option<&DegradedSubproblem> {
        self.degraded.iter().find(|d| d.subproblem == id)
    }
}

/// One subproblem of the §IV-B decomposition: the contract design for a
/// single worker, or for a collusive community treated as one
/// "meta-worker" (Eq. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Subproblem {
    /// Caller-chosen identifier (e.g. a worker id or community id).
    pub id: usize,
    /// Worker indices covered by this subproblem (singleton for
    /// individual workers; all members for a community).
    pub members: Vec<usize>,
    /// The feedback weight ω in the follower's utility: 0 for honest
    /// workers, `params.omega` for malicious ones.
    pub omega: f64,
    /// The requester's feedback weight `w` for this subproblem (Eq. 5;
    /// communities use their members' mean).
    pub weight: f64,
    /// The (fitted) effort function — the community's aggregate response
    /// for meta-workers.
    pub psi: Quadratic,
    /// The effort-region discretization for this subproblem.
    pub disc: Discretization,
}

/// The solved contract for one subproblem.
#[derive(Debug, Clone, PartialEq)]
pub struct SubproblemSolution {
    /// The subproblem's identifier.
    pub id: usize,
    /// Worker indices covered.
    pub members: Vec<usize>,
    /// The §IV-C result.
    pub built: BuiltContract,
}

/// The assembled solution of the decomposed bilevel program.
#[derive(Debug, Clone, PartialEq)]
pub struct BipSolution {
    /// Per-subproblem solutions, in input order.
    pub solutions: Vec<SubproblemSolution>,
    /// The requester's total per-round utility `Σ (w_i q_i − μ c_i)`.
    pub total_requester_utility: f64,
}

impl BipSolution {
    /// The solution covering worker `worker_index`, if any.
    pub fn for_worker(&self, worker_index: usize) -> Option<&SubproblemSolution> {
        self.solutions
            .iter()
            .find(|s| s.members.contains(&worker_index))
    }
}

/// Solves every subproblem of the decomposition (§IV-B) and assembles the
/// requester's total utility.
///
/// The subproblems are independent by construction — the requester's
/// objective separates across non-collusive workers and communities — so
/// with `parallel = true` they are solved on scoped threads
/// (`std::thread::scope`), one chunk per available core.
///
/// Equivalent to [`solve_subproblems_with`] under
/// [`FailurePolicy::Abort`].
///
/// # Errors
///
/// Propagates the first per-subproblem error (invalid ψ, parameters, …),
/// identified by the subproblem id in the message.
pub fn solve_subproblems(
    subproblems: &[Subproblem],
    params: &ModelParams,
    parallel: bool,
) -> Result<BipSolution, CoreError> {
    solve_subproblems_with(subproblems, params, parallel, FailurePolicy::Abort)
        .map(|(solution, _)| solution)
}

/// [`solve_subproblems`] with a [`FailurePolicy`] deciding what happens
/// when an individual subproblem cannot be designed: abort everything,
/// fall back to a fixed-payment baseline for that worker, or exclude the
/// worker. Degradations are itemized in the returned
/// [`DegradationReport`] (empty when every subproblem solved optimally).
///
/// `parallel = true` resolves the pool size from
/// [`std::thread::available_parallelism`]; use
/// [`solve_subproblems_pooled`] to pin an exact worker count.
///
/// # Errors
///
/// Under [`FailurePolicy::Abort`], the first per-subproblem error in
/// input order; under the other policies, solver errors are absorbed
/// into the report and only panics in the worker threads propagate.
pub fn solve_subproblems_with(
    subproblems: &[Subproblem],
    params: &ModelParams,
    parallel: bool,
    policy: FailurePolicy,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    let pool = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        1
    };
    solve_subproblems_pooled(subproblems, params, pool, policy)
}

/// [`solve_subproblems_with`] with an explicit worker-pool size.
///
/// The §IV-B decomposition makes subproblems independent, so they are
/// fanned out across `pool` scoped threads (`std::thread::scope`), each
/// taking one contiguous chunk of the input. The merge order is
/// deterministic — chunk results are concatenated in input order and
/// re-zipped with the subproblems — so the output is **bit-identical**
/// to the sequential path (`pool = 1`) for every pool size: each
/// subproblem's arithmetic is self-contained and no reduction reorders
/// floating-point operations.
///
/// `pool` is clamped to `[1, subproblems.len()]`; `pool <= 1` solves on
/// the calling thread without spawning.
///
/// # Errors
///
/// Same as [`solve_subproblems_with`].
pub fn solve_subproblems_pooled(
    subproblems: &[Subproblem],
    params: &ModelParams,
    pool: usize,
    policy: FailurePolicy,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    let workers = clamp_pool(pool, subproblems.len());
    let results = fan_out(subproblems, workers, |sp| solve_one(sp, params));
    assemble_solutions(subproblems, results, params, policy)
}

/// [`solve_subproblems_pooled`] with per-subproblem observability: solve
/// wall-clock time, candidate-evaluation counts, and degradation events
/// flow into `metrics` (see `dcc_obs::names`).
///
/// Determinism is preserved under threading by construction — worker
/// threads only *measure*; all recording happens post-merge on the
/// calling thread, in input order, so the metric stream is identical for
/// every pool size. When `metrics` is disabled this delegates to the
/// uninstrumented path (no clock reads, no attribute construction), so
/// the hot path stays zero-cost with a `NoopRecorder`.
///
/// # Errors
///
/// Same as [`solve_subproblems_pooled`]. Under [`FailurePolicy::Abort`]
/// a failing solve records nothing.
pub fn solve_subproblems_recorded(
    subproblems: &[Subproblem],
    params: &ModelParams,
    pool: usize,
    policy: FailurePolicy,
    metrics: &Metrics,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    if !metrics.enabled() {
        return solve_subproblems_pooled(subproblems, params, pool, policy);
    }
    let workers = clamp_pool(pool, subproblems.len());
    let timed = fan_out(subproblems, workers, |sp| {
        // dcc-lint: allow(wall-clock, reason = "per-subproblem timing fed to metrics.span_at below")
        let start = Instant::now();
        let result = solve_one(sp, params);
        (result, start.elapsed())
    });
    let (results, times): (Vec<_>, Vec<_>) = timed.into_iter().unzip();
    let (solution, report) = assemble_solutions(subproblems, results, params, policy)?;

    metrics.gauge(names::GAUGE_SOLVE_POOL, workers as f64);
    metrics.add(names::COUNTER_SOLVE_SUBPROBLEMS, subproblems.len() as u64);
    for ((sp, sol), elapsed) in subproblems.iter().zip(&solution.solutions).zip(&times) {
        let degraded = report.for_subproblem(sp.id).is_some();
        metrics.span_at(
            names::SPAN_SUBPROBLEM,
            &[
                ("id", sp.id.into()),
                ("iterations", sol.built.diagnostics().len().into()),
                ("degraded", degraded.into()),
            ],
            *elapsed,
        );
        metrics.observe(names::HIST_SUBPROBLEM_US, elapsed.as_secs_f64() * 1e6);
    }
    for d in &report.degraded {
        metrics.add(names::COUNTER_SOLVE_DEGRADED, 1);
        let by_action = match d.action {
            DegradationAction::Fallback { .. } => names::COUNTER_SOLVE_DEGRADED_FALLBACK,
            DegradationAction::Skipped => names::COUNTER_SOLVE_DEGRADED_SKIPPED,
        };
        metrics.add(by_action, 1);
    }
    Ok((solution, report))
}

/// Solves one subproblem via the §IV-C candidate algorithm.
fn solve_one(sp: &Subproblem, params: &ModelParams) -> Result<SubproblemSolution, CoreError> {
    let built = ContractBuilder::new(*params, sp.disc, sp.psi)
        .malicious(sp.omega)
        .weight(sp.weight)
        .build()
        .map_err(|e| CoreError::InvalidInput(format!("subproblem {} failed: {e}", sp.id)))?;
    Ok(SubproblemSolution {
        id: sp.id,
        members: sp.members.clone(),
        built,
    })
}

/// `pool` clamped to `[1, n]` (with `n = 0` treated as 1).
pub(crate) fn clamp_pool(pool: usize, n: usize) -> usize {
    pool.max(1).min(n.max(1))
}

/// The deterministic chunked fan-out shared by the plain and recorded
/// solves: `workers` scoped threads each take one contiguous chunk and
/// the per-chunk outputs are concatenated back in input order.
fn fan_out<T, F>(subproblems: &[Subproblem], workers: usize, per_item: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Subproblem) -> T + Sync,
{
    if workers > 1 && subproblems.len() > 1 {
        let chunk_size = subproblems.len().div_ceil(workers);
        let per_ref = &per_item;
        std::thread::scope(|scope| {
            let handles: Vec<_> = subproblems
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(per_ref).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .collect()
        })
    } else {
        subproblems.iter().map(per_item).collect()
    }
}

/// Attempt count a solver error carries: a retried-then-degraded error
/// knows how many tries were made; everything else failed on its first.
pub(crate) fn attempts_of(err: &CoreError) -> usize {
    match err {
        CoreError::Degraded { attempts, .. } => (*attempts).max(1),
        _ => 1,
    }
}

/// Applies the failure policy to the per-subproblem results (in input
/// order, so Abort reports the first failure) and sums the requester's
/// objective.
fn assemble_solutions(
    subproblems: &[Subproblem],
    results: Vec<Result<SubproblemSolution, CoreError>>,
    params: &ModelParams,
    policy: FailurePolicy,
) -> Result<(BipSolution, DegradationReport), CoreError> {
    let mut solutions = Vec::with_capacity(subproblems.len());
    let mut report = DegradationReport::default();
    for (sp, result) in subproblems.iter().zip(results) {
        match result {
            Ok(solution) => solutions.push(solution),
            Err(err) => match policy {
                FailurePolicy::Abort => return Err(err),
                FailurePolicy::FallbackBaseline { amount } => {
                    let (solution, paid) = fallback_solution(sp, params, amount);
                    report.degraded.push(DegradedSubproblem {
                        subproblem: sp.id,
                        members: sp.members.clone(),
                        reason: err.to_string(),
                        attempts: attempts_of(&err),
                        action: DegradationAction::Fallback { amount: paid },
                        utility_delta: utility_delta(sp, params, solution.built.requester_utility()),
                    });
                    solutions.push(solution);
                }
                FailurePolicy::Skip => {
                    let solution = skip_solution(sp);
                    report.degraded.push(DegradedSubproblem {
                        subproblem: sp.id,
                        members: sp.members.clone(),
                        reason: err.to_string(),
                        attempts: attempts_of(&err),
                        action: DegradationAction::Skipped,
                        utility_delta: utility_delta(sp, params, 0.0),
                    });
                    solutions.push(solution);
                }
            },
        }
    }

    let total = solutions
        .iter()
        .map(|s| s.built.requester_utility())
        .sum();
    Ok((
        BipSolution {
            solutions,
            total_requester_utility: total,
        },
        report,
    ))
}

/// The feedback domain `[ψ(0), ψ(y_max)]` of a subproblem's contract,
/// with a safe unit fallback when ψ is too corrupted to evaluate.
fn feedback_domain(sp: &Subproblem) -> (f64, f64) {
    let d_lo = sp.psi.eval(0.0);
    let d_hi = sp.psi.eval(sp.disc.y_max());
    if d_lo.is_finite() && d_hi.is_finite() && d_lo < d_hi {
        (d_lo, d_hi)
    } else {
        (0.0, 1.0)
    }
}

/// Builds the fixed-payment fallback for a failed subproblem.
///
/// The payment is clamped into the Lemma 4.2/4.3 compensation bracket
/// `[0, C_ub(m)]` when the subproblem's ψ still yields a finite cap.
/// Accounting is the model's own prediction for a fixed payment: a
/// worker with no marginal incentive best-responds with zero effort, so
/// the requester books `w·ψ(0) − μ·amount` (with non-finite `w` or ψ(0)
/// conservatively treated as 0).
pub(crate) fn fallback_solution(
    sp: &Subproblem,
    params: &ModelParams,
    amount: f64,
) -> (SubproblemSolution, f64) {
    let cap = bounds::compensation_upper_bound(params, &sp.disc, &sp.psi, sp.disc.intervals());
    let pay = if cap.is_finite() && cap >= 0.0 {
        amount.clamp(0.0, cap)
    } else {
        amount.max(0.0)
    };
    let (d_lo, d_hi) = feedback_domain(sp);
    #[allow(clippy::expect_used)] // unit-domain fallback cannot fail: pay is clamped nonnegative
    let contract = Contract::fixed(d_lo, d_hi, pay)
        .or_else(|_| Contract::fixed(0.0, 1.0, pay))
        // dcc-lint: allow(unwrap-in-lib, reason = "unit-domain fixed contract with nonnegative pay is infallible by construction")
        .expect("unit-domain fixed contract is always valid");

    let zero_effort_feedback = {
        let f = sp.psi.eval(0.0);
        if f.is_finite() {
            f.max(0.0)
        } else {
            0.0
        }
    };
    let weight = if sp.weight.is_finite() { sp.weight } else { 0.0 };
    let requester_utility = weight * zero_effort_feedback - params.mu * pay;
    let response = BestResponse {
        effort: 0.0,
        feedback: zero_effort_feedback,
        compensation: pay,
        utility: pay,
    };
    (
        SubproblemSolution {
            id: sp.id,
            members: sp.members.clone(),
            built: BuiltContract::degraded(contract, response, requester_utility, weight),
        },
        pay,
    )
}

/// Builds the exclusion (zero-contract) substitute for a failed
/// subproblem: the worker is out of the system — no pay, no benefit.
pub(crate) fn skip_solution(sp: &Subproblem) -> SubproblemSolution {
    let (d_lo, d_hi) = feedback_domain(sp);
    #[allow(clippy::expect_used)] // unit-domain zero contract has no failing input
    let contract = Contract::zero(d_lo, d_hi)
        .or_else(|_| Contract::zero(0.0, 1.0))
        // dcc-lint: allow(unwrap-in-lib, reason = "unit-domain zero contract is infallible by construction")
        .expect("unit-domain zero contract is always valid");
    let weight = if sp.weight.is_finite() { sp.weight } else { 0.0 };
    let response = BestResponse {
        effort: 0.0,
        feedback: 0.0,
        compensation: 0.0,
        utility: 0.0,
    };
    SubproblemSolution {
        id: sp.id,
        members: sp.members.clone(),
        built: BuiltContract::degraded(contract, response, 0.0, weight),
    }
}

/// The degraded utility minus the Theorem 4.1 upper bound, when the
/// bound is computable for this subproblem.
pub(crate) fn utility_delta(sp: &Subproblem, params: &ModelParams, achieved: f64) -> Option<f64> {
    if !sp.weight.is_finite() {
        return None;
    }
    let upper =
        bounds::requester_utility_upper_bound(sp.weight, params, &sp.disc, &sp.psi);
    if upper.is_finite() {
        Some(achieved - upper)
    } else {
        None
    }
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample_subproblems(n: usize) -> Vec<Subproblem> {
        let disc = Discretization::new(12, 0.75).unwrap();
        (0..n)
            .map(|i| Subproblem {
                id: i,
                members: vec![i],
                omega: if i % 3 == 0 { 0.0 } else { 0.4 },
                weight: 0.5 + (i % 5) as f64 * 0.4,
                psi: Quadratic::new(-0.05, 2.0, 0.5),
                disc,
            })
            .collect()
    }

    fn params() -> ModelParams {
        ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let sps = sample_subproblems(23);
        let p = params();
        let serial = solve_subproblems(&sps, &p, false).unwrap();
        let parallel = solve_subproblems(&sps, &p, true).unwrap();
        assert_eq!(serial.solutions.len(), parallel.solutions.len());
        assert!(
            (serial.total_requester_utility - parallel.total_requester_utility).abs() < 1e-9
        );
        for (s, q) in serial.solutions.iter().zip(&parallel.solutions) {
            assert_eq!(s.id, q.id);
            assert!((s.built.requester_utility() - q.built.requester_utility()).abs() < 1e-9);
        }
    }

    #[test]
    fn total_is_sum_of_parts() {
        let sps = sample_subproblems(7);
        let sol = solve_subproblems(&sps, &params(), false).unwrap();
        let sum: f64 = sol
            .solutions
            .iter()
            .map(|s| s.built.requester_utility())
            .sum();
        assert!((sol.total_requester_utility - sum).abs() < 1e-12);
    }

    #[test]
    fn worker_lookup() {
        let mut sps = sample_subproblems(3);
        sps[2].members = vec![2, 9, 11];
        let sol = solve_subproblems(&sps, &params(), false).unwrap();
        assert_eq!(sol.for_worker(9).unwrap().id, 2);
        assert_eq!(sol.for_worker(0).unwrap().id, 0);
        assert!(sol.for_worker(99).is_none());
    }

    #[test]
    fn degradation_report_carries_attempt_counts() {
        let sps = sample_subproblems(2);
        let results = vec![
            Err(CoreError::degraded(
                "candidate solve",
                4,
                CoreError::InvalidInput("singular".into()),
            )),
            Err(CoreError::InvalidInput("bad weight".into())),
        ];
        let (_, report) =
            assemble_solutions(&sps, results, &params(), FailurePolicy::Skip).unwrap();
        assert_eq!(report.degraded.len(), 2);
        assert_eq!(report.degraded[0].attempts, 4);
        assert_eq!(report.degraded[1].attempts, 1);
    }

    #[test]
    fn empty_input_is_empty_solution() {
        let sol = solve_subproblems(&[], &params(), true).unwrap();
        assert!(sol.solutions.is_empty());
        assert_eq!(sol.total_requester_utility, 0.0);
    }

    #[test]
    fn error_identifies_subproblem() {
        let mut sps = sample_subproblems(2);
        sps[1].psi = Quadratic::new(0.1, 1.0, 0.0); // convex: invalid
        let err = solve_subproblems(&sps, &params(), false).unwrap_err();
        assert!(err.to_string().contains("subproblem 1"));
    }

    fn corrupted(n: usize, bad: usize) -> Vec<Subproblem> {
        let mut sps = sample_subproblems(n);
        sps[bad].weight = f64::NAN; // rejected by ContractBuilder::build
        sps
    }

    #[test]
    fn fallback_policy_isolates_the_failure() {
        let sps = corrupted(6, 2);
        let p = params();
        assert!(solve_subproblems(&sps, &p, false).is_err(), "abort fails");
        let (sol, report) = solve_subproblems_with(
            &sps,
            &p,
            false,
            FailurePolicy::FallbackBaseline { amount: 0.5 },
        )
        .unwrap();
        assert_eq!(sol.solutions.len(), 6, "every subproblem gets a contract");
        assert_eq!(report.len(), 1);
        let d = report.for_subproblem(2).expect("subproblem 2 degraded");
        assert_eq!(d.members, vec![2]);
        assert!(d.reason.contains("subproblem 2"));
        assert!(matches!(d.action, DegradationAction::Fallback { amount } if amount >= 0.0));
        // The healthy subproblems match the clean solve exactly.
        let clean = solve_subproblems(&sample_subproblems(6), &p, false).unwrap();
        for (got, want) in sol.solutions.iter().zip(&clean.solutions) {
            if got.id != 2 {
                assert_eq!(got.built.contract(), want.built.contract());
            }
        }
    }

    #[test]
    fn fallback_contract_is_monotone_fixed_pay_within_bounds() {
        let sps = corrupted(3, 1);
        let p = params();
        let (sol, _) = solve_subproblems_with(
            &sps,
            &p,
            false,
            FailurePolicy::FallbackBaseline { amount: 1_000.0 },
        )
        .unwrap();
        let built = &sol.solutions[1].built;
        assert!(built.contract().is_monotone());
        let cap = bounds::compensation_upper_bound(
            &p,
            &sps[1].disc,
            &sps[1].psi,
            sps[1].disc.intervals(),
        );
        // The huge requested amount was clamped into the Lemma 4.2 cap.
        assert!(built.compensation() <= cap + 1e-9);
        assert!(built.compensation() >= 0.0);
        // Fixed payment: same pay at every feedback level.
        let pays: Vec<f64> = built.contract().payments().to_vec();
        assert!(pays.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
    }

    #[test]
    fn skip_policy_excludes_the_worker() {
        let sps = corrupted(4, 3);
        let (sol, report) =
            solve_subproblems_with(&sps, &params(), false, FailurePolicy::Skip).unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(
            report.degraded[0].action,
            DegradationAction::Skipped
        );
        let built = &sol.solutions[3].built;
        assert_eq!(built.compensation(), 0.0);
        assert_eq!(built.requester_utility(), 0.0);
        assert_eq!(built.k_opt(), None);
    }

    #[test]
    fn degraded_parallel_and_serial_agree() {
        let sps = corrupted(23, 7);
        let p = params();
        let policy = FailurePolicy::FallbackBaseline { amount: 0.25 };
        let (serial, rs) = solve_subproblems_with(&sps, &p, false, policy).unwrap();
        let (parallel, rp) = solve_subproblems_with(&sps, &p, true, policy).unwrap();
        assert_eq!(rs, rp);
        assert_eq!(serial.solutions.len(), parallel.solutions.len());
        assert!(
            (serial.total_requester_utility - parallel.total_requester_utility).abs() < 1e-9
        );
    }

    #[test]
    fn pooled_solve_is_bit_identical_across_pool_sizes() {
        let sps = sample_subproblems(37);
        let p = params();
        let (reference, _) =
            solve_subproblems_pooled(&sps, &p, 1, FailurePolicy::Abort).unwrap();
        for pool in [2, 3, 4, 16, 64] {
            let (pooled, _) =
                solve_subproblems_pooled(&sps, &p, pool, FailurePolicy::Abort).unwrap();
            assert_eq!(reference, pooled, "pool {pool} diverged");
            assert_eq!(
                reference.total_requester_utility.to_bits(),
                pooled.total_requester_utility.to_bits(),
                "pool {pool} total differs in bits"
            );
        }
    }

    #[test]
    fn clean_solve_has_empty_report() {
        let sps = sample_subproblems(5);
        let (_, report) =
            solve_subproblems_with(&sps, &params(), false, FailurePolicy::Skip).unwrap();
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
    }

    #[test]
    fn fallback_utility_delta_reports_the_gap() {
        // A convex psi fails validation but still evaluates, so the
        // Theorem 4.1 bound is computable and the fallback's shortfall is
        // reported as a nonpositive delta.
        let mut sps = sample_subproblems(2);
        sps[0].psi = Quadratic::new(0.1, 1.0, 0.0);
        let (_, report) = solve_subproblems_with(
            &sps,
            &params(),
            false,
            FailurePolicy::FallbackBaseline { amount: 0.5 },
        )
        .unwrap();
        assert_eq!(report.len(), 1);
        let delta = report.degraded[0]
            .utility_delta
            .expect("bound computable for a finite psi and weight");
        assert!(delta <= 1e-9, "fallback cannot beat the upper bound: {delta}");

        // A NaN weight makes the bound itself meaningless.
        let (_, report2) = solve_subproblems_with(
            &corrupted(2, 0),
            &params(),
            false,
            FailurePolicy::FallbackBaseline { amount: 0.5 },
        )
        .unwrap();
        assert!(report2.degraded[0].utility_delta.is_none(), "NaN weight");
    }

    #[test]
    fn recorded_solve_is_bit_identical_to_plain() {
        use dcc_obs::JsonRecorder;
        use std::sync::Arc;
        let sps = corrupted(19, 4);
        let p = params();
        let policy = FailurePolicy::FallbackBaseline { amount: 0.4 };
        let (plain, plain_report) = solve_subproblems_pooled(&sps, &p, 3, policy).unwrap();
        for metrics in [
            Metrics::noop(),
            Metrics::new(Arc::new(JsonRecorder::new())),
        ] {
            let (recorded, report) =
                solve_subproblems_recorded(&sps, &p, 3, policy, &metrics).unwrap();
            assert_eq!(recorded, plain);
            assert_eq!(report, plain_report);
            assert_eq!(
                recorded.total_requester_utility.to_bits(),
                plain.total_requester_utility.to_bits()
            );
        }
    }

    #[test]
    fn recorded_solve_emits_per_subproblem_spans_and_degradation_counters() {
        use dcc_obs::{names, JsonRecorder};
        use std::sync::Arc;
        let sps = corrupted(9, 2);
        let recorder = Arc::new(JsonRecorder::new());
        let metrics = Metrics::new(recorder.clone());
        let (_, report) = solve_subproblems_recorded(
            &sps,
            &params(),
            4,
            FailurePolicy::FallbackBaseline { amount: 0.5 },
            &metrics,
        )
        .unwrap();
        assert_eq!(recorder.span_count(names::SPAN_SUBPROBLEM), 9);
        assert_eq!(recorder.counter(names::COUNTER_SOLVE_SUBPROBLEMS), 9);
        assert_eq!(
            recorder.counter(names::COUNTER_SOLVE_DEGRADED),
            report.len() as u64
        );
        assert_eq!(recorder.counter(names::COUNTER_SOLVE_DEGRADED_FALLBACK), 1);
        assert_eq!(recorder.counter(names::COUNTER_SOLVE_DEGRADED_SKIPPED), 0);
        let json = recorder.to_json();
        assert!(json.contains("\"degraded\":true"), "victim span flagged");
        assert!(json.contains("\"iterations\":"), "candidate counts attached");
    }

    #[test]
    fn recorded_solve_metric_stream_is_pool_invariant() {
        use dcc_obs::JsonRecorder;
        use std::sync::Arc;
        let sps = sample_subproblems(17);
        let p = params();
        let render = |pool: usize| {
            let recorder = Arc::new(JsonRecorder::new());
            let metrics = Metrics::new(recorder.clone());
            solve_subproblems_recorded(&sps, &p, pool, FailurePolicy::Abort, &metrics).unwrap();
            // The pool gauge legitimately differs; compare everything else.
            recorder
                .to_json_redacted()
                .replace(&format!("\"solve.pool\":{pool}"), "\"solve.pool\":_")
        };
        let reference = render(1);
        for pool in [2, 5, 16] {
            assert_eq!(render(pool), reference, "pool {pool} metric stream diverged");
        }
    }
}
