use crate::{BuiltContract, ContractBuilder, CoreError, Discretization, ModelParams};
use dcc_numerics::Quadratic;

/// One subproblem of the §IV-B decomposition: the contract design for a
/// single worker, or for a collusive community treated as one
/// "meta-worker" (Eq. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Subproblem {
    /// Caller-chosen identifier (e.g. a worker id or community id).
    pub id: usize,
    /// Worker indices covered by this subproblem (singleton for
    /// individual workers; all members for a community).
    pub members: Vec<usize>,
    /// The feedback weight ω in the follower's utility: 0 for honest
    /// workers, `params.omega` for malicious ones.
    pub omega: f64,
    /// The requester's feedback weight `w` for this subproblem (Eq. 5;
    /// communities use their members' mean).
    pub weight: f64,
    /// The (fitted) effort function — the community's aggregate response
    /// for meta-workers.
    pub psi: Quadratic,
    /// The effort-region discretization for this subproblem.
    pub disc: Discretization,
}

/// The solved contract for one subproblem.
#[derive(Debug, Clone, PartialEq)]
pub struct SubproblemSolution {
    /// The subproblem's identifier.
    pub id: usize,
    /// Worker indices covered.
    pub members: Vec<usize>,
    /// The §IV-C result.
    pub built: BuiltContract,
}

/// The assembled solution of the decomposed bilevel program.
#[derive(Debug, Clone, PartialEq)]
pub struct BipSolution {
    /// Per-subproblem solutions, in input order.
    pub solutions: Vec<SubproblemSolution>,
    /// The requester's total per-round utility `Σ (w_i q_i − μ c_i)`.
    pub total_requester_utility: f64,
}

impl BipSolution {
    /// The solution covering worker `worker_index`, if any.
    pub fn for_worker(&self, worker_index: usize) -> Option<&SubproblemSolution> {
        self.solutions
            .iter()
            .find(|s| s.members.contains(&worker_index))
    }
}

/// Solves every subproblem of the decomposition (§IV-B) and assembles the
/// requester's total utility.
///
/// The subproblems are independent by construction — the requester's
/// objective separates across non-collusive workers and communities — so
/// with `parallel = true` they are solved on scoped threads
/// (`crossbeam::thread::scope`), one chunk per available core.
///
/// # Errors
///
/// Propagates the first per-subproblem error (invalid ψ, parameters, …),
/// identified by the subproblem id in the message.
pub fn solve_subproblems(
    subproblems: &[Subproblem],
    params: &ModelParams,
    parallel: bool,
) -> Result<BipSolution, CoreError> {
    let solve_one = |sp: &Subproblem| -> Result<SubproblemSolution, CoreError> {
        let built = ContractBuilder::new(*params, sp.disc, sp.psi)
            .malicious(sp.omega)
            .weight(sp.weight)
            .build()
            .map_err(|e| {
                CoreError::InvalidInput(format!("subproblem {} failed: {e}", sp.id))
            })?;
        Ok(SubproblemSolution {
            id: sp.id,
            members: sp.members.clone(),
            built,
        })
    };

    let solutions: Vec<SubproblemSolution> = if parallel && subproblems.len() > 1 {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(subproblems.len());
        let chunk_size = subproblems.len().div_ceil(workers);
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = subproblems
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(solve_one)
                            .collect::<Result<Vec<_>, CoreError>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("solver thread must not panic"))
                .collect::<Result<Vec<Vec<_>>, CoreError>>()
        })
        .expect("scoped threads must not panic")?;
        results.into_iter().flatten().collect()
    } else {
        subproblems
            .iter()
            .map(solve_one)
            .collect::<Result<Vec<_>, CoreError>>()?
    };

    let total = solutions
        .iter()
        .map(|s| s.built.requester_utility())
        .sum();
    Ok(BipSolution {
        solutions,
        total_requester_utility: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_subproblems(n: usize) -> Vec<Subproblem> {
        let disc = Discretization::new(12, 0.75).unwrap();
        (0..n)
            .map(|i| Subproblem {
                id: i,
                members: vec![i],
                omega: if i % 3 == 0 { 0.0 } else { 0.4 },
                weight: 0.5 + (i % 5) as f64 * 0.4,
                psi: Quadratic::new(-0.05, 2.0, 0.5),
                disc,
            })
            .collect()
    }

    fn params() -> ModelParams {
        ModelParams {
            mu: 1.5,
            ..ModelParams::default()
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let sps = sample_subproblems(23);
        let p = params();
        let serial = solve_subproblems(&sps, &p, false).unwrap();
        let parallel = solve_subproblems(&sps, &p, true).unwrap();
        assert_eq!(serial.solutions.len(), parallel.solutions.len());
        assert!(
            (serial.total_requester_utility - parallel.total_requester_utility).abs() < 1e-9
        );
        for (s, q) in serial.solutions.iter().zip(&parallel.solutions) {
            assert_eq!(s.id, q.id);
            assert!((s.built.requester_utility() - q.built.requester_utility()).abs() < 1e-9);
        }
    }

    #[test]
    fn total_is_sum_of_parts() {
        let sps = sample_subproblems(7);
        let sol = solve_subproblems(&sps, &params(), false).unwrap();
        let sum: f64 = sol
            .solutions
            .iter()
            .map(|s| s.built.requester_utility())
            .sum();
        assert!((sol.total_requester_utility - sum).abs() < 1e-12);
    }

    #[test]
    fn worker_lookup() {
        let mut sps = sample_subproblems(3);
        sps[2].members = vec![2, 9, 11];
        let sol = solve_subproblems(&sps, &params(), false).unwrap();
        assert_eq!(sol.for_worker(9).unwrap().id, 2);
        assert_eq!(sol.for_worker(0).unwrap().id, 0);
        assert!(sol.for_worker(99).is_none());
    }

    #[test]
    fn empty_input_is_empty_solution() {
        let sol = solve_subproblems(&[], &params(), true).unwrap();
        assert!(sol.solutions.is_empty());
        assert_eq!(sol.total_requester_utility, 0.0);
    }

    #[test]
    fn error_identifies_subproblem() {
        let mut sps = sample_subproblems(2);
        sps[1].psi = Quadratic::new(0.1, 1.0, 0.0); // convex: invalid
        let err = solve_subproblems(&sps, &params(), false).unwrap_err();
        assert!(err.to_string().contains("subproblem 1"));
    }
}
