use crate::{Contract, CoreError, ModelParams};
use dcc_numerics::Quadratic;

/// A worker's attitude toward payment risk/size: utility of money
/// `u(c) = c^exponent` with `exponent ∈ (0, 1]` (CRRA-style; `1` is the
/// paper's risk-neutral worker, smaller exponents value marginal pay
/// less).
///
/// The paper assumes risk-neutral workers; this extension quantifies how
/// much extra incentive a concave money-utility demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskProfile {
    exponent: f64,
}

impl RiskProfile {
    /// A risk-neutral profile (`u(c) = c`).
    pub fn neutral() -> Self {
        RiskProfile { exponent: 1.0 }
    }

    /// Creates a profile with money-utility `u(c) = c^exponent`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] unless `exponent ∈ (0, 1]`.
    pub fn new(exponent: f64) -> Result<Self, CoreError> {
        if !(exponent.is_finite() && 0.0 < exponent && exponent <= 1.0) {
            return Err(CoreError::InvalidParams(format!(
                "risk exponent must be in (0, 1], got {exponent}"
            )));
        }
        Ok(RiskProfile { exponent })
    }

    /// The money-utility `u(c) = c^exponent`.
    pub fn money_utility(&self, compensation: f64) -> f64 {
        compensation.max(0.0).powf(self.exponent)
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

/// A risk-adjusted best response: the worker maximizes
/// `u(f(ψ(y))) + ω·ψ(y) − β·y` with concave money-utility `u`.
///
/// No closed form exists once `u` is nonlinear, so the optimum is found
/// by a dense grid over `[0, peak]` refined by golden-section search on
/// the best bracket — accurate to ~1e-6 of the peak effort.
///
/// # Errors
///
/// Returns model-validity errors as [`crate::best_response`] does.
pub fn best_response_risk_averse(
    params: &ModelParams,
    psi: &Quadratic,
    contract: &Contract,
    risk: &RiskProfile,
) -> Result<crate::BestResponse, CoreError> {
    params.validate()?;
    if psi.r2() >= 0.0 || psi.derivative_at(0.0) <= 0.0 {
        return Err(CoreError::InvalidEffortFunction(
            "psi must be strictly concave and increasing at 0".into(),
        ));
    }
    let Some(y_peak) = psi.peak() else {
        return Err(CoreError::InvalidEffortFunction(
            "psi must be strictly concave".into(),
        ));
    };
    let utility = |y: f64| {
        let q = psi.eval(y);
        risk.money_utility(contract.compensation(q)) + params.omega * q - params.beta * y
    };

    // Coarse grid.
    let grid = 2_000usize;
    let mut best_i = 0usize;
    let mut best_u = f64::NEG_INFINITY;
    for i in 0..=grid {
        let y = y_peak * i as f64 / grid as f64;
        let u = utility(y);
        if u > best_u {
            best_u = u;
            best_i = i;
        }
    }
    // Golden-section refinement on the bracketing cell.
    let mut lo = y_peak * best_i.saturating_sub(1) as f64 / grid as f64;
    let mut hi = y_peak * (best_i + 1).min(grid) as f64 / grid as f64;
    let phi = 0.618_033_988_749_894_9;
    for _ in 0..60 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if utility(a) >= utility(b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    let y = 0.5 * (lo + hi);
    let y = if utility(y) >= best_u { y } else { y_peak * best_i as f64 / grid as f64 };
    let q = psi.eval(y);
    Ok(crate::BestResponse {
        effort: y,
        feedback: q,
        compensation: contract.compensation(q),
        utility: utility(y),
    })
}

/// The *risk premium* a contract implicitly pays: the drop in induced
/// effort when the worker's risk profile falls from neutral to `risk`,
/// together with both responses. Requesters can use this to decide how
/// much steeper a contract must be for risk-averse pools.
///
/// # Errors
///
/// Propagates best-response failures.
pub fn risk_effort_drop(
    params: &ModelParams,
    psi: &Quadratic,
    contract: &Contract,
    risk: &RiskProfile,
) -> Result<(crate::BestResponse, crate::BestResponse), CoreError> {
    let neutral = crate::best_response(params, psi, contract)?;
    let averse = best_response_risk_averse(params, psi, contract, risk)?;
    Ok((neutral, averse))
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{best_response, ContractBuilder, Discretization};

    fn setup() -> (ModelParams, Quadratic, Contract) {
        let params = ModelParams {
            mu: 1.0,
            omega: 0.0,
            ..ModelParams::default()
        };
        let psi = Quadratic::new(-0.15, 2.5, 1.0);
        let contract = ContractBuilder::new(
            params,
            Discretization::covering(20, 7.0).unwrap(),
            psi,
        )
        .honest()
        .weight(1.5)
        .build()
        .unwrap()
        .contract()
        .clone();
        (params, psi, contract)
    }

    #[test]
    fn profile_validation() {
        assert!(RiskProfile::new(0.0).is_err());
        assert!(RiskProfile::new(1.1).is_err());
        assert!(RiskProfile::new(f64::NAN).is_err());
        assert_eq!(RiskProfile::neutral().exponent(), 1.0);
        let p = RiskProfile::new(0.5).unwrap();
        assert_eq!(p.money_utility(4.0), 2.0);
        assert_eq!(p.money_utility(-1.0), 0.0);
    }

    #[test]
    fn neutral_risk_matches_closed_form_response() {
        let (params, psi, contract) = setup();
        let closed = best_response(&params, &psi, &contract).unwrap();
        let numeric =
            best_response_risk_averse(&params, &psi, &contract, &RiskProfile::neutral())
                .unwrap();
        assert!(
            (closed.effort - numeric.effort).abs() < 1e-3,
            "closed {} vs numeric {}",
            closed.effort,
            numeric.effort
        );
        assert!((closed.utility - numeric.utility).abs() < 1e-4);
    }

    #[test]
    fn risk_aversion_weakly_lowers_effort() {
        let (params, psi, contract) = setup();
        let mut prev = f64::INFINITY;
        for exponent in [1.0, 0.8, 0.6, 0.4] {
            let risk = RiskProfile::new(exponent).unwrap();
            let br = best_response_risk_averse(&params, &psi, &contract, &risk).unwrap();
            assert!(
                br.effort <= prev + 1e-6,
                "exponent {exponent}: effort {} rose above {prev}",
                br.effort
            );
            prev = br.effort;
        }
        // Strong enough aversion visibly cuts effort relative to neutral.
        let (neutral, averse) = risk_effort_drop(
            &params,
            &psi,
            &contract,
            &RiskProfile::new(0.4).unwrap(),
        )
        .unwrap();
        assert!(
            averse.effort < neutral.effort,
            "averse {} vs neutral {}",
            averse.effort,
            neutral.effort
        );
    }

    #[test]
    fn steeper_contract_restores_risk_averse_effort() {
        // The design answer to risk aversion: pay more per unit feedback.
        let (params, psi, contract) = setup();
        let risk = RiskProfile::new(0.5).unwrap();
        let base = best_response_risk_averse(&params, &psi, &contract, &risk).unwrap();
        // Double every payment.
        let doubled = Contract::new(
            contract.feedback_knots().to_vec(),
            contract.payments().iter().map(|x| 2.0 * x).collect(),
        )
        .unwrap();
        let boosted = best_response_risk_averse(&params, &psi, &doubled, &risk).unwrap();
        assert!(
            boosted.effort > base.effort,
            "doubling pay must raise risk-averse effort ({} vs {})",
            boosted.effort,
            base.effort
        );
    }

    #[test]
    fn invalid_psi_rejected() {
        let (params, _, contract) = setup();
        let convex = Quadratic::new(0.1, 1.0, 0.0);
        assert!(best_response_risk_averse(
            &params,
            &convex,
            &contract,
            &RiskProfile::neutral()
        )
        .is_err());
    }
}
