//! Theoretical bounds of §IV-C: the Lemma 4.2 / 4.3 compensation bracket
//! and the Theorem 4.1 requester-utility bracket.
//!
//! The paper prints the bounds with `β = w = 1` (its §V setting); the
//! functions here carry the full parameterization, reducing to the
//! printed forms at those values. The Lemma 4.3 lower bound and the
//! Theorem 4.1 upper bound rely on the worker having no intrinsic
//! motivation, i.e. they are guaranteed for the honest case `ω = 0`
//! (§IV-C analyzes malicious workers and obtains honest workers as the
//! `ω = 0` special case; a worker with `ω > 0` may be paid *less* than
//! `β(k−1)δ` because it partly works for influence).

use crate::{Discretization, ModelParams};
use dcc_numerics::Quadratic;

/// Lemma 4.2: upper bound on the compensation paid under candidate
/// `ξ^(k)`:
///
/// `C_ub(k) = βkδ − 2βr₂kδ² / ψ′((k−1)δ)`
///
/// (the second term is positive since `r₂ < 0`).
pub fn compensation_upper_bound(
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    k: usize,
) -> f64 {
    let delta = disc.delta();
    let kf = k as f64;
    params.beta * kf * delta
        - 2.0 * params.beta * psi.r2() * kf * delta * delta
            / psi.derivative_at(disc.knot(k.saturating_sub(1)))
}

/// Lemma 4.3: lower bound `β(k−1)δ` on the compensation needed to induce
/// an optimal effort in `[(k−1)δ, kδ)` from a worker with no intrinsic
/// motivation (`ω = 0`) — otherwise the worker's utility at its optimum
/// would be negative, contradicting individual rationality.
pub fn compensation_lower_bound(params: &ModelParams, disc: &Discretization, k: usize) -> f64 {
    params.beta * (k.saturating_sub(1)) as f64 * disc.delta()
}

/// Theorem 4.1 upper bound on the requester's per-worker utility over
/// *any* contract inducing any interval:
///
/// `max_l ( w·ψ(lδ) − μ·β(l−1)δ )`
///
/// — in the best case the worker reaches the top of interval `l` while
/// being paid only the Lemma 4.3 minimum. Guaranteed for `ω = 0`.
pub fn requester_utility_upper_bound(
    weight: f64,
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
) -> f64 {
    (1..=disc.intervals())
        .map(|l| {
            weight * psi.eval(disc.knot(l))
                - params.mu * compensation_lower_bound(params, disc, l)
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Theorem 4.1 lower bound on the requester's utility from the candidate
/// the algorithm selects:
///
/// `w·ψ((k_opt−1)δ) − μ·C_ub(k_opt)`
///
/// — the worker produces at least the bottom of its target interval and
/// costs at most the Lemma 4.2 cap.
pub fn requester_utility_lower_bound(
    weight: f64,
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    k_opt: usize,
) -> f64 {
    weight * psi.eval(disc.knot(k_opt.saturating_sub(1)))
        - params.mu * compensation_upper_bound(params, disc, psi, k_opt)
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::{best_response, build_candidate};

    fn setup() -> (ModelParams, Discretization, Quadratic) {
        let params = ModelParams {
            omega: 0.0,
            mu: 1.5,
            ..ModelParams::default()
        };
        let disc = Discretization::new(16, 0.625).unwrap();
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        (params, disc, psi)
    }

    #[test]
    fn compensation_bracket_holds_for_all_candidates() {
        let (params, disc, psi) = setup();
        for k in 1..=disc.intervals() {
            let cand = build_candidate(&params, &disc, &psi, k).unwrap();
            let br = best_response(&params, &psi, &cand.contract).unwrap();
            let lb = compensation_lower_bound(&params, &disc, k);
            let ub = compensation_upper_bound(&params, &disc, &psi, k);
            assert!(
                br.compensation >= lb - 1e-9,
                "k={k}: compensation {} below Lemma 4.3 bound {lb}",
                br.compensation
            );
            assert!(
                br.compensation <= ub + 1e-9,
                "k={k}: compensation {} above Lemma 4.2 bound {ub}",
                br.compensation
            );
        }
    }

    #[test]
    fn compensation_bounds_tighten_with_m() {
        // The bracket width at fixed effort y = k*delta shrinks as the
        // partition refines (the convergence statement behind Fig. 6/8a).
        let (params, _, psi) = setup();
        let y_target = 5.0;
        let mut prev_gap = f64::INFINITY;
        for m in [8, 16, 32, 64] {
            let disc = Discretization::covering(m, 10.0).unwrap();
            let k = (y_target / disc.delta()).round() as usize;
            let gap = compensation_upper_bound(&params, &disc, &psi, k)
                - compensation_lower_bound(&params, &disc, k);
            assert!(gap < prev_gap, "gap {gap} did not shrink at m={m}");
            prev_gap = gap;
        }
    }

    #[test]
    fn utility_bracket_holds_for_honest_worker() {
        let (params, disc, psi) = setup();
        let weight = 1.0;
        let upper = requester_utility_upper_bound(weight, &params, &disc, &psi);
        for k in 1..=disc.intervals() {
            let cand = build_candidate(&params, &disc, &psi, k).unwrap();
            let br = best_response(&params, &psi, &cand.contract).unwrap();
            let utility = weight * br.feedback - params.mu * br.compensation;
            let lower = requester_utility_lower_bound(weight, &params, &disc, &psi, k);
            assert!(
                utility >= lower - 1e-9,
                "k={k}: utility {utility} below lower bound {lower}"
            );
            assert!(
                utility <= upper + 1e-9,
                "k={k}: utility {utility} above upper bound {upper}"
            );
        }
    }

    #[test]
    fn printed_form_recovered_at_unit_parameters() {
        // With beta = w = 1, the bounds reduce to the paper's printed
        // expressions.
        let params = ModelParams {
            beta: 1.0,
            mu: 1.0,
            omega: 0.0,
            ..ModelParams::default()
        };
        let disc = Discretization::new(5, 0.5).unwrap();
        let psi = Quadratic::new(-0.1, 3.0, 0.2);
        let k = 3;
        let delta = disc.delta();
        let printed_c_ub = -2.0 * psi.r2() * k as f64 * delta * delta
            / (2.0 * psi.r2() * (k - 1) as f64 * delta + psi.r1())
            + k as f64 * delta;
        assert!(
            (compensation_upper_bound(&params, &disc, &psi, k) - printed_c_ub).abs() < 1e-12
        );
        let printed_lb = psi.eval((k - 1) as f64 * delta) - printed_c_ub;
        assert!(
            (requester_utility_lower_bound(1.0, &params, &disc, &psi, k) - printed_lb).abs()
                < 1e-12
        );
    }

    #[test]
    fn k1_lower_bound_is_zero_pay() {
        let (params, disc, _) = setup();
        assert_eq!(compensation_lower_bound(&params, &disc, 1), 0.0);
    }
}
