use crate::{ContractDesign, CoreError, ModelParams, RoundRecord};
use dcc_detect::DetectionResult;
use dcc_trace::{ReviewerId, TraceDataset};
use std::collections::BTreeMap;

/// Outcome of a trace-driven replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Per-round accounting.
    pub rounds: Vec<RoundRecord>,
    /// Total compensation each worker earned (by dense reviewer index).
    pub worker_compensation: Vec<f64>,
    /// Mean per-round requester utility.
    pub mean_round_utility: f64,
    /// Number of (worker, round) feedback observations replayed.
    pub observations: usize,
}

/// Replays a contract design against the *recorded* behaviour of a trace
/// rather than model best responses: in each round `t`, a worker's
/// feedback is the mean upvotes of the reviews it actually wrote in that
/// round, and its round-`t+1` compensation is its contract evaluated at
/// that feedback (Eq. 1's one-round payment lag).
///
/// This is the evaluation mode one would run on the paper's real Amazon
/// trace — no behavioural model in the loop, only the measured feedback
/// sequence and the designed payment rule. Workers without reviews in a
/// round produce no feedback and earn no new pay that round (their
/// pending payment carries to their next active round).
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if the trace has no reviews.
pub fn replay_trace(
    trace: &TraceDataset,
    detection: &DetectionResult,
    design: &ContractDesign,
    params: &ModelParams,
) -> Result<ReplayOutcome, CoreError> {
    if trace.reviews().is_empty() {
        return Err(CoreError::InvalidInput("trace has no reviews".into()));
    }
    let n_rounds = trace
        .reviews()
        .iter()
        .map(|r| r.round)
        .max()
        .unwrap_or(0)
        + 1;

    // Per-(round, worker) mean feedback from the recorded reviews.
    let mut per_round: Vec<BTreeMap<ReviewerId, (f64, usize)>> =
        vec![BTreeMap::new(); n_rounds];
    for review in trace.reviews() {
        let slot = per_round[review.round].entry(review.reviewer).or_insert((0.0, 0));
        slot.0 += trace.feedback_of(review);
        slot.1 += 1;
    }

    let n_workers = trace.reviewers().len();
    let mut worker_compensation = vec![0.0; n_workers];
    // Pending payment owed to each worker at its next active round
    // (starts at the contract's base payment for feedback 0).
    let mut pending: Vec<Option<f64>> = vec![None; n_workers];
    let mut observations = 0usize;

    let mut rounds = Vec::with_capacity(n_rounds);
    for (t, activity) in per_round.iter().enumerate() {
        let mut benefit = 0.0;
        let mut payment = 0.0;
        for (&worker, &(sum, count)) in activity {
            let Some(agent) = design.for_worker(worker) else {
                continue;
            };
            let feedback = sum / count as f64;
            let weight = detection.weights.weight(worker).unwrap_or(0.0);
            benefit += weight * feedback;
            observations += 1;

            let owed = pending[worker.index()]
                .unwrap_or_else(|| agent.contract.compensation(0.0));
            payment += owed;
            worker_compensation[worker.index()] += owed;
            pending[worker.index()] = Some(agent.contract.compensation(feedback));
        }
        rounds.push(RoundRecord {
            round: t,
            benefit,
            payment,
            requester_utility: benefit - params.mu * payment,
        });
    }

    let total: f64 = rounds.iter().map(|r| r.requester_utility).sum();
    Ok(ReplayOutcome {
        mean_round_utility: total / rounds.len().max(1) as f64,
        rounds,
        worker_compensation,
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{design_contracts, DesignConfig};
    use dcc_detect::{run_pipeline, PipelineConfig};
    use dcc_trace::{SyntheticConfig, WorkerClass};

    fn setup() -> (TraceDataset, DetectionResult, ContractDesign, ModelParams) {
        let mut cfg = SyntheticConfig::small(404);
        cfg.n_honest = 150;
        cfg.n_products = 600;
        let trace = cfg.generate();
        let detection = run_pipeline(&trace, PipelineConfig::default());
        let config = DesignConfig::default();
        let design = design_contracts(&trace, &detection, &config).unwrap();
        (trace, detection, design, config.params)
    }

    #[test]
    fn replay_covers_all_recorded_activity() {
        let (trace, detection, design, params) = setup();
        let outcome = replay_trace(&trace, &detection, &design, &params).unwrap();
        assert!(!outcome.rounds.is_empty());
        // Each review contributes to exactly one (worker, round) cell;
        // observations counts cells, so it is bounded by reviews and at
        // least the number of active workers.
        assert!(outcome.observations <= trace.reviews().len());
        assert!(outcome.observations >= design.agents.len());
        assert!(outcome.mean_round_utility.is_finite());
    }

    #[test]
    fn payments_are_lagged_and_nonnegative() {
        let (trace, detection, design, params) = setup();
        let outcome = replay_trace(&trace, &detection, &design, &params).unwrap();
        for r in &outcome.rounds {
            assert!(r.payment >= 0.0);
            assert!(r.benefit.is_finite());
        }
        assert!(outcome.worker_compensation.iter().all(|&c| c >= 0.0));
        // Honest workers collectively out-earn collusive ones in replay
        // too (their contracts are steeper and their feedback higher).
        let class_total = |class: WorkerClass| {
            trace
                .workers_of_class(class)
                .iter()
                .map(|id| outcome.worker_compensation[id.index()])
                .sum::<f64>()
                / trace.workers_of_class(class).len().max(1) as f64
        };
        assert!(class_total(WorkerClass::Honest) > class_total(WorkerClass::CollusiveMalicious));
    }

    #[test]
    fn empty_trace_rejected() {
        let (trace, detection, design, params) = setup();
        let empty = TraceDataset::new(
            trace.products().to_vec(),
            trace.reviewers().to_vec(),
            vec![],
            vec![],
        )
        .unwrap();
        assert!(replay_trace(&empty, &detection, &design, &params).is_err());
    }

    #[test]
    fn replay_is_deterministic() {
        let (trace, detection, design, params) = setup();
        let a = replay_trace(&trace, &detection, &design, &params).unwrap();
        let b = replay_trace(&trace, &detection, &design, &params).unwrap();
        assert_eq!(a, b);
    }
}
