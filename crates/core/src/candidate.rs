use crate::cases::case_window_lo;
use crate::{Contract, CoreError, Discretization, ModelParams};
use dcc_numerics::Quadratic;

/// A candidate contract `ξ^(k)` (§IV-C): the contract designed so the
/// worker's optimal effort falls in the target interval `[(k−1)δ, kδ)`,
/// with the minimal slopes that still satisfy the crossing condition
/// (Eq. 36).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Target interval index `k` (1-based).
    pub k: usize,
    /// The contract over the feedback knots `d_l = ψ(lδ)`.
    pub contract: Contract,
    /// The feedback-space slopes `α_1, …, α_m` chosen by the recurrence.
    pub slopes: Vec<f64>,
    /// The closed-form induced effort `y*_k` of Eq. 31 — the theoretical
    /// optimum, to be confirmed against [`crate::best_response`].
    pub predicted_effort: f64,
    /// The compensation at the predicted effort.
    pub predicted_compensation: f64,
    /// `true` if any slope produced by the Eq. 39 recurrence fell below 0
    /// and was clamped to keep the contract monotone (happens when ω is
    /// large enough that the worker self-motivates through early
    /// intervals; the theoretical guarantees then apply only past the
    /// autonomous-effort interval).
    pub clamped: bool,
}

/// The ε margin of Eq. 40 for interval `l` (1-based):
/// `4βr₂²δ² / (ψ′((l−1)δ)² · ψ′(lδ))`.
fn epsilon(params: &ModelParams, disc: &Discretization, psi: &Quadratic, l: usize) -> f64 {
    let d_prev = psi.derivative_at(disc.knot(l - 1));
    let d_cur = psi.derivative_at(disc.knot(l));
    4.0 * params.beta * psi.r2() * psi.r2() * disc.delta() * disc.delta()
        / (d_prev * d_prev * d_cur)
}

/// Builds the candidate contract `ξ^(k)` for target interval `k`
/// (1-based) via the slope recurrence of Eqs. (39)–(40):
///
/// - `α_1 = β/ψ′(0) − ω + ε_1` (just above its Case-III window's lower
///   edge),
/// - `α_l = β² / ((α_{l−1} + ω)·ψ′((l−1)δ)²) + ε_l − ω` for `2 ≤ l ≤ k`,
/// - `α_l = 0` for `l > k` (flat tail; §IV-C calls this step trivial).
///
/// The base payment is `x₀ = 0` and `x_l = x_{l−1} + α_l·(d_l − d_{l−1})`
/// with `d_l = ψ(lδ)`. Negative recurrence slopes (large ω) are clamped
/// to 0 and flagged in [`Candidate::clamped`].
///
/// This is the paper's exact construction — equivalently
/// [`build_candidate_with_margin`] with `margin = 0`.
///
/// # Errors
///
/// - [`CoreError::InvalidParams`] if `k` is 0 or exceeds `m`, or the
///   parameters fail validation.
/// - [`CoreError::InvalidEffortFunction`] if ψ violates the model
///   assumptions on the discretized region.
pub fn build_candidate(
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    k: usize,
) -> Result<Candidate, CoreError> {
    build_candidate_with_margin(params, disc, psi, k, 0.0)
}

/// [`build_candidate`] with an *incentive margin* `margin ≥ 0`.
///
/// The paper's construction (`margin = 0`) minimizes compensation but is
/// knife-edge: the worker is left almost indifferent between the target
/// interval and zero effort, so a small unmodelled drop in the worker's
/// productivity collapses its best response to 0. With `margin > 0` the
/// construction switches to a *robust* variant:
///
/// - every interval `l < k` gets the slope `(1+margin)·β/ψ′(lδ) − ω` —
///   Case II of Lemma 4.1 with strict slack, so the worker's marginal
///   utility while crossing the interval is at least `margin·β` and
///   stays positive even if its productivity drops by roughly a factor
///   `1/(1+margin)`;
/// - the target interval `k` keeps an interior (Case III) optimum with
///   its slope centered in the window via `β/ψ′(y_mid) − ω`.
///
/// Compensation is roughly `(1+margin)` times the paper's minimum — the
/// price of robustness (measured by the `ablations` bench).
///
/// # Errors
///
/// As [`build_candidate`], plus [`CoreError::InvalidParams`] for a
/// negative or non-finite margin.
pub fn build_candidate_with_margin(
    params: &ModelParams,
    disc: &Discretization,
    psi: &Quadratic,
    k: usize,
    margin: f64,
) -> Result<Candidate, CoreError> {
    params.validate()?;
    crate::effort::validate_effort_function(psi, disc)?;
    if k == 0 || k > disc.intervals() {
        return Err(CoreError::InvalidParams(format!(
            "target interval k = {k} outside 1..={}",
            disc.intervals()
        )));
    }
    if !(margin.is_finite() && margin >= 0.0) {
        return Err(CoreError::InvalidParams(format!(
            "incentive margin must be a nonnegative finite number, got {margin}"
        )));
    }

    let m = disc.intervals();
    let mut slopes = Vec::with_capacity(m);
    let mut clamped = false;
    let mut prev_alpha = f64::NAN;
    for l in 1..=m {
        let alpha = if l > k {
            0.0
        } else if margin > 0.0 {
            if l < k {
                // Case II with slack: push the worker through.
                (1.0 + margin) * params.beta / psi.derivative_at(disc.knot(l)) - params.omega
            } else {
                // Interior optimum centered in the target window.
                let y_mid = 0.5 * (disc.knot(k - 1) + disc.knot(k));
                params.beta / psi.derivative_at(y_mid) - params.omega
            }
        } else if l == 1 {
            case_window_lo(params, disc, psi, 1) + epsilon(params, disc, psi, 1)
        } else {
            let d_prev = psi.derivative_at(disc.knot(l - 1));
            params.beta * params.beta / ((prev_alpha + params.omega) * d_prev * d_prev)
                + epsilon(params, disc, psi, l)
                - params.omega
        };
        let alpha = if alpha < 0.0 {
            clamped = true;
            0.0
        } else {
            alpha
        };
        prev_alpha = alpha;
        slopes.push(alpha);
    }

    // Payments at feedback knots d_l = psi(l * delta).
    let feedback_knots: Vec<f64> = (0..=m).map(|l| psi.eval(disc.knot(l))).collect();
    let mut payments = Vec::with_capacity(m + 1);
    payments.push(0.0);
    for l in 1..=m {
        let delta_d = feedback_knots[l] - feedback_knots[l - 1];
        payments.push(payments[l - 1] + slopes[l - 1] * delta_d);
    }
    let contract = Contract::new(feedback_knots, payments)?;

    // Predicted optimum inside the target interval (Eq. 31), clamped to
    // the interval for the edge cases where clamping disturbed the theory.
    let alpha_k = slopes[k - 1];
    let predicted_effort = if alpha_k + params.omega > 0.0 {
        psi.inverse_derivative(params.beta / (alpha_k + params.omega))?
            .clamp(disc.knot(k - 1), disc.knot(k))
    } else {
        disc.knot(k - 1)
    };
    let predicted_compensation = contract.compensation(psi.eval(predicted_effort));

    Ok(Candidate {
        k,
        contract,
        slopes,
        predicted_effort,
        predicted_compensation,
        clamped,
    })
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::cases::{case_of_slope, SlopeCase};

    fn setup(omega: f64) -> (ModelParams, Discretization, Quadratic) {
        let params = ModelParams {
            omega,
            ..ModelParams::default()
        };
        let disc = Discretization::new(12, 0.75).unwrap();
        let psi = Quadratic::new(-0.05, 2.0, 0.5);
        (params, disc, psi)
    }

    #[test]
    fn slopes_stay_in_case_iii_windows_honest() {
        let (params, disc, psi) = setup(0.0);
        for k in 1..=disc.intervals() {
            let cand = build_candidate(&params, &disc, &psi, k).unwrap();
            assert!(!cand.clamped, "no clamping expected for omega = 0");
            for l in 1..=k {
                assert_eq!(
                    case_of_slope(&params, &disc, &psi, cand.slopes[l - 1], l).unwrap(),
                    SlopeCase::CaseIII,
                    "slope alpha_{l} = {} outside Case III window for k={k}",
                    cand.slopes[l - 1]
                );
            }
            for l in (k + 1)..=disc.intervals() {
                assert_eq!(cand.slopes[l - 1], 0.0, "tail must be flat");
            }
        }
    }

    #[test]
    fn predicted_effort_in_target_interval() {
        let (params, disc, psi) = setup(0.0);
        for k in 1..=disc.intervals() {
            let cand = build_candidate(&params, &disc, &psi, k).unwrap();
            assert!(
                cand.predicted_effort >= disc.knot(k - 1) - 1e-12
                    && cand.predicted_effort <= disc.knot(k) + 1e-12,
                "k={k}: predicted effort {} outside [{}, {}]",
                cand.predicted_effort,
                disc.knot(k - 1),
                disc.knot(k)
            );
        }
    }

    #[test]
    fn contract_is_monotone_and_zero_based() {
        let (params, disc, psi) = setup(0.0);
        let cand = build_candidate(&params, &disc, &psi, 5).unwrap();
        assert!(cand.contract.is_monotone());
        assert_eq!(cand.contract.payments()[0], 0.0);
        // Flat beyond the target interval.
        let pays = cand.contract.payments();
        for l in 6..pays.len() {
            assert!((pays[l] - pays[5]).abs() < 1e-12);
        }
    }

    #[test]
    fn slopes_increase_up_to_target() {
        // Case III windows move right with l, so the recurrence yields
        // increasing slopes (a convex contract up to k).
        let (params, disc, psi) = setup(0.0);
        let cand = build_candidate(&params, &disc, &psi, 8).unwrap();
        for l in 1..8 {
            assert!(
                cand.slopes[l] > cand.slopes[l - 1],
                "slopes must increase: alpha_{} = {} vs alpha_{} = {}",
                l + 1,
                cand.slopes[l],
                l,
                cand.slopes[l - 1]
            );
        }
    }

    #[test]
    fn utility_increments_positive_up_to_k() {
        // Eq. 36: the worker's per-interval maxima strictly increase up to
        // the target interval, so the global optimum is in interval k.
        let (params, disc, psi) = setup(0.0);
        let k = 7;
        let cand = build_candidate(&params, &disc, &psi, k).unwrap();
        let utility = |y: f64| {
            cand.contract.compensation(psi.eval(y)) + params.omega * psi.eval(y) - params.beta * y
        };
        let mut prev_max = utility(0.0);
        for l in 1..=k {
            let (a, b) = (disc.knot(l - 1), disc.knot(l));
            let mut m = f64::NEG_INFINITY;
            for i in 0..=1000 {
                let y = a + (b - a) * i as f64 / 1000.0;
                m = m.max(utility(y));
            }
            assert!(
                m > prev_max - 1e-9,
                "interval {l} max {m} not above previous {prev_max}"
            );
            prev_max = m;
        }
    }

    #[test]
    fn omega_reduces_compensation() {
        // A malicious worker (ω > 0) self-motivates, so inducing the same
        // interval costs the requester weakly less.
        let (params0, disc, psi) = setup(0.0);
        let (params1, _, _) = setup(0.4);
        for k in 2..=10 {
            let honest = build_candidate(&params0, &disc, &psi, k).unwrap();
            let malicious = build_candidate(&params1, &disc, &psi, k).unwrap();
            assert!(
                malicious.predicted_compensation <= honest.predicted_compensation + 1e-9,
                "k={k}: omega should cut compensation ({} vs {})",
                malicious.predicted_compensation,
                honest.predicted_compensation
            );
        }
    }

    #[test]
    fn large_omega_clamps_early_slopes() {
        let (params, disc, psi) = setup(3.0);
        let cand = build_candidate(&params, &disc, &psi, 6).unwrap();
        assert!(cand.clamped);
        assert!(cand.contract.is_monotone());
        assert!(cand.slopes.iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn margin_preserves_incentives_and_raises_pay() {
        let (params, disc, psi) = setup(0.0);
        for margin in [0.1, 0.3, 0.6] {
            for k in [2usize, 6, 11] {
                let tight = build_candidate(&params, &disc, &psi, k).unwrap();
                let slack =
                    build_candidate_with_margin(&params, &disc, &psi, k, margin).unwrap();
                // Pre-target slopes push the worker through (Case II with
                // slack); the target interval keeps an interior optimum.
                for l in 1..k {
                    assert_eq!(
                        case_of_slope(&params, &disc, &psi, slack.slopes[l - 1], l).unwrap(),
                        SlopeCase::CaseII,
                        "margin {margin} k={k} l={l}"
                    );
                }
                assert_eq!(
                    case_of_slope(&params, &disc, &psi, slack.slopes[k - 1], k).unwrap(),
                    SlopeCase::CaseIII,
                    "margin {margin} k={k} target"
                );
                // The worker's verified best response stays in interval k.
                let br = crate::best_response(&params, &psi, &slack.contract).unwrap();
                assert!(
                    br.effort >= disc.knot(k - 1) - 1e-9 && br.effort <= disc.knot(k) + 1e-9,
                    "margin {margin} k={k}: response {} outside target",
                    br.effort
                );
                // Robustness costs money: payments are pointwise >= tight.
                for (s, t) in slack.contract.payments().iter().zip(tight.contract.payments()) {
                    assert!(
                        *s >= *t - 1e-9,
                        "margin {margin} k={k}: payment {s} below tight {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn margin_buys_drift_robustness() {
        // Under the paper's tight contract a 5% productivity drop
        // collapses the worker's response to zero effort; a 30% margin
        // keeps the worker working.
        let (params, disc, psi) = setup(0.0);
        let k = 8;
        let drifted = Quadratic::new(psi.r2(), 0.95 * psi.r1(), psi.r0());

        let tight = build_candidate(&params, &disc, &psi, k).unwrap();
        let tight_response =
            crate::best_response(&params, &drifted, &tight.contract).unwrap();
        assert!(
            tight_response.effort < 0.5,
            "tight contract should collapse under drift, got effort {}",
            tight_response.effort
        );

        let slack = build_candidate_with_margin(&params, &disc, &psi, k, 0.3).unwrap();
        let slack_response =
            crate::best_response(&params, &drifted, &slack.contract).unwrap();
        assert!(
            slack_response.effort > 0.5 * disc.knot(k - 1),
            "margin contract should survive drift, got effort {}",
            slack_response.effort
        );
    }

    #[test]
    fn invalid_margin_rejected() {
        let (params, disc, psi) = setup(0.0);
        assert!(build_candidate_with_margin(&params, &disc, &psi, 3, -0.1).is_err());
        assert!(build_candidate_with_margin(&params, &disc, &psi, 3, f64::NAN).is_err());
        assert!(build_candidate_with_margin(&params, &disc, &psi, 3, f64::INFINITY).is_err());
        // Large margins are permitted — they just pay more.
        assert!(build_candidate_with_margin(&params, &disc, &psi, 3, 2.0).is_ok());
    }

    #[test]
    fn invalid_k_rejected() {
        let (params, disc, psi) = setup(0.0);
        assert!(build_candidate(&params, &disc, &psi, 0).is_err());
        assert!(build_candidate(&params, &disc, &psi, 13).is_err());
    }

    #[test]
    fn invalid_psi_rejected() {
        let (params, disc, _) = setup(0.0);
        let convex = Quadratic::new(0.05, 2.0, 0.5);
        assert!(build_candidate(&params, &disc, &convex, 3).is_err());
    }
}
