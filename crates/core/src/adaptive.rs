use crate::{
    best_response, fit_effort_function, ConductModel, Contract, ContractBuilder, CoreError,
    Discretization, ModelParams, RoundRecord,
};
use dcc_numerics::Quadratic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One agent of the adaptive repeated game.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveAgent {
    /// Caller-chosen identifier.
    pub id: usize,
    /// Refitting group: agents sharing a group pool their `(effort,
    /// feedback)` observations when the requester re-estimates the
    /// group's effort function (per-agent observations alone are
    /// degenerate — a stationary best responder produces a single effort
    /// level).
    pub group: usize,
    /// The worker's designed ω (its ω while not deviating).
    pub base_omega: f64,
    /// The weight the design phase assigned (Eq. 5).
    pub base_weight: f64,
    /// The worker's *true* effort function at round 0.
    pub true_psi: Quadratic,
    /// How the worker's conduct evolves (§VII extensions).
    pub conduct: ConductModel,
}

/// Configuration of the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Total rounds `T`.
    pub rounds: usize,
    /// Redesign all contracts every `recontract_every` rounds (0 disables
    /// re-contracting — the static baseline).
    pub recontract_every: usize,
    /// Observation window (in rounds) used for re-fitting ψ and
    /// re-estimating weights.
    pub window: usize,
    /// Feedback noise standard deviation.
    pub feedback_noise_sd: f64,
    /// Noise of the requester's per-round accuracy audit of each agent's
    /// true weight (the spot-checking channel of §II).
    pub audit_noise_sd: f64,
    /// Number of effort intervals for redesigned contracts.
    pub intervals: usize,
    /// Incentive margin for the designed contracts (see
    /// [`crate::build_candidate_with_margin`]); the adaptive loop
    /// defaults to 0.1 — tight (margin-0) contracts are knife-edge and a
    /// drifting worker collapses to zero effort, leaving the requester
    /// with no informative observations to adapt from.
    pub margin: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            rounds: 40,
            recontract_every: 5,
            window: 10,
            feedback_noise_sd: 0.5,
            audit_noise_sd: 0.2,
            intervals: 20,
            margin: 0.1,
            seed: 13,
        }
    }
}

/// Outcome of an adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Per-round accounting (benefit uses the agents' *true* weights).
    pub rounds: Vec<RoundRecord>,
    /// The rounds at which contracts were redesigned.
    pub recontract_rounds: Vec<usize>,
    /// Each agent's estimated weight at the end of the run.
    pub final_estimated_weights: Vec<f64>,
    /// Each agent's total compensation.
    pub agent_compensation: Vec<f64>,
    /// Mean per-round requester utility.
    pub mean_round_utility: f64,
    /// Mean per-round requester utility over the last quarter of the run
    /// (the post-adaptation steady state).
    pub late_mean_utility: f64,
}

/// The complete mid-run state of an [`AdaptiveSimulation`] — the
/// requester's beliefs, observation windows, live contracts, and
/// accounting — exposed with public fields so external checkpointing
/// (the `dcc-faults` crate) can serialize and restore it bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveState {
    /// The next round to simulate.
    pub next_round: usize,
    /// The noise RNG, positioned exactly after round `next_round - 1`.
    pub rng: StdRng,
    /// The requester's believed effort function per group.
    pub group_psis: BTreeMap<usize, Quadratic>,
    /// The requester's estimated weight per agent.
    pub est_weights: Vec<f64>,
    /// Pooled `(round, effort, feedback)` observations per group.
    pub group_obs: BTreeMap<usize, Vec<(usize, f64, f64)>>,
    /// Noisy accuracy audits `(round, audited weight)` per agent.
    pub audit_obs: Vec<Vec<(usize, f64)>>,
    /// The contracts currently offered, indexed like the agents.
    pub contracts: Vec<Contract>,
    /// Rounds at which contracts were (re)designed.
    pub recontract_rounds: Vec<usize>,
    /// The payment each agent is owed next round.
    pub pending_payment: Vec<f64>,
    /// Total compensation paid to each agent so far.
    pub agent_compensation: Vec<f64>,
    /// Per-round records of the completed rounds.
    pub rounds: Vec<RoundRecord>,
}

impl AdaptiveState {
    /// Whether all configured rounds have been simulated.
    pub fn is_complete(&self, config: &AdaptiveConfig) -> bool {
        self.next_round >= config.rounds
    }
}

/// The adaptive repeated Stackelberg game: the requester observes effort
/// proxies, feedback, and noisy accuracy audits each round, and every
/// `recontract_every` rounds re-fits each group's effort function from
/// the pooled observation window, re-estimates per-agent weights, and
/// redesigns every contract with the §IV-C algorithm.
///
/// This realizes the paper's *dynamic* framing beyond a one-shot design
/// ("the task requester can adjust the contract from one round to
/// another within the same task") and the §VII future-work agenda of
/// handling more sophisticated malicious workers: deceptive agents are
/// demoted as audits reveal their attack, drifting agents get contracts
/// matched to their decayed productivity.
#[derive(Debug, Clone)]
pub struct AdaptiveSimulation {
    params: ModelParams,
    config: AdaptiveConfig,
}

impl AdaptiveSimulation {
    /// Creates the adaptive simulation.
    pub fn new(params: ModelParams, config: AdaptiveConfig) -> Self {
        AdaptiveSimulation { params, config }
    }

    /// Runs the adaptive loop over the agents.
    ///
    /// Equivalent to [`AdaptiveSimulation::start`] followed by
    /// [`AdaptiveSimulation::step`] until completion — the decomposition
    /// exists so external checkpointing can snapshot and resume the loop
    /// bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for a zero-round horizon or
    /// zero intervals, and propagates design/best-response failures.
    pub fn run(&self, agents: &[AdaptiveAgent]) -> Result<AdaptiveOutcome, CoreError> {
        let mut state = self.start(agents)?;
        while self.step(agents, &mut state)? {}
        self.outcome_of(&state)
    }

    /// Prepares the initial [`AdaptiveState`]: validates the
    /// configuration, seeds the RNG, initializes beliefs from the agents'
    /// declared parameters, and designs the round-0 contracts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for a zero-round horizon or
    /// zero intervals, and propagates design failures.
    pub fn start(&self, agents: &[AdaptiveAgent]) -> Result<AdaptiveState, CoreError> {
        if self.config.rounds == 0 {
            return Err(CoreError::InvalidParams(
                "adaptive simulation needs at least one round".into(),
            ));
        }
        if self.config.intervals == 0 {
            return Err(CoreError::InvalidParams("intervals must be >= 1".into()));
        }
        let rng = StdRng::seed_from_u64(self.config.seed);

        // The requester's beliefs: per-group psi and per-agent weight.
        let mut group_psis: BTreeMap<usize, Quadratic> = BTreeMap::new();
        for a in agents {
            group_psis.entry(a.group).or_insert(a.true_psi);
        }
        let est_weights: Vec<f64> = agents.iter().map(|a| a.base_weight).collect();

        let contracts: Vec<Contract> = self.design_all(agents, &group_psis, &est_weights)?;
        let pending_payment: Vec<f64> = agents
            .iter()
            .zip(&contracts)
            .map(|(a, c)| c.compensation(a.true_psi.eval(0.0)))
            .collect();

        Ok(AdaptiveState {
            next_round: 0,
            rng,
            group_psis,
            est_weights,
            group_obs: BTreeMap::new(),
            audit_obs: vec![Vec::new(); agents.len()],
            contracts,
            recontract_rounds: vec![0usize],
            pending_payment,
            agent_compensation: vec![0.0; agents.len()],
            rounds: Vec::with_capacity(self.config.rounds),
        })
    }

    /// Advances the adaptive loop by one round (re-contracting first when
    /// the cadence says so). Returns `Ok(false)` once all configured
    /// rounds are done.
    ///
    /// # Errors
    ///
    /// Propagates design and best-response failures.
    pub fn step(
        &self,
        agents: &[AdaptiveAgent],
        state: &mut AdaptiveState,
    ) -> Result<bool, CoreError> {
        if state.next_round >= self.config.rounds {
            return Ok(false);
        }
        let t = state.next_round;

        // Re-contract at the configured cadence (not at round 0 — the
        // initial design already happened).
        if self.config.recontract_every > 0 && t > 0 && t.is_multiple_of(self.config.recontract_every)
        {
            self.refit_groups(&mut state.group_psis, &state.group_obs, t);
            self.reestimate_weights(&mut state.est_weights, &state.audit_obs, t);
            state.contracts = self.design_all(agents, &state.group_psis, &state.est_weights)?;
            state.recontract_rounds.push(t);
        }

        let mut benefit = 0.0;
        let mut payment = 0.0;
        for (i, agent) in agents.iter().enumerate() {
            let omega_t = agent.conduct.omega_at(t, agent.base_omega);
            let psi_t = agent.conduct.psi_at(t, &agent.true_psi);
            let weight_t = agent.conduct.weight_at(t, agent.base_weight);

            let worker_params = ModelParams {
                omega: omega_t,
                ..self.params
            };
            let response = best_response(&worker_params, &psi_t, &state.contracts[i])?;
            if !agent.conduct.participates(response.utility) {
                continue;
            }
            let noise = if self.config.feedback_noise_sd > 0.0 {
                gaussian(&mut state.rng) * self.config.feedback_noise_sd
            } else {
                0.0
            };
            let feedback = (psi_t.eval(response.effort) + noise).max(0.0);

            // True accounting.
            benefit += weight_t * feedback;
            payment += state.pending_payment[i];
            state.agent_compensation[i] += state.pending_payment[i];
            state.pending_payment[i] = state.contracts[i].compensation(feedback);

            // The requester's observations.
            state
                .group_obs
                .entry(agent.group)
                .or_default()
                .push((t, response.effort, feedback));
            let audit = weight_t
                + if self.config.audit_noise_sd > 0.0 {
                    gaussian(&mut state.rng) * self.config.audit_noise_sd
                } else {
                    0.0
                };
            state.audit_obs[i].push((t, audit));
        }
        state.rounds.push(RoundRecord {
            round: t,
            benefit,
            payment,
            requester_utility: benefit - self.params.mu * payment,
        });
        state.next_round = t + 1;
        Ok(true)
    }

    /// Summarizes a (fully or partially) simulated state. The late-mean
    /// window is the last quarter of the *completed* rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if no round has completed yet.
    pub fn outcome_of(&self, state: &AdaptiveState) -> Result<AdaptiveOutcome, CoreError> {
        if state.rounds.is_empty() {
            return Err(CoreError::InvalidInput(
                "no completed rounds to summarize".into(),
            ));
        }
        let cumulative: f64 = state.rounds.iter().map(|r| r.requester_utility).sum();
        let n = state.rounds.len();
        let late_start = n - (n / 4).max(1);
        let late: Vec<f64> = state.rounds[late_start..]
            .iter()
            .map(|r| r.requester_utility)
            .collect();
        Ok(AdaptiveOutcome {
            mean_round_utility: cumulative / n as f64,
            late_mean_utility: late.iter().sum::<f64>() / late.len() as f64,
            rounds: state.rounds.clone(),
            recontract_rounds: state.recontract_rounds.clone(),
            final_estimated_weights: state.est_weights.clone(),
            agent_compensation: state.agent_compensation.clone(),
        })
    }

    /// Designs a contract for every agent under the current beliefs.
    fn design_all(
        &self,
        agents: &[AdaptiveAgent],
        group_psis: &BTreeMap<usize, Quadratic>,
        est_weights: &[f64],
    ) -> Result<Vec<Contract>, CoreError> {
        agents
            .iter()
            .zip(est_weights)
            .map(|(a, &w)| {
                let psi = group_psis[&a.group];
                // Effort region: below the believed peak.
                let peak = psi.peak().unwrap_or(10.0);
                let disc = Discretization::covering(self.config.intervals, 0.9 * peak)?;
                let built = ContractBuilder::new(self.params, disc, psi)
                    .malicious(a.base_omega)
                    .weight(w)
                    .incentive_margin(self.config.margin)
                    .build()?;
                Ok(built.contract().clone())
            })
            .collect()
    }

    /// Refits each group's ψ from its observation window.
    ///
    /// The update is conservative: the candidate fit replaces the current
    /// belief only when (a) the window has real effort variation — a
    /// stationary best-responding pool produces a narrow effort band on
    /// which a quadratic is unidentifiable and extrapolates wildly — and
    /// (b) the candidate explains the window materially better than the
    /// current belief (a model-comparison gate that keeps a correct
    /// belief from being perturbed by noise, while still tracking truly
    /// drifting behaviour).
    fn refit_groups(
        &self,
        group_psis: &mut BTreeMap<usize, Quadratic>,
        group_obs: &BTreeMap<usize, Vec<(usize, f64, f64)>>,
        now: usize,
    ) {
        let horizon = now.saturating_sub(self.config.window);
        for (group, obs) in group_obs {
            let recent: Vec<(f64, f64)> = obs
                .iter()
                .filter(|(t, _, _)| *t >= horizon)
                .map(|(_, y, q)| (*y, *q))
                .collect();
            let y_min = recent.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let y_max = recent.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
            if recent.len() < 6 || y_max - y_min < 0.5 {
                continue;
            }
            let Ok(fit) = fit_effort_function(&recent) else {
                continue;
            };
            let current = group_psis[group];
            let sse = |psi: &Quadratic| {
                recent
                    .iter()
                    .map(|&(y, q)| {
                        let r = psi.eval(y) - q;
                        r * r
                    })
                    .sum::<f64>()
            };
            if sse(&fit.psi) < 0.9 * sse(&current) {
                group_psis.insert(*group, fit.psi);
            }
        }
    }

    /// Re-estimates each agent's weight as the mean of its recent audits.
    fn reestimate_weights(
        &self,
        est_weights: &mut [f64],
        audit_obs: &[Vec<(usize, f64)>],
        now: usize,
    ) {
        let horizon = now.saturating_sub(self.config.window);
        for (i, audits) in audit_obs.iter().enumerate() {
            let recent: Vec<f64> = audits
                .iter()
                .filter(|(t, _)| *t >= horizon)
                .map(|(_, w)| *w)
                .collect();
            if !recent.is_empty() {
                est_weights[i] = recent.iter().sum::<f64>() / recent.len() as f64;
            }
        }
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
// Tests may compare floats exactly; clippy.toml's in-tests switches
// exist only for unwrap/expect/panic, so allow float_cmp explicitly.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            mu: 1.0,
            ..ModelParams::default()
        }
    }

    fn honest_agent(id: usize, weight: f64) -> AdaptiveAgent {
        AdaptiveAgent {
            id,
            group: 0,
            base_omega: 0.0,
            base_weight: weight,
            true_psi: Quadratic::new(-0.15, 2.5, 1.0),
            conduct: ConductModel::Stationary,
        }
    }

    fn config(recontract: usize, seed: u64) -> AdaptiveConfig {
        AdaptiveConfig {
            rounds: 40,
            recontract_every: recontract,
            window: 10,
            feedback_noise_sd: 0.3,
            audit_noise_sd: 0.1,
            intervals: 20,
            margin: 0.1,
            seed,
        }
    }

    #[test]
    fn stationary_population_is_stable_under_adaptation() {
        // With stationary workers, re-contracting should neither help nor
        // hurt much: adaptive and static utilities agree within noise.
        let agents: Vec<AdaptiveAgent> =
            (0..20).map(|i| honest_agent(i, 1.0 + 0.1 * (i % 5) as f64)).collect();
        let adaptive = AdaptiveSimulation::new(params(), config(5, 3))
            .run(&agents)
            .unwrap();
        let static_run = AdaptiveSimulation::new(params(), config(0, 3))
            .run(&agents)
            .unwrap();
        let rel = (adaptive.mean_round_utility - static_run.mean_round_utility).abs()
            / static_run.mean_round_utility.abs().max(1.0);
        assert!(rel < 0.1, "adaptive {} vs static {}", adaptive.mean_round_utility, static_run.mean_round_utility);
        assert!(adaptive.recontract_rounds.len() > 1);
        assert_eq!(static_run.recontract_rounds, vec![0]);
    }

    #[test]
    fn adaptation_defends_against_deceptive_workers() {
        // Half the population turns malicious at round 10 with negative
        // true weight; the adaptive requester demotes them after audits,
        // the static requester keeps overpaying them.
        let mut agents: Vec<AdaptiveAgent> = (0..10).map(|i| honest_agent(i, 1.5)).collect();
        for i in 10..20 {
            agents.push(AdaptiveAgent {
                id: i,
                group: 0,
                base_omega: 0.0,
                base_weight: 1.5,
                true_psi: Quadratic::new(-0.15, 2.5, 1.0),
                conduct: ConductModel::Deceptive {
                    honest_rounds: 10,
                    attack_omega: 0.5,
                    attack_weight: -0.5,
                },
            });
        }
        let adaptive = AdaptiveSimulation::new(params(), config(5, 7))
            .run(&agents)
            .unwrap();
        let static_run = AdaptiveSimulation::new(params(), config(0, 7))
            .run(&agents)
            .unwrap();
        assert!(
            adaptive.late_mean_utility > static_run.late_mean_utility,
            "adaptive late utility {} must beat static {}",
            adaptive.late_mean_utility,
            static_run.late_mean_utility
        );
        // The deceivers' estimated weights end up near their attack value.
        for w in &adaptive.final_estimated_weights[10..] {
            assert!(*w < 0.5, "deceiver weight should be demoted, got {w}");
        }
        for w in &adaptive.final_estimated_weights[..10] {
            assert!(*w > 1.0, "honest weight should stay high, got {w}");
        }
    }

    #[test]
    fn adaptation_tracks_drifting_productivity() {
        // Drifting workers lose productivity; the adaptive requester
        // refits psi and lowers targets instead of overpaying for effort
        // the worker cannot deliver.
        // Weights vary so induced efforts spread out and the pooled refit
        // window is identifiable.
        let agents: Vec<AdaptiveAgent> = (0..15)
            .map(|i| AdaptiveAgent {
                id: i,
                group: 0,
                base_omega: 0.0,
                base_weight: 1.0 + 0.1 * (i % 8) as f64,
                true_psi: Quadratic::new(-0.15, 2.5, 1.0),
                conduct: ConductModel::Drifting {
                    decay_per_round: 0.98,
                },
            })
            .collect();
        let adaptive = AdaptiveSimulation::new(params(), config(5, 11))
            .run(&agents)
            .unwrap();
        let static_run = AdaptiveSimulation::new(params(), config(0, 11))
            .run(&agents)
            .unwrap();
        // Adaptation must not lose more than audit-noise jitter, and
        // typically wins by retargeting the decayed response.
        assert!(
            adaptive.late_mean_utility >= 0.95 * static_run.late_mean_utility,
            "adaptive {} vs static {}",
            adaptive.late_mean_utility,
            static_run.late_mean_utility
        );
    }

    #[test]
    fn reservation_workers_drop_out_under_zero_contract() {
        let agents = vec![AdaptiveAgent {
            id: 0,
            group: 0,
            base_omega: 0.0,
            base_weight: -1.0, // requester designs the zero contract
            true_psi: Quadratic::new(-0.15, 2.5, 1.0),
            conduct: ConductModel::Reservation {
                reserve_utility: 0.5,
            },
        }];
        let outcome = AdaptiveSimulation::new(params(), config(0, 5))
            .run(&agents)
            .unwrap();
        assert_eq!(outcome.agent_compensation[0], 0.0);
        assert!(outcome.rounds.iter().all(|r| r.benefit == 0.0));
    }

    #[test]
    fn stepwise_snapshot_resume_is_bit_identical() {
        let agents: Vec<AdaptiveAgent> =
            (0..8).map(|i| honest_agent(i, 1.0 + 0.1 * (i % 4) as f64)).collect();
        let sim = AdaptiveSimulation::new(params(), config(5, 17));
        let direct = sim.run(&agents).unwrap();

        let mut state = sim.start(&agents).unwrap();
        for _ in 0..13 {
            assert!(sim.step(&agents, &mut state).unwrap());
        }
        let snapshot = state.clone();
        while sim.step(&agents, &mut state).unwrap() {}
        let mut resumed = snapshot;
        while sim.step(&agents, &mut resumed).unwrap() {}

        assert_eq!(state, resumed);
        let stepped = sim.outcome_of(&state).unwrap();
        assert_eq!(direct, stepped);
        assert_eq!(direct, sim.outcome_of(&resumed).unwrap());
    }

    #[test]
    fn invalid_config_rejected() {
        let sim = AdaptiveSimulation::new(
            params(),
            AdaptiveConfig {
                rounds: 0,
                ..config(1, 1)
            },
        );
        assert!(sim.run(&[]).is_err());
        let sim = AdaptiveSimulation::new(
            params(),
            AdaptiveConfig {
                intervals: 0,
                ..config(1, 1)
            },
        );
        assert!(sim.run(&[]).is_err());
    }
}
